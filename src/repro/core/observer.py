"""Observer models: when is a running-time range "narrow"?

Section 5/6 of the paper uses two models:

* a *generic* model comparing the highest degree of the complexity-bound
  polynomials — used for the hand-crafted MicroBench, where variables are
  assumed unbounded and "a safe program is assumed to be one where the
  symbolic running times have the same polynomial degree";
* a *platform* model that plugs assumed maximum input sizes into the
  symbolic bounds and compares concrete instruction counts against a
  threshold (25k instructions for the STAC/Literature benchmarks, with
  4096-bit inputs).

Both are exposed behind one interface so the driver (and the ablation
benchmark) can swap them.
"""

from __future__ import annotations

import abc
import itertools
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Mapping, Optional

from repro.bounds.cost import CostBound, Poly


def effective_slack(value) -> int:
    """The concrete slack a threshold/epsilon actually denotes.

    The observable-gap convention everywhere (threshold observers, the
    exhaustive :class:`~repro.diffcheck.oracle.TimingOracle`, the
    leakage analysis) is *gap >= slack is distinguishable*; a slack of
    zero would make equal costs "distinguishable" and no bound ever
    narrow, which is not a model of any observer — it disagrees with the
    oracle's low-equivalence gap definition at the interval endpoints
    (``leaky iff gap >= max(1, slack)``).  Clamping to 1 here, once,
    makes ε=0 and ε=1 the same observer ("any nonzero gap is visible")
    on both the static and the concrete side.
    """
    return max(1, int(value))


def _collapse_max(polys) -> Poly:
    """Coefficient-wise maximum — a representative of a max-set."""
    terms: Dict[tuple, Fraction] = {}
    for p in polys:
        for mono, coeff in p.terms.items():
            terms[mono] = max(terms.get(mono, Fraction(0)), coeff)
    return Poly(terms)


def _nonconst_monomials(poly: Poly):
    return frozenset(m for m in poly.terms if m)


def _collapse_min(polys) -> Poly:
    terms: Dict[tuple, Fraction] = {}
    first = True
    for p in polys:
        if first:
            terms = dict(p.terms)
            first = False
            continue
        keys = set(terms) | set(p.terms)
        terms = {
            mono: min(terms.get(mono, Fraction(0)), p.terms.get(mono, Fraction(0)))
            for mono in keys
        }
    return Poly(terms)


class ObserverModel(abc.ABC):
    """Decides narrowness of one bound and distinguishability of two."""

    name: str = "abstract"

    @abc.abstractmethod
    def is_narrow(self, bound: CostBound) -> bool:
        """Is the whole range attacker-indistinguishable?"""

    @abc.abstractmethod
    def distinguishable(self, a: CostBound, b: CostBound) -> bool:
        """Could an attacker tell components with these bounds apart?"""


@dataclass
class PolynomialDegreeObserver(ObserverModel):
    """Narrow iff lower and upper bounds have the same polynomial degree
    and identical non-constant parts; constant slack up to ``epsilon``.

    With unbounded inputs any difference in a non-constant term is
    observable (choose inputs large enough), hence the strict symbolic
    comparison.
    """

    epsilon: int = 32

    name = "degree"

    def is_narrow(self, bound: CostBound) -> bool:
        if bound.upper is None:
            return False
        # The paper's generic model "computes the highest degree of the
        # complexity bound polynomial": a bound is narrow when the upper
        # and lower representatives have the same degree *and* the same
        # non-constant monomials (so the gap is dominated by constants,
        # compared against epsilon).  Per-iteration constant slop — the
        # unavoidable then/else byte-count asymmetry, cf. Fig. 1's
        # [19·g.len, 23·g.len] — is deliberately tolerated.
        up_rep = _collapse_max([p for p in bound.upper if p.terms] or list(bound.upper))
        lo_rep = _collapse_min(bound.lower)
        if _nonconst_monomials(up_rep) != _nonconst_monomials(lo_rep):
            return False
        if up_rep.degree() > 0:
            return True
        return abs(up_rep.const_value - lo_rep.const_value) <= self.epsilon

    def distinguishable(self, a: CostBound, b: CostBound) -> bool:
        if a.upper is None or b.upper is None:
            return True
        # Distinguishable when the bounds differ in *shape*: different
        # degrees or different non-constant monomials (grow the inputs
        # to separate them), or an all-constant gap beyond epsilon.
        up_a, up_b = _collapse_max(a.upper), _collapse_max(b.upper)
        lo_a, lo_b = _collapse_min(a.lower), _collapse_min(b.lower)
        for pa, pb in ((up_a, up_b), (lo_a, lo_b)):
            if _nonconst_monomials(pa) != _nonconst_monomials(pb):
                return True
        gap = max(
            abs(up_a.const_value - up_b.const_value),
            abs(lo_a.const_value - lo_b.const_value),
        )
        if up_a.degree() == 0 and up_b.degree() == 0 and gap > self.epsilon:
            return True
        return False


@dataclass
class ConcreteThresholdObserver(ObserverModel):
    """Plug assumed maximum input sizes into the symbolic bounds and
    compare instruction counts against a threshold (the paper: 25k
    instructions at 4096-bit / assumed-maximum inputs)."""

    threshold: int = 25_000
    default_max: int = 4096
    max_values: Dict[str, int] = field(default_factory=dict)

    name = "threshold"

    def _env(self, bound: CostBound) -> Mapping[str, int]:
        return {
            sym: self.max_values.get(sym, self.default_max)
            for sym in bound.symbols()
        }

    def is_narrow(self, bound: CostBound) -> bool:
        if bound.upper is None:
            return False
        env = self._env(bound)
        lo, hi = bound.evaluate(env)
        assert hi is not None
        return (hi - lo) < effective_slack(self.threshold)

    def distinguishable(self, a: CostBound, b: CostBound) -> bool:
        if a.upper is None or b.upper is None:
            return True
        env_a = self._env(a)
        env_b = self._env(b)
        lo_a, hi_a = a.evaluate(env_a)
        lo_b, hi_b = b.evaluate(env_b)
        assert hi_a is not None and hi_b is not None
        # Components are distinguishable when their extreme achievable
        # times differ by at least the (clamped) threshold in either
        # direction — the same endpoint convention as the oracle.
        slack = effective_slack(self.threshold)
        return abs(hi_a - hi_b) >= slack or abs(lo_a - lo_b) >= slack


@dataclass
class DomainThresholdObserver(ObserverModel):
    """Threshold observer that is *interval-sound* on finite domains.

    :class:`ConcreteThresholdObserver` follows the paper's platform
    model and evaluates bounds at the assumed-maximum env only — the
    right convention for fixed-size crypto inputs, but an
    underapproximation of the achievable spread when inputs genuinely
    range over a domain (the bound gap need not be maximal at the max
    env).  This variant enumerates the whole finite box: a bound is
    narrow iff ``max(hi) - min(lo)`` over *every* env in the product of
    per-symbol domains stays under the threshold.  On the tiny domains
    of the differential harness the enumeration is exact and cheap, and
    it makes "narrow" a true superset of every concrete spread — the
    property the ground-truth oracle checks against.

    Symbols without a registered domain fall back to the two endpoints
    ``{0, default_max}`` (endpoint evaluation, not full enumeration, so
    an unexpected symbol cannot blow the product up).
    """

    threshold: int = 25_000
    default_max: int = 4096
    domains: Dict[str, tuple] = field(default_factory=dict)

    name = "domain-threshold"

    def _envs(self, bound: CostBound):
        symbols = sorted(bound.symbols())
        spaces = [
            tuple(self.domains.get(sym, (0, self.default_max))) for sym in symbols
        ]
        for combo in itertools.product(*spaces):
            yield dict(zip(symbols, combo))

    def _range(self, bound: CostBound):
        lo_min: Optional[int] = None
        hi_max: Optional[int] = None
        for env in self._envs(bound):
            lo, hi = bound.evaluate(env)
            assert hi is not None
            lo_min = lo if lo_min is None else min(lo_min, lo)
            hi_max = hi if hi_max is None else max(hi_max, hi)
        assert lo_min is not None and hi_max is not None
        return lo_min, hi_max

    def is_narrow(self, bound: CostBound) -> bool:
        if bound.upper is None:
            return False
        lo, hi = self._range(bound)
        return (hi - lo) < effective_slack(self.threshold)

    def distinguishable(self, a: CostBound, b: CostBound) -> bool:
        if a.upper is None or b.upper is None:
            return True
        lo_a, hi_a = self._range(a)
        lo_b, hi_b = self._range(b)
        slack = effective_slack(self.threshold)
        return abs(hi_a - hi_b) >= slack or abs(lo_a - lo_b) >= slack


def default_observer_for(kind: str) -> ObserverModel:
    """The observer the paper pairs with each benchmark family."""
    if kind == "micro":
        return PolynomialDegreeObserver()
    return ConcreteThresholdObserver()
