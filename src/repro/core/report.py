"""Machine-readable reports: verdicts as JSON-serializable dictionaries.

For CI integration and downstream tooling (the CLI exposes this via
``analyze --json``).  The schema is stable and intentionally flat:
strings for all symbolic content, numbers for timings and sizes.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional

from repro.bounds.analysis import BoundResult
from repro.core.attack import AttackSpecification
from repro.core.blazer import BlazerVerdict
from repro.trails.partition import TrailNode


def _bound_dict(result: Optional[BoundResult]) -> Optional[Dict[str, Any]]:
    if result is None:
        return None
    if not result.feasible:
        return {"feasible": False}
    bound = result.bound
    assert bound is not None
    return {
        "feasible": True,
        "lower": [str(p) for p in bound.lower],
        "upper": None if bound.upper is None else [str(p) for p in bound.upper],
        "degree": bound.degree(),
        "symbols": sorted(bound.symbols()),
    }


def _node_dict(node: TrailNode) -> Dict[str, Any]:
    return {
        "description": node.trail.description,
        "split_kind": node.split_kind or None,
        "splits": [str(s) for s in node.trail.splits],
        "status": node.status,
        "note": node.note or None,
        "bound": _bound_dict(node.bound),
        "children": [_node_dict(c) for c in node.children],
    }


def _attack_dict(attack: Optional[AttackSpecification]) -> Optional[Dict[str, Any]]:
    if attack is None:
        return None
    out: Dict[str, Any] = {
        "reason": attack.reason,
        "trail_a": {
            "description": attack.trail_a.description,
            "bound": _bound_dict(attack.bound_a),
        },
    }
    if attack.trail_b is not None:
        out["trail_b"] = {
            "description": attack.trail_b.description,
            "bound": _bound_dict(attack.bound_b),
        }
    return out


def verdict_to_dict(verdict: BlazerVerdict) -> Dict[str, Any]:
    """The full verdict as a JSON-serializable dictionary."""
    return {
        "proc": verdict.proc,
        "status": verdict.status,
        "size": verdict.size,
        "safety_seconds": round(verdict.safety_seconds, 6),
        "attack_seconds": round(verdict.attack_seconds, 6),
        "phases": {
            name: round(seconds, 6)
            for name, seconds in sorted(verdict.phase_seconds.items())
        },
        "partition": _node_dict(verdict.tree.root),
        "leaves": len(verdict.tree.leaves()),
        "attack": _attack_dict(verdict.attack),
        "cache": {
            "hits": verdict.cache_hits,
            "misses": verdict.cache_misses,
            "hit_rate": round(verdict.cache_hit_rate, 4),
            "by_category": {
                cat: {"hits": pair[0], "misses": pair[1]}
                for cat, pair in sorted(verdict.cache_stats.items())
            },
        },
        "resilience": {
            "degraded": verdict.degraded,
            "degraded_leaves": verdict.degraded_leaves,
            "quarantined": verdict.quarantined,
            "degradation": (
                verdict.degradation.to_dict()
                if verdict.degradation is not None
                else None
            ),
        },
    }


def verdict_to_json(verdict: BlazerVerdict, indent: int = 2) -> str:
    return json.dumps(verdict_to_dict(verdict), indent=indent, sort_keys=True)


# Keys whose values legitimately vary between equal analyses: wall-clock
# timings, the perf layer's own counters, and the resilience counters
# (retries and quarantines depend on injected faults and scheduling, not
# on what was proved).  Everything else — verdict, bounds, partition
# shape, attack specification — must be bit-stable.
_VOLATILE_KEYS = ("safety_seconds", "attack_seconds", "phases", "cache", "resilience")


def verdict_digest(verdict: BlazerVerdict) -> str:
    """A SHA-256 digest of the verdict's *analysis content*.

    Strips the volatile keys (timings, cache counters) and hashes the
    canonical JSON of the rest.  Two runs produced the same analysis —
    regardless of caching, worker processes, or machine speed — iff
    their digests are equal; the equivalence tests and the benchmark
    harness compare runs this way.
    """
    data = verdict_to_dict(verdict)
    for key in _VOLATILE_KEYS:
        data.pop(key, None)
    encoded = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def suite_report(verdicts: List[BlazerVerdict]) -> Dict[str, Any]:
    """An aggregate report over several verdicts (e.g. a whole program
    or the benchmark suite)."""
    return {
        "total": len(verdicts),
        "safe": sum(v.status == "safe" for v in verdicts),
        "attack": sum(v.status == "attack" for v in verdicts),
        "unknown": sum(v.status == "unknown" for v in verdicts),
        "seconds": round(sum(v.total_seconds for v in verdicts), 6),
        "verdicts": [verdict_to_dict(v) for v in verdicts],
    }
