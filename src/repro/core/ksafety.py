"""Executable formalization of Section 3: k-safety, quotient partitions.

The paper's semantic development is stated over the (generally infinite)
set of traces JCK.  This module makes every definition *executable over
finite trace sets* — enumerated by the concrete interpreter — so that
the property-based tests can check, end to end, that:

* our partitions are ψ-quotient partitions (Definition in §3.2);
* the per-component trace properties are relational-by-property-sharing
  (RBPS, §3.3);
* Theorem 3.1's conclusion actually holds on the enumerated traces.

It also provides the three example properties the paper discusses:
timing-channel freedom ``tcf`` (2-safety), determinism ``det``
(2-safety), and channel capacity ``ccf`` (a (q+1)-safety property).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, List, Sequence, Tuple

from repro.interp.trace import Trace

TracePredicate = Callable[[Trace], bool]
KPredicate = Callable[[Sequence[Trace]], bool]


@dataclass(frozen=True)
class KSafetyProperty:
    """q(C) = ∀ π1..πk ∈ JCK^k . Φ(π1..πk)."""

    name: str
    k: int
    phi: KPredicate

    def holds(self, traces: Sequence[Trace]) -> bool:
        """Check the property over all k-tuples of the given finite set."""
        return all(
            self.phi(tup) for tup in itertools.product(traces, repeat=self.k)
        )

    def violations(self, traces: Sequence[Trace]) -> List[Tuple[Trace, ...]]:
        return [
            tup
            for tup in itertools.product(traces, repeat=self.k)
            if not self.phi(tup)
        ]


# ---------------------------------------------------------------------------
# The paper's example properties
# ---------------------------------------------------------------------------


def tcf(epsilon: int = 0) -> KSafetyProperty:
    """Timing-channel freedom: equal low inputs ⇒ indistinguishable times.

    ``epsilon`` is the attacker-unobservable slack c of the paper
    (time(π1) ≈ time(π2) iff |Δ| <= epsilon).
    """

    def phi(pair: Sequence[Trace]) -> bool:
        a, b = pair
        if not a.low_equivalent(b):
            return True
        return abs(a.time - b.time) <= epsilon

    return KSafetyProperty("tcf", 2, phi)


def det() -> KSafetyProperty:
    """Determinism: equal inputs ⇒ equal outputs (§3.4)."""

    def phi(pair: Sequence[Trace]) -> bool:
        a, b = pair
        if a.inputs != b.inputs:
            return True
        return a.result == b.result

    return KSafetyProperty("det", 2, phi)


def ccf(q: int = 2, epsilon: int = 0) -> KSafetyProperty:
    """Channel capacity: at most ``q`` distinct times per public input.

    A (q+1)-safety property (§3.4): among any q+1 low-equivalent traces,
    some two must have indistinguishable running times.
    """

    def phi(tup: Sequence[Trace]) -> bool:
        first = tup[0]
        if not all(t.low_equivalent(first) for t in tup[1:]):
            return True
        return any(
            abs(a.time - b.time) <= epsilon
            for a, b in itertools.combinations(tup, 2)
        )

    return KSafetyProperty("ccf[q=%d]" % q, q + 1, phi)


# ---------------------------------------------------------------------------
# Quotient predicates and quotient partitions (§3.2)
# ---------------------------------------------------------------------------


def psi_tcf(pair: Sequence[Trace]) -> bool:
    """ψ_tcf(π1, π2) = in(π1)[low] == in(π2)[low]."""
    return pair[0].low_equivalent(pair[1])


def psi_det(pair: Sequence[Trace]) -> bool:
    return pair[0].inputs == pair[1].inputs


def psi_ccf(tup: Sequence[Trace]) -> bool:
    first = tup[0]
    return all(t.low_equivalent(first) for t in tup[1:])


def psi_true(tup: Sequence[Trace]) -> bool:
    return True


def is_quotient_partition(
    traces: Sequence[Trace],
    partition: Sequence[Sequence[Trace]],
    psi: KPredicate,
    k: int,
) -> bool:
    """Definition §3.2 over a finite trace set: every ψ-related k-tuple
    lies entirely inside some component.  (Components need not be
    disjoint, and must jointly cover the trace set.)"""
    covered = set()
    for component in partition:
        covered.update(id(t) for t in component)
    if any(id(t) not in covered for t in traces):
        return False
    component_sets = [set(id(t) for t in component) for component in partition]
    for tup in itertools.product(traces, repeat=k):
        if not psi(tup):
            continue
        ids = {id(t) for t in tup}
        if not any(ids <= comp for comp in component_sets):
            return False
    return True


def is_quotient_partitionable(
    property_: KSafetyProperty, psi: KPredicate, traces: Sequence[Trace]
) -> bool:
    """§3.2: q is ψ-quotient partitionable iff for all k-tuples,
    ψ(π̄) ∨ Φ(π̄).  Checked over the finite sample."""
    return all(
        psi(tup) or property_.phi(tup)
        for tup in itertools.product(traces, repeat=property_.k)
    )


# ---------------------------------------------------------------------------
# Relational-by-property-sharing and Theorem 3.1 (§3.3)
# ---------------------------------------------------------------------------


def rbps_holds(
    trace_property: TracePredicate,
    property_: KSafetyProperty,
    traces: Sequence[Trace],
) -> bool:
    """RBPS(P, q) over a finite sample: ∧ P(πi) ⇒ Φ(π1..πk)."""
    for tup in itertools.product(traces, repeat=property_.k):
        if all(trace_property(t) for t in tup) and not property_.phi(tup):
            return False
    return True


def theorem_3_1_conclusion(
    property_: KSafetyProperty,
    psi: KPredicate,
    traces: Sequence[Trace],
    partition: Sequence[Sequence[Trace]],
    component_properties: Sequence[TracePredicate],
) -> bool:
    """Check the *premises* of Theorem 3.1 on a finite trace set and,
    when they hold, assert its conclusion q(C).

    Returns True when either some premise fails (the theorem promises
    nothing) or the conclusion holds; a False return exhibits a
    counterexample to soundness — the property tests assert this never
    happens.
    """
    if not is_quotient_partitionable(property_, psi, traces):
        return True
    if not is_quotient_partition(traces, partition, psi, property_.k):
        return True
    for component, prop in zip(partition, component_properties):
        if not rbps_holds(prop, property_, traces):
            return True
        if not all(prop(t) for t in component):
            return True
    return property_.holds(traces)


# ---------------------------------------------------------------------------
# Relational partition properties (the RBPS(Θ, q) generalization, §3.3)
# ---------------------------------------------------------------------------


def rbps_relational_holds(
    theta: KPredicate,
    m: int,
    property_: KSafetyProperty,
    traces: Sequence[Trace],
) -> bool:
    """The m-ary generalization of RBPS: for every k-tuple, if Θ holds on
    each of its m-element sub-tuples, then Φ holds on the k-tuple.

    With m = 1 this degenerates to RBPS(P, q).
    """
    for tup in itertools.product(traces, repeat=property_.k):
        subsets_ok = all(
            theta(sub) for sub in itertools.combinations(tup, m)
        )
        if subsets_ok and not property_.phi(tup):
            return False
    return True


def theorem_3_1_relational(
    property_: KSafetyProperty,
    psi: KPredicate,
    traces: Sequence[Trace],
    partition: Sequence[Sequence[Trace]],
    thetas: Sequence[KPredicate],
    m: int,
) -> bool:
    """The relational variant of Theorem 3.1 (§3.3's closing paragraph):
    per-component m-ary properties Θ_T replace the non-relational P.

    Premises: q ψ-quotient partitionable; T a ψ-quotient partition;
    RBPS(Θ_T, q) and Θ_T on every m-tuple of each component.  Returns
    True when a premise fails (vacuous) or the conclusion q(C) holds.
    """
    if not is_quotient_partitionable(property_, psi, traces):
        return True
    if not is_quotient_partition(traces, partition, psi, property_.k):
        return True
    for component, theta in zip(partition, thetas):
        if not rbps_relational_holds(theta, m, property_, traces):
            return True
        if not all(
            theta(sub) for sub in itertools.product(component, repeat=m)
        ):
            return True
    return property_.holds(traces)


def time_band_property(lo: int, hi: int) -> TracePredicate:
    """The Pf of Example 7: running time within a fixed band.

    When every trace of a component satisfies one band of width <= the
    observer slack, the component cannot distinguish secrets by time.
    """

    def prop(trace: Trace) -> bool:
        return lo <= trace.time <= hi

    return prop


def per_low_time_function(traces: Iterable[Trace]) -> TracePredicate:
    """P_f for the function f mapping each low input to the set of times
    seen for it in the sample (Example 7's high-independent function)."""
    table = {}
    for trace in traces:
        table.setdefault(trace.low_inputs, set()).add(trace.time)

    def prop(trace: Trace) -> bool:
        times = table.get(trace.low_inputs)
        return times is not None and trace.time in times and len(times) == 1

    return prop
