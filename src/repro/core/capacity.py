"""Channel-capacity verification: the k>2 instance of Section 3.4.

The paper generalizes timing-channel freedom to the *channel capacity*
property ccf(q): at most ``q`` distinct running times per public input —
a (q+1)-safety property, ψ_ccf-quotient partitionable exactly like tcf.

The verification reuses the trail machinery with a *band-counting*
recursion:

* an infeasible trail contributes 0 time bands;
* a trail whose bound is narrow and secret-free contributes 1 band
  (one running time per public input, up to the observer slack);
* a **taint** split bounds the component's bands by the *maximum* over
  its children — two equal-low traces fall in the same child, so bands
  do not accumulate across low splits;
* a **sec** split bounds them by the *sum* — equal-low traces may land
  in different children, each contributing its own bands.

The program satisfies ccf(q) when the most general trail's band count is
at most q.  With q = 1 this degenerates to the tcf driver's safety
phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.bounds.analysis import BoundResult, symbol_levels
from repro.core.blazer import Blazer
from repro.lang import ast
from repro.trails import Trail
from repro.trails.refine import OccurrenceSplit


@dataclass
class BandNode:
    """One node of the band-counting tree (for reporting)."""

    trail: Trail
    bands: Optional[int]  # None = could not bound the band count
    rule: str  # "infeasible" | "narrow" | "taint-max" | "sec-sum" | "stuck"
    children: List["BandNode"] = field(default_factory=list)

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        label = "%s%s: bands=%s (%s)" % (
            pad,
            self.trail.description,
            self.bands if self.bands is not None else "?",
            self.rule,
        )
        return "\n".join([label] + [c.render(indent + 1) for c in self.children])


@dataclass
class CapacityVerdict:
    proc: str
    q: int
    verified: bool
    bands: Optional[int]
    tree: BandNode

    def render(self) -> str:
        head = "%s: ccf(q=%d) %s (provable bands: %s)" % (
            self.proc,
            self.q,
            "HOLDS" if self.verified else "NOT PROVED",
            self.bands if self.bands is not None else "unbounded",
        )
        return head + "\n" + self.tree.render(1)


class CapacityAnalysis:
    """Band counting over the trail tree."""

    def __init__(self, blazer: Blazer, proc: str, max_depth: int = 4):
        self._blazer = blazer
        self._proc = proc
        self._cfg = blazer.cfgs[proc]
        self._taint = blazer.taint(proc)
        self._observer = blazer.config.resolved_observer()
        self._max_depth = max_depth
        self._levels = symbol_levels(self._cfg)

    # -- leaf classification ----------------------------------------------------

    def _bound(self, trail: Trail) -> BoundResult:
        return self._blazer._bound(self._cfg, trail)

    def _is_single_band(self, result: BoundResult) -> bool:
        if result.bound is None:
            return False
        if any(
            self._levels.get(s) is ast.SecLevel.SECRET
            for s in result.bound.symbols()
        ):
            return False
        return self._observer.is_narrow(result.bound)

    # -- recursion -----------------------------------------------------------------

    def bands_of(self, trail: Trail, depth: int, budget: int) -> BandNode:
        """The best provable band count of ``trail``, capped at ``budget``
        (counting beyond the budget is useless — prune)."""
        result = self._bound(trail)
        if not result.feasible:
            return BandNode(trail, 0, "infeasible")
        if self._is_single_band(result):
            return BandNode(trail, 1, "narrow")
        if depth >= self._max_depth or budget <= 1:
            return BandNode(trail, None, "stuck")

        live = (
            result.main.reachable_blocks()
            if result.main is not None
            else set(self._cfg.block_ids())
        )
        best: Optional[BandNode] = None

        # Taint splits: bands = max over children.
        for block in self._taint.low_branches():
            if block in trail.split_blocks() or block not in live:
                continue
            children = self._split_candidates(trail, block, "taint")
            for parts in children:
                nodes = [self.bands_of(p, depth + 1, budget) for p in parts]
                if any(n.bands is None for n in nodes):
                    continue
                bands = max(n.bands for n in nodes)  # type: ignore[type-var]
                candidate = BandNode(trail, bands, "taint-max", nodes)
                if best is None or (best.bands or 0) > bands:
                    best = candidate
            if best is not None and best.bands == 1:
                return best

        # Sec splits: bands = sum over children.
        for block in self._taint.high_branches():
            if block in trail.split_blocks() or block not in live:
                continue
            for parts in self._split_candidates(trail, block, "sec"):
                nodes = []
                total = 0
                ok = True
                for part in parts:
                    node = self.bands_of(part, depth + 1, budget - total)
                    nodes.append(node)
                    if node.bands is None:
                        ok = False
                        break
                    total += node.bands
                    if total > budget:
                        ok = False
                        break
                if ok:
                    candidate = BandNode(trail, total, "sec-sum", nodes)
                    if best is None or best.bands is None or best.bands > total:
                        best = candidate

        return best if best is not None else BandNode(trail, None, "stuck")

    def _split_candidates(
        self, trail: Trail, block: int, kind: str
    ) -> List[List[Trail]]:
        strategy = OccurrenceSplit()
        out: List[List[Trail]] = []
        for edge in self._cfg.branch_edges(block):
            parts = strategy.split_on_edge(trail, block, edge, kind)
            if parts:
                out.append(parts)
        return out


def verify_channel_capacity(
    blazer: Blazer, proc: str, q: int, max_depth: int = 4
) -> CapacityVerdict:
    """Try to prove ccf(q): at most q running times per public input.

    Soundness follows the same Theorem-3.1 argument as tcf: the taint
    splits are ψ_ccf-quotient preserving, and within each component the
    sec-split children's narrow bands witness the per-component
    (q+1)-ary RBPS property P_{f1..fq} of §3.4.
    """
    if q < 1:
        raise ValueError("capacity must be at least 1")
    analysis = CapacityAnalysis(blazer, proc, max_depth)
    root = analysis.bands_of(Trail.most_general(blazer.cfgs[proc]), 0, q)
    bands = root.bands
    return CapacityVerdict(
        proc=proc,
        q=q,
        verified=bands is not None and bands <= q,
        bands=bands,
        tree=root,
    )
