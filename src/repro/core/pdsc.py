"""Core-level entry point for property-directed self-composition.

This is the fourth verification subject (after Blazer's decomposition,
the eager self-composition baseline, and the constant-time checker):
the CEGAR loop of :mod:`repro.pdsc` packaged the way the rest of the
system consumes verifiers — a source-level convenience wrapper for the
CLI/differ, and a job-shaped entry point (plain JSON-safe dicts in and
out) for the sharded service daemon.

The service speaks *kinds*: a payload with ``kind="pdsc"`` routes here
(:func:`pdsc_job`), anything else stays with Blazer's ``analyze_job``.
:data:`PDSC_JOB_FIELDS` is the fingerprint contract — exactly the
payload knobs that can change a PDSC outcome, hashed into the request
key so a pdsc job never coalesces with a Blazer job over the same
program (see :func:`repro.service.jobs.fingerprint_job`).
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional, Tuple

from repro.bytecode import compile_program, verify_module
from repro.cfg.graph import ControlFlowGraph
from repro.core.blazer import resolve_proc
from repro.domains import DOMAINS
from repro.ir import lift_module
from repro.lang import frontend
from repro.pdsc import PDSC, PDSCResult
from repro.util.errors import AnalysisError

# Payload fields pdsc_job understands; everything here (and nothing
# else) participates in the service's request fingerprints.  ``kind``
# is the dispatch discriminator and is always hashed, so pdsc and
# Blazer requests over identical programs never share a key.
PDSC_JOB_FIELDS = (
    "kind",
    "source",
    "proc",
    "domain",
    "epsilon",
    "max_pairs",
    "max_refinements",
    "deadline",
)


def compile_cfgs(source: str) -> Dict[str, ControlFlowGraph]:
    """Source → verified bytecode → register-IR CFGs (the same front
    half of the pipeline every other subject runs)."""
    module = compile_program(frontend(source))
    verify_module(module)
    return lift_module(module)


def verify_source(
    source: str,
    proc: Optional[str] = None,
    domain: str = "zone",
    epsilon: int = 32,
    max_pairs: int = 4000,
    max_refinements: int = 4,
    deadline: Optional[float] = None,
) -> Tuple[str, PDSCResult]:
    """Convenience wrapper: run PDSC on one procedure of a source
    program.  Returns ``(resolved proc name, result)``."""
    if domain not in DOMAINS:
        raise AnalysisError(
            "unknown domain %r (available: %s)" % (domain, ", ".join(sorted(DOMAINS)))
        )
    cfgs = compile_cfgs(source)
    name = resolve_proc(cfgs, proc)
    checker = PDSC(
        cfgs[name],
        DOMAINS[domain],
        epsilon=epsilon,
        max_pairs=max_pairs,
        max_refinements=max_refinements,
        deadline=deadline,
    )
    return name, checker.verify()


def result_digest(proc: str, result: PDSCResult) -> str:
    """Content digest of a PDSC outcome — the cross-process equality
    witness, computed over the timing-free report dict."""
    body = json.dumps(
        {"proc": proc, "result": result.to_dict()},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def pdsc_job(payload: Dict[str, object]) -> Dict[str, object]:
    """Job-shaped entry point: a JSON-safe request dict in, a JSON-safe
    result dict out (docs/SERVICE.md), mirroring
    :func:`repro.core.blazer.analyze_job`.

    ``status`` maps the three-valued outcome onto the service's verdict
    vocabulary: ``verified`` → "safe", ``unverified`` / ``exhausted``
    → "unknown" (PDSC never claims an attack — refutation is Blazer's
    job).  Raises :class:`~repro.util.errors.ReproError` on malformed
    programs or bad knobs.
    """
    source = payload.get("source")
    if not isinstance(source, str) or not source.strip():
        raise AnalysisError("job payload needs a non-empty 'source'")
    deadline = payload.get("deadline")
    proc, result = verify_source(
        source,
        proc=payload.get("proc"),  # type: ignore[arg-type]
        domain=str(payload.get("domain", "zone")),
        epsilon=int(payload.get("epsilon", 32)),  # type: ignore[arg-type]
        max_pairs=int(payload.get("max_pairs", 4000)),  # type: ignore[arg-type]
        max_refinements=int(payload.get("max_refinements", 4)),  # type: ignore[arg-type]
        deadline=float(deadline) if deadline is not None else None,  # type: ignore[arg-type]
    )
    return {
        "kind": "pdsc",
        "proc": proc,
        "status": "safe" if result.verified else "unknown",
        "outcome": result.outcome,
        "verified": result.verified,
        "refinements": result.refinements,
        "digest": result_digest(proc, result),
        "result": result.to_dict(),
    }
