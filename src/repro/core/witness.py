"""Concrete witness search for attack specifications.

The paper (§2.3): an attack specification is a *schema* for two traces;
"all that remains is to ensure that these traces are feasible by finding
justifying inputs.  This can be done manually by a programmer or via an
under-approximate analysis."  This module is that under-approximate
analysis for small input spaces: enumerate candidate inputs, run the
concrete interpreter, and look for a pair of traces with equal public
inputs, different secrets, and a running-time gap at least ``gap`` —
optionally also requiring the two traces to follow the two trails of the
specification.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.cfg.graph import ControlFlowGraph
from repro.core.attack import AttackSpecification
from repro.interp.interp import Interpreter
from repro.interp.trace import Trace
from repro.lang import ast
from repro.util.errors import InterpError


@dataclass
class Witness:
    """A concrete pair of traces exhibiting the timing channel."""

    trace_a: Trace
    trace_b: Trace

    @property
    def gap(self) -> int:
        return abs(self.trace_a.time - self.trace_b.time)

    def __str__(self) -> str:
        return (
            "witness: low=%s  high_a=%s (time %d)  high_b=%s (time %d)  gap=%d"
            % (
                dict(self.trace_a.low_inputs),
                dict(self.trace_a.high_inputs),
                self.trace_a.time,
                dict(self.trace_b.high_inputs),
                self.trace_b.time,
                self.gap,
            )
        )


def default_value_space(declared: ast.Type) -> List[object]:
    """A small default candidate space per parameter type."""
    if declared.is_array:
        values: List[object] = []
        for length in range(0, 3):
            for combo in itertools.product((0, 1), repeat=length):
                values.append(list(combo))
        return values
    if declared.base is ast.BaseType.BOOL:
        return [0, 1]
    if declared.base is ast.BaseType.UINT:
        return [0, 1, 2, 3]
    if declared.base is ast.BaseType.BYTE:
        return [0, 1, 255]
    return [-2, 0, 1, 3]


def enumerate_inputs(
    cfg: ControlFlowGraph,
    overrides: Optional[Dict[str, Sequence[object]]] = None,
    limit: int = 4096,
) -> Iterator[Dict[str, object]]:
    """All combinations of candidate values (capped at ``limit``)."""
    overrides = overrides or {}
    spaces = [
        list(overrides.get(p.name, default_value_space(p.declared)))
        for p in cfg.params
    ]
    count = 0
    for combo in itertools.product(*spaces):
        if count >= limit:
            return
        count += 1
        yield {p.name: value for p, value in zip(cfg.params, combo)}


def run_all(
    interpreter: Interpreter,
    cfg: ControlFlowGraph,
    overrides: Optional[Dict[str, Sequence[object]]] = None,
    limit: int = 4096,
) -> List[Trace]:
    """Execute the procedure on the whole candidate space."""
    traces = []
    for args in enumerate_inputs(cfg, overrides, limit):
        try:
            traces.append(interpreter.run(cfg.name, args))
        except InterpError:
            continue  # e.g. index out of bounds on a nonsense combination
    return traces


def find_witness(
    interpreter: Interpreter,
    cfg: ControlFlowGraph,
    gap: int = 1,
    spec: Optional[AttackSpecification] = None,
    overrides: Optional[Dict[str, Sequence[object]]] = None,
    limit: int = 4096,
) -> Optional[Witness]:
    """Search for a low-equivalent trace pair with a timing gap >= ``gap``.

    When ``spec`` names two trails, the pair must additionally follow
    them (one trace per trail, in either order).
    """
    traces = run_all(interpreter, cfg, overrides, limit)
    by_low: Dict[Tuple, List[Trace]] = {}
    for trace in traces:
        by_low.setdefault(trace.low_inputs, []).append(trace)
    best: Optional[Witness] = None
    for group in by_low.values():
        for a, b in itertools.combinations(group, 2):
            if a.high_inputs == b.high_inputs:
                continue
            if abs(a.time - b.time) < gap:
                continue
            if spec is not None and spec.is_pair:
                follows = (
                    spec.trail_a.accepts(a.edges) and spec.trail_b.accepts(b.edges)  # type: ignore[union-attr]
                ) or (
                    spec.trail_a.accepts(b.edges) and spec.trail_b.accepts(a.edges)  # type: ignore[union-attr]
                )
                if not follows:
                    continue
            candidate = Witness(a, b)
            if best is None or candidate.gap > best.gap:
                best = candidate
    return best


def max_gap_per_low(traces: Iterable[Trace]) -> int:
    """The largest running-time spread among low-equivalent traces."""
    by_low: Dict[Tuple, List[int]] = {}
    for trace in traces:
        by_low.setdefault(trace.low_inputs, []).append(trace.time)
    return max(
        (max(times) - min(times) for times in by_low.values()), default=0
    )
