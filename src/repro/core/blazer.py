"""The Blazer driver: Fig. 2's alternation of REFINEPARTITION,
CHECKSAFE and CHECKATTACK.

Pipeline: source → parse/type-check → stack bytecode (+ verifier) →
register-IR CFG (lifter) → taint classification → iterative trail
refinement with per-trail bound analysis.

Safety phase
    All partition leaves get bounds; a leaf is acceptable when its trail
    is infeasible, or its bound is narrow (observer model) and mentions
    only low-security symbols.  Otherwise the driver splits a failing
    leaf at a fresh *low-only* branch (ψ-quotient preserving) and tries
    again, until no refinement is possible.

Attack phase
    Failing leaves are split at *secret-dependent* branches; a pair of
    sibling components with observably different bounds is an attack
    specification (the choice between them depends on the secret).  A
    single component whose bound mentions a secret symbol is reported
    when no pair is found.  If neither exists the driver gives up
    (verdict "unknown").
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bounds.analysis import (
    BoundAnalysis,
    BoundResult,
    nonneg_symbols,
    symbol_levels,
)
from repro.bounds.cost import CostBound
from repro.bounds.interproc import ProcBound, compute_proc_bounds
from repro.bounds.summaries import SummaryRegistry, default_summaries
from repro.bytecode import compile_program, verify_module
from repro.cfg.graph import ControlFlowGraph
from repro.core.attack import AttackSpecification
from repro.core.observer import ObserverModel, PolynomialDegreeObserver
from repro.domains import DOMAINS
from repro.domains.base import Domain
from repro.ir import lift_module
from repro.lang import ast, frontend
from repro.obs.trace import current_context, span as trace_span
from repro.perf import runtime
from repro.perf.cache import AnalysisCache
from repro.perf.parallel import thread_map_chunked
from repro.resilience.budget import Budget, DegradationReport
from repro.taint import TaintResult, analyze_taint
from repro.trails import PartitionTree, Trail, TrailNode, split_trail
from repro.util.errors import AnalysisError, ResourceExhausted


@dataclass
class BlazerConfig:
    """Knobs of the driver (defaults match the MicroBench setup).

    ``strategies`` is the REFINEPARTITION strategy chain for safety
    splits (the paper's "collection of pluggable strategies"): each is
    tried in order until one makes progress.  Defaults to the
    occurrence split; prepend :class:`~repro.trails.RegexNodeSplit` to
    prefer the paper's constructor-level splits where the regex shape
    allows them.
    """

    domain: str = "zone"
    observer: Optional[ObserverModel] = None
    summaries: Optional[SummaryRegistry] = None
    max_leaves: int = 48
    max_attack_depth: int = 6
    strategies: Optional[tuple] = None
    # Perf layer (docs/PERFORMANCE.md): ``cache`` forces the perf layer
    # on/off for this driver (None = inherit the process-wide flag);
    # ``jobs`` > 1 fans leaf evaluation out over an in-process worker
    # pool whenever a partition has at least ``parallel_leaf_min``
    # unevaluated leaves.
    cache: Optional[bool] = None
    jobs: int = 1
    parallel_leaf_min: int = 4
    # Incremental re-analysis plane (docs/PERFORMANCE.md): forces the
    # REPRO_PERF_INCREMENTAL sub-flag on/off for this driver (None =
    # inherit the process-wide flag).  Off reproduces the
    # pre-incremental engine exactly — same results, same hit/miss
    # counters — which is what the differential battery compares
    # against.
    incremental: Optional[bool] = None
    # Resilience layer (docs/RESILIENCE.md): a cooperative Budget bounds
    # this driver's analyze() calls (wall clock, refinement iterations,
    # fixpoint steps).  On exhaustion the driver degrades soundly: the
    # affected leaves get ⊤ bounds, the verdict becomes "unknown" and
    # carries a DegradationReport.  None (the default) adds no
    # checkpoints anywhere — the exact seed behavior.
    budget: Optional[Budget] = None
    # Service layer (docs/SERVICE.md): path of a persistent JSONL tier
    # for trail-keyed bound results, shared across drivers and worker
    # processes.  None (the default) keeps the cache purely in-memory.
    disk_cache: Optional[str] = None

    def resolved_observer(self) -> ObserverModel:
        return self.observer if self.observer is not None else PolynomialDegreeObserver()

    def resolved_domain(self) -> Domain:
        return DOMAINS[self.domain]


@dataclass
class BlazerVerdict:
    """The outcome of analyzing one procedure."""

    proc: str
    status: str  # "safe" | "attack" | "unknown"
    tree: PartitionTree
    attack: Optional[AttackSpecification] = None
    safety_seconds: float = 0.0
    attack_seconds: float = 0.0
    size: int = 0  # CFG basic blocks (the Size column of Table 1)
    # Perf-layer observability: hits/misses accumulated across every
    # cache category (trail bounds, zone closures, transfer effects, …)
    # during this analyze() call; ``cache_stats`` has the per-category
    # breakdown.  All zero when the perf layer is disabled.
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stats: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    # One-sided event counters accumulated during analyze() (injected
    # faults, quarantines, ``refine.dirty`` loop skips, …) — volatile
    # observability like cache_stats, never part of the digest.
    cache_events: Dict[str, int] = field(default_factory=dict)
    # Resilience observability: non-None when a budget tripped and the
    # driver degraded to "unknown"; the counters say how many partition
    # leaves received ⊤ bounds and how many cache entries were
    # quarantined (evicted as corrupt and recomputed) during analyze().
    degradation: Optional[DegradationReport] = None
    degraded_leaves: int = 0
    quarantined: int = 0
    # Observability (docs/OBSERVABILITY.md): wall seconds the driver
    # spent per phase — "taint", "bounds" (every per-trail bound
    # analysis, CHECKSAFE and CHECKATTACK alike), "refine", "attack",
    # "total".  Volatile like the other timings: stripped from digests.
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        return self.degradation is not None

    @property
    def total_seconds(self) -> float:
        return self.safety_seconds + self.attack_seconds

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def render(self) -> str:
        lines = [
            "%s: %s (size=%d, safety=%.2fs%s)"
            % (
                self.proc,
                self.status.upper(),
                self.size,
                self.safety_seconds,
                ", attack search=%.2fs" % self.attack_seconds
                if self.attack_seconds
                else "",
            )
        ]
        if self.degradation is not None:
            lines.append(self.degradation.render())
        lines.append(self.tree.render())
        if self.attack is not None:
            lines.append(self.attack.render())
        return "\n".join(lines)


class Blazer:
    """Analyzes the procedures of one program."""

    def __init__(self, program: ast.Program, config: Optional[BlazerConfig] = None):
        self.config = config or BlazerConfig()
        self.program = program
        # Arm the wall clock now so construction time (compilation,
        # interprocedural bounds) counts against the deadline; the
        # construction pipeline itself is bounded by the engine's
        # max_iterations, so checkpoints only begin in analyze().
        if self.config.budget is not None:
            self.config.budget.start()
        # First budget exhaustion seen during the current analyze() call
        # (None while healthy); reset per analysis.
        self._exhaustion: Optional[ResourceExhausted] = None
        self._exhaustion_phase: str = "safety"
        with self._perf_ctx(), self._incremental_ctx(), trace_span("blazer.construct"):
            module = compile_program(program)
            verify_module(module)
            self.module = module
            self.cfgs: Dict[str, ControlFlowGraph] = lift_module(module)
            self._domain = self.config.resolved_domain()
            self._summaries = (
                self.config.summaries
                if self.config.summaries is not None
                else default_summaries()
            )
            disk = None
            scope = ""
            if self.config.disk_cache:
                from repro.perf.disktier import DiskTier
                from repro.perf.fingerprint import analysis_scope_fingerprint

                disk = DiskTier(self.config.disk_cache)
                # The disk tier is shared across drivers, configurations
                # and programs; scope its keys by everything a bound
                # result depends on beyond its trail — domain, summaries
                # (max_bits), and all defined procedure bodies (callee
                # bounds reach every trail through proc_bounds).
                scope = analysis_scope_fingerprint(
                    self.config.domain, self._summaries.fingerprint(), self.cfgs
                )
            self.cache = AnalysisCache(disk=disk, disk_scope=scope)
            self._shared_scope: Optional[tuple] = None
            self._proc_bounds: Dict[str, ProcBound] = self._compute_proc_bounds()
            self._taints: Dict[str, TaintResult] = {}
        # Per-phase wall-clock accumulators for the current analyze()
        # call.  Leaf evaluation can fan out over worker threads
        # (``jobs`` > 1), so accumulation is lock-protected.
        self._phase: Dict[str, float] = {}
        self._phase_lock = threading.Lock()

    def _add_phase(self, name: str, seconds: float) -> None:
        with self._phase_lock:
            self._phase[name] = self._phase.get(name, 0.0) + seconds

    def _phase_snapshot(self, verdict: "BlazerVerdict") -> Dict[str, float]:
        with self._phase_lock:
            phases = dict(self._phase)
        phases["attack"] = verdict.attack_seconds
        phases["total"] = verdict.total_seconds
        return {name: round(phases[name], 6) for name in sorted(phases)}

    @staticmethod
    def from_source(source: str, config: Optional[BlazerConfig] = None) -> "Blazer":
        return Blazer(frontend(source), config)

    # -- helpers -------------------------------------------------------------

    def _perf_ctx(self):
        """The perf-flag context for this driver's work: forces the flag
        to ``config.cache`` when set, otherwise leaves the process-wide
        flag alone."""
        if self.config.cache is None:
            return nullcontext()
        return runtime.override(self.config.cache)

    def _incremental_ctx(self):
        """Ditto for the incremental sub-flag (``config.incremental``)."""
        if self.config.incremental is None:
            return nullcontext()
        return runtime.override_incremental(self.config.incremental)

    def taint(self, proc: str) -> TaintResult:
        if proc not in self._taints:
            started = time.perf_counter()
            with trace_span("taint", proc=proc):
                self._taints[proc] = analyze_taint(self.cfgs[proc])
            self._add_phase("taint", time.perf_counter() - started)
        return self._taints[proc]

    def _bound(self, cfg: ControlFlowGraph, trail: Trail) -> BoundResult:
        started = time.perf_counter()
        try:
            return self.cache.bound_result(
                trail, lambda: self._bound_uncached(cfg, trail)
            )
        finally:
            self._add_phase("bounds", time.perf_counter() - started)

    def _shared_scope_key(self) -> tuple:
        """The analysis scope shared-tier entries are namespaced by: the
        domain, the summary registry, and every defined procedure body
        (callee bounds reach each trail through ``proc_bounds``).  Two
        drivers with equal scope keys produce interchangeable bound
        results — the in-process analogue of the disk tier's
        ``analysis_scope_fingerprint``."""
        if self._shared_scope is None:
            from repro.perf.fingerprint import module_fingerprint

            self._shared_scope = (
                self.config.domain,
                self._summaries.fingerprint(),
                module_fingerprint(self.cfgs),
            )
        return self._shared_scope

    def _compute_proc_bounds(self) -> Dict[str, ProcBound]:
        """Interprocedural bounds, shared across driver instances with
        the same scope under the incremental plane (``bounds.proc``) —
        diffcheck sweeps and refinement-heavy benchmarks construct many
        drivers over the same program."""
        if not (runtime.incremental_enabled() and self.config.budget is None):
            return compute_proc_bounds(self.cfgs, self._domain, self._summaries)
        from repro.perf import incremental

        key = self._shared_scope_key()
        table = runtime.memo_table(incremental.PROC_BOUNDS_TABLE)
        hit = table.get(key)
        if hit is not None:
            runtime.STATS.hit(incremental.PROC_BOUNDS_TABLE)
            return hit
        runtime.STATS.miss(incremental.PROC_BOUNDS_TABLE)
        bounds = compute_proc_bounds(self.cfgs, self._domain, self._summaries)
        table[key] = bounds
        return bounds

    def _bound_uncached(self, cfg: ControlFlowGraph, trail: Trail) -> BoundResult:
        def compute() -> BoundResult:
            analysis = BoundAnalysis(
                cfg,
                self._domain,
                self._summaries,
                trail_dfa=trail.dfa,
                proc_bounds=self._proc_bounds,
                budget=self.config.budget,
                trail=trail,
            )
            return analysis.compute()

        if not (runtime.incremental_enabled() and self.config.budget is None):
            return compute()
        # Shared cross-driver tier: keyed by scope + the trail's content
        # fingerprint + the trail DFA's *exact* state structure (bound
        # results embed raw DFA state numbers in their product-node
        # invariants, so an isomorphism-class key would mislabel states).
        from repro.perf import incremental

        key = incremental.shared_bound_key(self._shared_scope_key(), trail)
        result = incremental.lookup_shared_bound(key)
        if result is not None:
            return result
        result = compute()
        incremental.store_shared_bound(key, result)
        return result

    # -- graceful degradation ------------------------------------------------

    def _top_bound(self, cfg: ControlFlowGraph) -> BoundResult:
        """The ⊤ substitute for a leaf whose analysis ran out of budget:
        feasible (we cannot rule the trail out) with an unbounded
        running-time range (we claim nothing about it)."""
        return BoundResult(
            feasible=True,
            bound=CostBound.unbounded(nonneg=nonneg_symbols(cfg)),
            degraded=True,
        )

    def _note_exhaustion(self, exc: ResourceExhausted, phase: str) -> None:
        """Record the first budget trip of this analyze() call."""
        if self._exhaustion is None:
            self._exhaustion = exc
            self._exhaustion_phase = phase

    def _guarded_bound(
        self, cfg: ControlFlowGraph, trail: Trail, parent=None
    ) -> BoundResult:
        """CHECKSAFE leaf evaluation that degrades instead of raising.

        Once the budget has tripped, every remaining leaf's checkpoint
        fires immediately, so the whole partition settles to ⊤ bounds in
        time linear in the leaf count — never a hang.

        ``parent`` is the caller's span context: worker threads have
        empty span stacks of their own, so the parallel path passes it
        explicitly to keep CHECKSAFE spans nested under the round.
        """
        with trace_span("checksafe", parent=parent, trail=trail):
            try:
                return self._bound(cfg, trail)
            except ResourceExhausted as exc:
                self._note_exhaustion(exc, "safety")
                return self._top_bound(cfg)

    def _classify(self, cfg: ControlFlowGraph, node: TrailNode) -> None:
        """CHECKSAFE for one component."""
        assert node.bound is not None
        result = node.bound
        if not result.feasible:
            node.status = "infeasible"
            return
        bound = result.bound
        assert bound is not None
        if result.degraded:
            # ⊤ substitute after budget exhaustion: deliberately "wide"
            # (an unbounded range is never narrow), so a degraded leaf
            # can never contribute to a "safe" verdict.
            node.status = "wide"
            node.note = "budget exhausted: ⊤ bound assumed"
            return
        levels = symbol_levels(cfg)
        secret_syms = sorted(
            s
            for s in bound.symbols()
            if levels.get(s) is ast.SecLevel.SECRET
        )
        observer = self.config.resolved_observer()
        if secret_syms:
            node.status = "wide"
            node.note = "bound depends on secret symbol(s): %s" % ", ".join(
                secret_syms
            )
            return
        if observer.is_narrow(bound):
            node.status = "safe"
        else:
            node.status = "wide"
            node.note = "running-time range is not narrow"

    def _evaluate_leaves(self, cfg: ControlFlowGraph, tree: PartitionTree) -> None:
        pending = [leaf for leaf in tree.leaves() if leaf.bound is None]
        if self.config.jobs > 1 and len(pending) >= self.config.parallel_leaf_min:
            # Fan the independent leaf analyses out over an in-process
            # pool in *chunks* — one task per handful of leaves, not per
            # leaf, since a cached leaf bound settles in microseconds
            # and a per-leaf future would cost more than the work.
            # Results come back in input order and classification stays
            # sequential, so the outcome is identical to the serial
            # loop.  The guard lives inside the mapped function, so a
            # budget trip in one worker thread degrades that leaf
            # without tearing down the pool.
            ctx = current_context()
            bounds = thread_map_chunked(
                lambda leaf: self._guarded_bound(cfg, leaf.trail, parent=ctx),
                pending,
                self.config.jobs,
            )
            for leaf, bound in zip(pending, bounds):
                leaf.bound = bound
                self._classify(cfg, leaf)
            return
        for leaf in pending:
            leaf.bound = self._guarded_bound(cfg, leaf.trail)
            self._classify(cfg, leaf)

    def _refine_for_safety(
        self, cfg: ControlFlowGraph, taint: TaintResult, tree: PartitionTree
    ) -> bool:
        """One REFINEPARTITION(·, safe) step; False when out of splits."""
        if len(tree.leaves()) >= self.config.max_leaves:
            return False
        for leaf in tree.leaves():
            if leaf.status != "wide":
                continue
            assert leaf.bound is not None
            live_blocks = (
                leaf.bound.main.reachable_blocks()
                if leaf.bound.main is not None
                else set(cfg.block_ids())
            )
            for block in taint.low_branches():
                if block in leaf.trail.split_blocks() or block not in live_blocks:
                    continue
                if self.config.strategies is not None:
                    children = split_trail(
                        leaf.trail, block, "taint", self.config.strategies
                    )
                else:
                    children = split_trail(leaf.trail, block, "taint")
                if not children:
                    continue
                for child in children:
                    leaf.add_child(child)
                return True
        return False

    # -- the two phases ---------------------------------------------------------

    def analyze(self, proc: str) -> BlazerVerdict:
        if self.config.budget is not None:
            self.config.budget.start()
        with self._phase_lock:
            self._phase = {}
        with self._perf_ctx(), self._incremental_ctx(), trace_span(
            "blazer.analyze", proc=proc
        ) as root:
            stats_before = runtime.STATS.snapshot()
            events_before = runtime.STATS.events_snapshot()
            verdict = self._analyze(proc)
            delta = runtime.STATS.delta(stats_before)
            verdict.cache_stats = delta
            verdict.cache_hits = sum(pair[0] for pair in delta.values())
            verdict.cache_misses = sum(pair[1] for pair in delta.values())
            events = runtime.STATS.events_delta(events_before)
            verdict.cache_events = events
            verdict.quarantined = events.get("cache.quarantine", 0)
            verdict.phase_seconds = self._phase_snapshot(verdict)
            root.annotate(status=verdict.status, leaves=len(verdict.tree.leaves()))
            return verdict

    def _degradation_report(self, tree: PartitionTree) -> DegradationReport:
        assert self._exhaustion is not None
        report = DegradationReport.from_exhaustion(
            self._exhaustion, self.config.budget, self._exhaustion_phase
        )
        leaves = tree.leaves()
        report.leaves_total = len(leaves)
        report.leaves_degraded = sum(
            1 for l in leaves if l.bound is not None and l.bound.degraded
        )
        return report

    def _analyze(self, proc: str) -> BlazerVerdict:
        cfg = self.cfgs[proc]
        taint = self.taint(proc)
        tree = PartitionTree(Trail.most_general(cfg))
        budget = self.config.budget
        self._exhaustion = None
        self._exhaustion_phase = "safety"
        started = time.perf_counter()

        rounds = 0
        while True:
            rounds += 1
            with trace_span("blazer.round", round=rounds, leaves=len(tree.leaves())):
                self._evaluate_leaves(cfg, tree)
                if self._exhaustion is not None:
                    break  # a leaf degraded to ⊤ — stop refining, degrade
                failing = [l for l in tree.leaves() if l.status == "wide"]
                if not failing:
                    safety_seconds = time.perf_counter() - started
                    verdict = BlazerVerdict(
                        proc=proc,
                        status="safe",
                        tree=tree,
                        safety_seconds=safety_seconds,
                        size=cfg.size,
                    )
                    return verdict
                refine_started = time.perf_counter()
                try:
                    if budget is not None:
                        budget.refinement("blazer.refine")
                    with trace_span("blazer.refine", round=rounds):
                        progressed = self._refine_for_safety(cfg, taint, tree)
                    if not progressed:
                        break
                except ResourceExhausted as exc:
                    self._note_exhaustion(exc, "safety")
                    break
                finally:
                    self._add_phase("refine", time.perf_counter() - refine_started)
        safety_seconds = time.perf_counter() - started

        attack = None
        attack_seconds = 0.0
        if self._exhaustion is None:
            # CHECKATTACK needs genuine bounds to certify an observable
            # difference, so it only runs on a healthy partition; its
            # own budget trips abort the search, never fake an attack.
            attack_started = time.perf_counter()
            with trace_span("checkattack", proc=proc) as attack_span:
                try:
                    attack = self._search_attack(cfg, taint, tree)
                except ResourceExhausted as exc:
                    self._note_exhaustion(exc, "attack")
                attack_span.annotate(found=attack is not None)
            attack_seconds = time.perf_counter() - attack_started

        degradation = (
            self._degradation_report(tree) if self._exhaustion is not None else None
        )
        return BlazerVerdict(
            proc=proc,
            status="attack" if attack is not None else "unknown",
            tree=tree,
            attack=attack,
            safety_seconds=safety_seconds,
            attack_seconds=attack_seconds,
            size=cfg.size,
            degradation=degradation,
            degraded_leaves=degradation.leaves_degraded if degradation else 0,
        )

    def _accepting_exit_state(self, node: TrailNode):
        """Join of the invariants at *accepting* exit nodes of a trail's
        product analysis (the states of its complete executions)."""
        assert node.bound is not None and node.bound.main is not None
        cfg = self.cfgs[node.bound.main.cfg.name]
        dfa = node.trail.dfa
        state = self._domain.bottom()
        for pnode, inv in node.bound.main.invariants.items():
            if pnode[0] != cfg.exit_id:
                continue
            if pnode[1] not in dfa.accepting:
                continue
            state = state.join(inv)
        return state

    def _low_compatible(self, cfg: ControlFlowGraph, a: TrailNode, b: TrailNode) -> bool:
        """CHECKATTACK's realizability condition: the two components must
        admit a *common public input* — otherwise their running-time
        difference is driven by low data and T1 ⊎ T2 never splits a
        low-equivalent pair (no ψ violation).  Checked by meeting each
        side's accepting-exit invariant with the other side's constraints
        over public symbols."""
        levels = symbol_levels(cfg)
        low_syms = {s for s, lvl in levels.items() if lvl is ast.SecLevel.PUBLIC}
        state_a = self._accepting_exit_state(a)
        state_b = self._accepting_exit_state(b)
        if state_a.is_bottom() or state_b.is_bottom():
            return False
        for state, other in ((state_a, state_b), (state_b, state_a)):
            refined = state
            for cons in other.constraints():
                if set(cons.variables()) <= low_syms:
                    refined = refined.guard(cons)
            if refined.is_bottom():
                return False
        return True

    def _sec_splits(self, node: TrailNode, block: int) -> List[List[Trail]]:
        """Candidate sec splits at a branch: one per branch edge."""
        from repro.trails.refine import OccurrenceSplit

        cfg = self.cfgs[node.trail.cfg.name]
        strategy = OccurrenceSplit()
        out: List[List[Trail]] = []
        for edge in cfg.branch_edges(block):
            components = strategy.split_on_edge(node.trail, block, edge, "sec")
            if components:
                out.append(components)
        return out

    def _search_attack(
        self, cfg: ControlFlowGraph, taint: TaintResult, tree: PartitionTree
    ) -> Optional[AttackSpecification]:
        """CHECKATTACK with REFINEPARTITION(·, vulnerable).

        A pair of sec-split siblings is an attack specification when
        (i) both are feasible, (ii) their bounds are observably
        distinguishable, and (iii) they admit a common public input
        (realizability — the paper's "T1 ⊎ T2 is not a ψ_SC-quotient
        partition" condition).  Both polarities of each secret branch
        are tried."""
        observer = self.config.resolved_observer()
        queue: List[Tuple[TrailNode, int]] = [
            (leaf, 0) for leaf in tree.leaves() if leaf.status == "wide"
        ]
        correlated: Optional[AttackSpecification] = None
        while queue:
            node, depth = queue.pop(0)
            assert node.bound is not None
            if not node.bound.feasible:
                continue
            if correlated is None and node.note.startswith("bound depends on secret"):
                correlated = AttackSpecification(
                    proc=cfg.name,
                    trail_a=node.trail,
                    bound_a=node.bound,
                    reason=node.note,
                )
            if depth >= self.config.max_attack_depth:
                continue
            live_blocks = (
                node.bound.main.reachable_blocks()
                if node.bound.main is not None
                else set(cfg.block_ids())
            )
            attached = False
            for block in taint.high_branches():
                if block in node.trail.split_blocks() or block not in live_blocks:
                    continue
                for children in self._sec_splits(node, block):
                    child_nodes = [TrailNode(trail=c, parent=node) for c in children]
                    for child in child_nodes:
                        with trace_span(
                            "checkattack.bound", trail=child.trail, block=block
                        ):
                            child.bound = self._bound(cfg, child.trail)
                        self._classify(cfg, child)
                    feasible = [
                        c
                        for c in child_nodes
                        if c.bound is not None and c.bound.feasible
                    ]
                    if len(feasible) == 2:
                        bound_a = feasible[0].bound.bound  # type: ignore[union-attr]
                        bound_b = feasible[1].bound.bound  # type: ignore[union-attr]
                        assert bound_a is not None and bound_b is not None
                        if observer.distinguishable(
                            bound_a, bound_b
                        ) and self._low_compatible(cfg, feasible[0], feasible[1]):
                            node.children.extend(child_nodes)
                            feasible[0].status = "attack"
                            feasible[1].status = "attack"
                            return AttackSpecification(
                                proc=cfg.name,
                                trail_a=feasible[0].trail,
                                bound_a=feasible[0].bound,  # type: ignore[arg-type]
                                trail_b=feasible[1].trail,
                                bound_b=feasible[1].bound,
                                reason=(
                                    "choice between the trails depends on secret "
                                    "data (branch b%d) and their running times "
                                    "differ observably" % block
                                ),
                            )
                    if not attached and feasible:
                        # Keep one split for deeper exploration.
                        node.children.extend(child_nodes)
                        attached = True
                        for child in feasible:
                            queue.append((child, depth + 1))
                if attached:
                    break  # one attached split per node per round
        return correlated


def analyze_source(
    source: str, proc: str, config: Optional[BlazerConfig] = None
) -> BlazerVerdict:
    """Convenience wrapper: analyze one procedure of a source program."""
    return Blazer.from_source(source, config).analyze(proc)


# -- the job-shaped entry point ------------------------------------------------

# Payload fields analyze_job understands; everything here (and nothing
# else) participates in the service's request fingerprints, because this
# is exactly the set of knobs that can change the analysis outcome.
JOB_FIELDS = (
    "source",
    "proc",
    "domain",
    "observer",
    "threshold",
    "max_input",
    "max_bits",
    "deadline",
    "max_refinements",
    "max_steps",
)


def job_config(payload: Dict[str, object]) -> BlazerConfig:
    """A :class:`BlazerConfig` for one plain-dict job payload."""
    from repro.core.observer import ConcreteThresholdObserver

    observer: ObserverModel
    if payload.get("observer", "degree") == "threshold":
        observer = ConcreteThresholdObserver(
            threshold=int(payload.get("threshold", 25_000)),
            default_max=int(payload.get("max_input", 4096)),
        )
    else:
        observer = PolynomialDegreeObserver()
    budget = None
    limits = [payload.get(k) for k in ("deadline", "max_refinements", "max_steps")]
    if any(v is not None for v in limits):
        budget = Budget(
            wall_seconds=limits[0],
            max_refinements=limits[1],
            max_steps=limits[2],
        )
    return BlazerConfig(
        domain=str(payload.get("domain", "zone")),
        observer=observer,
        summaries=default_summaries(int(payload.get("max_bits", 4096))),
        budget=budget,
        disk_cache=payload.get("disk_cache") or None,  # type: ignore[arg-type]
    )


def resolve_proc(cfgs: Dict[str, object], requested: Optional[str]) -> str:
    """Pick the procedure a request names (or the only one there is)."""
    if requested is not None:
        if requested not in cfgs:
            raise AnalysisError(
                "no procedure %r (available: %s)"
                % (requested, ", ".join(sorted(cfgs)))
            )
        return requested
    if len(cfgs) == 1:
        return next(iter(cfgs))
    raise AnalysisError(
        "program defines several procedures; pick one with 'proc' "
        "(available: %s)" % ", ".join(sorted(cfgs))
    )


def analyze_job(payload: Dict[str, object]) -> Dict[str, object]:
    """Job-shaped entry point: a JSON-safe request dict in, a JSON-safe
    result dict out (docs/SERVICE.md).

    ``payload`` carries ``source`` plus the optional :data:`JOB_FIELDS`
    knobs (and ``disk_cache``, the path of the persistent bound-result
    tier).  The result carries the rendered verdict JSON, its
    content digest — the cross-process equality witness — and the flat
    fields the service maps to exit codes.  Raises
    :class:`~repro.util.errors.ReproError` on malformed programs.
    """
    from repro.core.report import verdict_digest, verdict_to_dict

    source = payload.get("source")
    if not isinstance(source, str) or not source.strip():
        raise AnalysisError("job payload needs a non-empty 'source'")
    blazer = Blazer.from_source(source, job_config(payload))
    proc = resolve_proc(blazer.cfgs, payload.get("proc"))  # type: ignore[arg-type]
    verdict = blazer.analyze(proc)
    return {
        "proc": proc,
        "status": verdict.status,
        "degraded": verdict.degraded,
        "digest": verdict_digest(verdict),
        "verdict": verdict_to_dict(verdict),
    }
