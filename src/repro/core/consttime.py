"""Constant-time checking: the stronger property of Almeida et al.

The paper's related-work section contrasts timing-channel freedom with
*constant-time* (Almeida et al., USENIX Security'16): constant-time
"requires the program's control flow to be independent of the high
security data" — a strictly stronger requirement.  Blazer's whole point
is that TCF can hold without constant-time (e.g. ``modPow1_safe``
branches on secret exponent bits but balances the cost).

This checker decides the control-flow part of constant-time directly
from the taint classification: the program is constant-time (in control
flow) iff no *reachable* branch depends on high data.  It exists as the
comparison point: the tests demonstrate TCF-safe programs that fail it,
reproducing the paper's separation argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.absint.engine import Engine
from repro.core.blazer import Blazer
from repro.taint import Taint


@dataclass
class ConstTimeVerdict:
    proc: str
    constant_time: bool
    offending_branches: List[int] = field(default_factory=list)

    def render(self) -> str:
        if self.constant_time:
            return "%s: CONSTANT-TIME (no reachable secret-dependent branch)" % self.proc
        return "%s: NOT constant-time (secret-dependent branches: %s)" % (
            self.proc,
            ", ".join("b%d" % b for b in self.offending_branches),
        )


def verify_constant_time(blazer: Blazer, proc: str) -> ConstTimeVerdict:
    """Is the procedure's control flow independent of secret data?

    Branches that the abstract interpreter proves unreachable are
    ignored (the loopAndBranch pattern: a secret-guarded loop behind an
    infeasible condition does not break constant-time).
    """
    cfg = blazer.cfgs[proc]
    taint = blazer.taint(proc)
    result = Engine(cfg, blazer.config.resolved_domain()).analyze()
    reachable = result.reachable_blocks()
    offending = [
        block
        for block in taint.high_branches()
        if block in reachable
    ]
    return ConstTimeVerdict(
        proc=proc,
        constant_time=not offending,
        offending_branches=offending,
    )
