"""The paper's core: quotient partitioning, observers, the Blazer driver."""

from repro.core.attack import AttackSpecification
from repro.core.blazer import Blazer, BlazerConfig, BlazerVerdict, analyze_source
from repro.core.ksafety import (
    KSafetyProperty,
    ccf,
    det,
    is_quotient_partition,
    is_quotient_partitionable,
    psi_ccf,
    psi_det,
    psi_tcf,
    psi_true,
    rbps_holds,
    rbps_relational_holds,
    tcf,
    theorem_3_1_conclusion,
    theorem_3_1_relational,
)
from repro.core.capacity import CapacityVerdict, verify_channel_capacity
from repro.core.report import suite_report, verdict_to_dict, verdict_to_json
from repro.core.observer import (
    ConcreteThresholdObserver,
    ObserverModel,
    PolynomialDegreeObserver,
)

__all__ = [
    "AttackSpecification",
    "Blazer",
    "BlazerConfig",
    "BlazerVerdict",
    "analyze_source",
    "KSafetyProperty",
    "tcf",
    "det",
    "ccf",
    "psi_tcf",
    "psi_det",
    "psi_ccf",
    "psi_true",
    "is_quotient_partition",
    "is_quotient_partitionable",
    "rbps_holds",
    "rbps_relational_holds",
    "theorem_3_1_relational",
    "theorem_3_1_conclusion",
    "ObserverModel",
    "verify_channel_capacity",
    "CapacityVerdict",
    "verdict_to_dict",
    "verdict_to_json",
    "suite_report",
    "PolynomialDegreeObserver",
    "ConcreteThresholdObserver",
]
