"""Naive self-composition baseline (the approach the paper departs from).

Self-composition [Barthe–D'Argenio–Rezk] reduces the 2-safety property
tcf to a 1-safety property of the product program C;C' (variables
renamed) with the assertion that equal low inputs give (approximately)
equal instruction counters.  Here the product is realized directly on
the *pair state space*: the analysis explores pairs of product-CFG
nodes, with a pair abstract state over the disjoint union of the two
copies' variables (copy 2 renamed with a ``·$2`` suffix).

This exists as the comparison baseline for the ablation benchmark
(DESIGN.md §5): it demonstrates the cross-product state-space blowup the
decomposition avoids.  It verifies only the simplest benchmarks before
losing the correlation between the copies' counters — precisely the
"invariants split across the product program" failure mode described in
the paper's introduction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.absint.transfer import TransferFunctions, len_var
from repro.cfg.graph import ControlFlowGraph
from repro.domains.base import AbstractState, Domain
from repro.domains.linexpr import LinCons, LinExpr
from repro.ir import instr as ir
from repro.lang import ast
from repro.util.errors import AnalysisError, ResourceExhausted

_SUFFIX = "$2"

PairNode = Tuple[int, int]  # (block of copy 1, block of copy 2)


def _rename_copy(cfg: ControlFlowGraph) -> Dict[str, str]:
    mapping = {}
    for reg in cfg.reg_kinds:
        mapping[reg] = reg + _SUFFIX
        mapping[len_var(reg)] = len_var(reg) + _SUFFIX
    return mapping


@dataclass
class SelfCompositionResult:
    """Outcome of one pair-space verification attempt.

    ``outcome`` is three-valued so downstream consumers (the
    differential harness in particular) can tell "the baseline proved
    nothing" apart from "the baseline gave up": ``"verified"`` /
    ``"unverified"`` are real answers, ``"exhausted"`` means the pair
    state space blew past ``max_pairs`` or the abstract semantics hit a
    resource/feature wall — a precision data point, never a crash.
    """

    verified: bool
    seconds: float
    explored_pairs: int
    note: str = ""
    outcome: str = ""

    def __post_init__(self) -> None:
        if not self.outcome:
            self.outcome = "verified" if self.verified else "unverified"

    @property
    def exhausted(self) -> bool:
        return self.outcome == "exhausted"


class SelfComposition:
    """Pair-state abstract interpretation of C × C (lockstep-free)."""

    def __init__(
        self,
        cfg: ControlFlowGraph,
        domain: Domain,
        epsilon: int = 32,
        max_pairs: int = 4000,
    ):
        self._cfg = cfg
        self._domain = domain
        self._epsilon = epsilon
        self._max_pairs = max_pairs
        self._transfer = TransferFunctions(cfg)
        self._rename = _rename_copy(cfg)
        # Teach the shared transfer functions the kinds of the renamed
        # copy-2 registers (extra keys are inert for other analyses).
        for reg, kind in list(cfg.reg_kinds.items()):
            cfg.reg_kinds.setdefault(reg + _SUFFIX, kind)

    # The cost counters: fresh variables incremented by block costs.
    _COST1 = "#cost"
    _COST2 = "#cost" + _SUFFIX

    def verify(self) -> SelfCompositionResult:
        """Try to prove |cost1 - cost2| <= epsilon at the paired exits.

        Never raises on resource limits: state-space blowup and abstract
        semantics the pair renaming cannot model both yield an
        ``outcome="exhausted"`` result (see :class:`SelfCompositionResult`).
        """
        started = time.perf_counter()
        cfg = self._cfg
        domain = self._domain
        explored = 0
        try:
            entry = self._entry_state()
            invariants: Dict[PairNode, AbstractState] = {
                (cfg.entry, cfg.entry): entry
            }
            worklist: List[PairNode] = [(cfg.entry, cfg.entry)]
            visits: Dict[PairNode, int] = {}
            while worklist:
                node = worklist.pop(0)
                explored += 1
                if explored > self._max_pairs:
                    return SelfCompositionResult(
                        verified=False,
                        seconds=time.perf_counter() - started,
                        explored_pairs=explored,
                        note="pair state space exceeded %d nodes" % self._max_pairs,
                        outcome="exhausted",
                    )
                state = invariants[node]
                if state.is_bottom():
                    continue
                for succ, out_state in self._pair_successors(node, state):
                    old = invariants.get(succ, domain.bottom())
                    if out_state.leq(old):
                        continue
                    joined = old.join(out_state)
                    visits[succ] = visits.get(succ, 0) + 1
                    if visits[succ] > 3:
                        joined = old.widen(joined)
                    invariants[succ] = joined
                    if succ not in worklist:
                        worklist.append(succ)
        except (AnalysisError, ResourceExhausted) as exc:
            return SelfCompositionResult(
                verified=False,
                seconds=time.perf_counter() - started,
                explored_pairs=explored,
                note="pair semantics gave up: %s" % exc,
                outcome="exhausted",
            )

        exit_pair = (cfg.exit_id, cfg.exit_id)
        state = invariants.get(exit_pair)
        seconds = time.perf_counter() - started
        if state is None or state.is_bottom():
            # No common exit reached: vacuously fine (or a modeling gap).
            return SelfCompositionResult(True, seconds, explored, "exit unreachable")
        gap = LinExpr.var(self._COST1) - LinExpr.var(self._COST2)
        lo, hi = state.bounds_of(gap)
        ok = (
            lo is not None
            and hi is not None
            and -self._epsilon <= lo
            and hi <= self._epsilon
        )
        return SelfCompositionResult(
            verified=ok,
            seconds=seconds,
            explored_pairs=explored,
            note="cost gap in [%s, %s]" % (lo, hi),
        )

    # -- pair semantics ----------------------------------------------------------

    def _entry_state(self) -> AbstractState:
        state = self._transfer.entry_state(self._domain.top())
        state = self._rename_entry_constraints(state)
        # Equal low inputs; secrets unconstrained.
        for param in self._cfg.params:
            if param.is_secret:
                continue
            if param.declared.is_array:
                name = len_var(param.name)
            else:
                name = param.name
            state = state.guard(
                LinCons.eq(LinExpr.var(name), LinExpr.var(name + _SUFFIX))
            )
        state = state.assign(self._COST1, LinExpr.constant(0))
        state = state.assign(self._COST2, LinExpr.constant(0))
        return state

    def _rename_entry_constraints(self, state: AbstractState) -> AbstractState:
        # Re-impose the entry constraints for copy 2 under renamed vars.
        for param in self._cfg.params:
            if param.declared.is_array:
                state = state.guard(
                    LinCons.ge(LinExpr.var(len_var(param.name) + _SUFFIX), 0)
                )
            elif param.declared.base is ast.BaseType.UINT:
                state = state.guard(LinCons.ge(LinExpr.var(param.name + _SUFFIX), 0))
        return state

    def _pair_successors(
        self, node: PairNode, state: AbstractState
    ) -> List[Tuple[PairNode, AbstractState]]:
        """Advance copy 1 if it is not at the exit, else copy 2."""
        cfg = self._cfg
        b1, b2 = node
        results: List[Tuple[PairNode, AbstractState]] = []
        if b1 != cfg.exit_id:
            for succ, out_state in self._step_copy(b1, state, copy2=False):
                results.append(((succ, b2), out_state))
        elif b2 != cfg.exit_id:
            for succ, out_state in self._step_copy(b2, state, copy2=True):
                results.append(((b1, succ), out_state))
        return results

    def _step_copy(
        self, block_id: int, state: AbstractState, copy2: bool
    ) -> List[Tuple[int, AbstractState]]:
        cfg = self._cfg
        block = cfg.blocks[block_id]
        conds: Dict = {}
        for instr in block.instrs:
            instr = self._renamed_instr(instr) if copy2 else instr
            state = self._transfer.step(instr, state, conds)
        cost_var = self._COST2 if copy2 else self._COST1
        state = state.assign(
            cost_var, LinExpr.var(cost_var) + block.cost
        )
        out: List[Tuple[int, AbstractState]] = []
        succs = cfg.successors(block_id)
        is_branch = isinstance(block.term, ir.Branch) and len(succs) == 2
        for succ in succs:
            edge_state = state
            if is_branch:
                taken = succ == block.term.on_true  # type: ignore[union-attr]
                cons = self._transfer.branch_constraint(block_id, taken, conds)
                if cons is not None:
                    if copy2:
                        cons = cons.rename(self._rename)
                    edge_state = edge_state.guard(cons)
            out.append((succ, edge_state))
        return out

    def _renamed_instr(self, instr: ir.Instr) -> ir.Instr:
        """A copy-2 version of the instruction (registers suffixed)."""

        def op(o: ir.Operand) -> ir.Operand:
            if isinstance(o, ir.Reg):
                return ir.Reg(o.name + _SUFFIX)
            return o

        if isinstance(instr, ir.Assign):
            return ir.Assign(dst=op(instr.dst), src=op(instr.src), weight=instr.weight)  # type: ignore[arg-type]
        if isinstance(instr, ir.BinInstr):
            return ir.BinInstr(dst=op(instr.dst), op=instr.op, a=op(instr.a), b=op(instr.b), weight=instr.weight)  # type: ignore[arg-type]
        if isinstance(instr, ir.CmpInstr):
            return ir.CmpInstr(dst=op(instr.dst), op=instr.op, a=op(instr.a), b=op(instr.b), weight=instr.weight)  # type: ignore[arg-type]
        if isinstance(instr, ir.UnInstr):
            return ir.UnInstr(dst=op(instr.dst), op=instr.op, a=op(instr.a), weight=instr.weight)  # type: ignore[arg-type]
        if isinstance(instr, ir.ALoad):
            return ir.ALoad(dst=op(instr.dst), arr=op(instr.arr), idx=op(instr.idx), weight=instr.weight)  # type: ignore[arg-type]
        if isinstance(instr, ir.AStore):
            return ir.AStore(arr=op(instr.arr), idx=op(instr.idx), val=op(instr.val), weight=instr.weight)
        if isinstance(instr, ir.NewArr):
            return ir.NewArr(dst=op(instr.dst), size=op(instr.size), elem=instr.elem, weight=instr.weight)  # type: ignore[arg-type]
        if isinstance(instr, ir.ArrLen):
            return ir.ArrLen(dst=op(instr.dst), arr=op(instr.arr), weight=instr.weight)  # type: ignore[arg-type]
        if isinstance(instr, ir.CallInstr):
            return ir.CallInstr(
                dst=op(instr.dst) if instr.dst is not None else None,  # type: ignore[arg-type]
                callee=instr.callee,
                args=tuple(op(a) for a in instr.args),
                weight=instr.weight,
            )
        raise AnalysisError("cannot rename %r" % type(instr).__name__)
