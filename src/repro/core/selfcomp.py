"""Naive self-composition baseline (the approach the paper departs from).

Self-composition [Barthe–D'Argenio–Rezk] reduces the 2-safety property
tcf to a 1-safety property of the product program C;C' (variables
renamed) with the assertion that equal low inputs give (approximately)
equal instruction counters.  Here the product is realized directly on
the *pair state space*: the analysis explores pairs of product-CFG
nodes, with a pair abstract state over the disjoint union of the two
copies' variables (copy 2 renamed with a ``·$2`` suffix).

The pair semantics itself — renaming, equal-low entry states, per-copy
cost counters, per-copy block steps — is shared with the
property-directed checker (:mod:`repro.pdsc.pairing`); what makes this
the *eager* baseline is its fixed scheduling: copy 1 runs to its exit
before copy 2 moves at all, the sequential ``C;C'`` composition.

This exists as the comparison baseline for the ablation benchmark
(DESIGN.md §5): it demonstrates the cross-product state-space blowup the
decomposition avoids.  It verifies only the simplest benchmarks before
losing the correlation between the copies' counters — precisely the
"invariants split across the product program" failure mode described in
the paper's introduction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.cfg.graph import ControlFlowGraph
from repro.domains.base import AbstractState, Domain
from repro.pdsc.pairing import PairNode, PairSemantics, SUFFIX
from repro.util.errors import AnalysisError, ResourceExhausted

# Historical aliases: the renaming scheme predates the shared module.
_SUFFIX = SUFFIX


@dataclass
class SelfCompositionResult:
    """Outcome of one pair-space verification attempt.

    ``outcome`` is three-valued so downstream consumers (the
    differential harness in particular) can tell "the baseline proved
    nothing" apart from "the baseline gave up": ``"verified"`` /
    ``"unverified"`` are real answers, ``"exhausted"`` means the pair
    state space blew past ``max_pairs`` or the abstract semantics hit a
    resource/feature wall — a precision data point, never a crash.
    """

    verified: bool
    seconds: float
    explored_pairs: int
    note: str = ""
    outcome: str = ""

    def __post_init__(self) -> None:
        if not self.outcome:
            self.outcome = "verified" if self.verified else "unverified"

    @property
    def exhausted(self) -> bool:
        return self.outcome == "exhausted"


class SelfComposition:
    """Pair-state abstract interpretation of C × C (lockstep-free)."""

    def __init__(
        self,
        cfg: ControlFlowGraph,
        domain: Domain,
        epsilon: int = 32,
        max_pairs: int = 4000,
        summaries=None,
    ):
        self._cfg = cfg
        self._domain = domain
        self._epsilon = epsilon
        self._max_pairs = max_pairs
        self._semantics = PairSemantics(cfg, domain, summaries=summaries)

    def verify(self) -> SelfCompositionResult:
        """Try to prove |cost1 - cost2| <= epsilon at the paired exits.

        Never raises on resource limits: state-space blowup and abstract
        semantics the pair renaming cannot model both yield an
        ``outcome="exhausted"`` result (see :class:`SelfCompositionResult`).
        """
        started = time.perf_counter()
        cfg = self._cfg
        domain = self._domain
        sem = self._semantics
        explored = 0
        try:
            invariants: Dict[PairNode, AbstractState] = {
                sem.entry_node: sem.entry_state()
            }
            worklist: List[PairNode] = [sem.entry_node]
            visits: Dict[PairNode, int] = {}
            while worklist:
                node = worklist.pop(0)
                explored += 1
                if explored > self._max_pairs:
                    return SelfCompositionResult(
                        verified=False,
                        seconds=time.perf_counter() - started,
                        explored_pairs=explored,
                        note="pair state space exceeded %d nodes" % self._max_pairs,
                        outcome="exhausted",
                    )
                state = invariants[node]
                if state.is_bottom():
                    continue
                for succ, out_state in self._pair_successors(node, state):
                    old = invariants.get(succ, domain.bottom())
                    if out_state.leq(old):
                        continue
                    joined = old.join(out_state)
                    visits[succ] = visits.get(succ, 0) + 1
                    if visits[succ] > 3:
                        joined = old.widen(joined)
                    invariants[succ] = joined
                    if succ not in worklist:
                        worklist.append(succ)
        except (AnalysisError, ResourceExhausted) as exc:
            return SelfCompositionResult(
                verified=False,
                seconds=time.perf_counter() - started,
                explored_pairs=explored,
                note="pair semantics gave up: %s" % exc,
                outcome="exhausted",
            )

        state = invariants.get(sem.exit_node)
        seconds = time.perf_counter() - started
        if state is None or state.is_bottom():
            # No common exit reached: vacuously fine (or a modeling gap).
            return SelfCompositionResult(True, seconds, explored, "exit unreachable")
        lo, hi = sem.gap_bounds(state)
        ok = (
            lo is not None
            and hi is not None
            and -self._epsilon <= lo
            and hi <= self._epsilon
        )
        return SelfCompositionResult(
            verified=ok,
            seconds=seconds,
            explored_pairs=explored,
            note="cost gap in [%s, %s]" % (lo, hi),
        )

    # -- the eager schedule ------------------------------------------------------

    def _pair_successors(
        self, node: PairNode, state: AbstractState
    ) -> List[Tuple[PairNode, AbstractState]]:
        """Advance copy 1 if it is not at the exit, else copy 2."""
        cfg = self._cfg
        b1, b2 = node
        results: List[Tuple[PairNode, AbstractState]] = []
        if b1 != cfg.exit_id:
            for succ, out_state in self._semantics.step_copy(b1, state, copy2=False):
                results.append(((succ, b2), out_state))
        elif b2 != cfg.exit_id:
            for succ, out_state in self._semantics.step_copy(b2, state, copy2=True):
                results.append(((b1, succ), out_state))
        return results
