"""Attack specifications (Section 2.3).

When CHECKSAFE fails and further taint-based refinement is impossible,
Blazer switches to attack synthesis: it partitions on *secret*-dependent
branches and reports two trails whose choice depends on high data but
whose running times differ observably — a static witness schema.  "All
that remains is to ensure that these traces are feasible by finding
justifying inputs", which :mod:`repro.core.witness` automates for small
input spaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.bounds.analysis import BoundResult
from repro.trails.trail import Trail


@dataclass
class AttackSpecification:
    """Two trails split on high data with observably different times.

    ``single`` form: when a single component's bound already depends on
    a secret symbol (e.g. an upper bound mentioning ``pw#len``),
    ``trail_b``/``bound_b`` are None and the dependence itself is the
    finding.
    """

    proc: str
    trail_a: Trail
    bound_a: BoundResult
    trail_b: Optional[Trail] = None
    bound_b: Optional[BoundResult] = None
    reason: str = ""

    @property
    def is_pair(self) -> bool:
        return self.trail_b is not None

    def render(self) -> str:
        lines = ["attack specification for %s:" % self.proc]
        lines.append("  reason: %s" % self.reason)
        lines.append("  trail A: %s" % self.trail_a.description)
        lines.append("    bound: %s" % self.bound_a)
        if self.trail_b is not None:
            lines.append("  trail B: %s" % self.trail_b.description)
            lines.append("    bound: %s" % self.bound_b)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
