"""AST-to-bytecode compiler.

Compiles a type-checked :class:`~repro.lang.ast.Program` into a
:class:`~repro.bytecode.instructions.Module`.  The translation is a
conventional one-pass stack-code generator with backpatched labels:

* ``&&`` and ``||`` compile to short-circuit branches (as ``javac`` does),
  so conditions contribute branching blocks to the CFG — important for the
  taint/trail machinery, which reasons about branch blocks;
* ``for`` loops compile with a dedicated update label so that ``continue``
  jumps to the update statement;
* every named variable gets its own local slot (no slot reuse), which lets
  the lifter recover meaningful variable names.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bytecode.instructions import CodeObject, Instr, LocalVar, Module, Opcode
from repro.lang import ast
from repro.util.errors import CompileError


class _Label:
    """A forward-referenced jump target, resolved at the end of codegen."""

    __slots__ = ("pc",)

    def __init__(self) -> None:
        self.pc: Optional[int] = None


_CMP_OPS = {
    ast.BinOp.LT: Opcode.CMPLT,
    ast.BinOp.LE: Opcode.CMPLE,
    ast.BinOp.GT: Opcode.CMPGT,
    ast.BinOp.GE: Opcode.CMPGE,
    ast.BinOp.EQ: Opcode.CMPEQ,
    ast.BinOp.NE: Opcode.CMPNE,
}

_ARITH_OPS = {
    ast.BinOp.ADD: Opcode.ADD,
    ast.BinOp.SUB: Opcode.SUB,
    ast.BinOp.MUL: Opcode.MUL,
    ast.BinOp.DIV: Opcode.DIV,
    ast.BinOp.MOD: Opcode.MOD,
}


class _ProcCompiler:
    def __init__(self, proc: ast.ProcDecl, program: ast.Program):
        self._proc = proc
        self._program = program
        self._instrs: List[Instr] = []
        self._labels: List[_Label] = []
        self._patch: Dict[int, _Label] = {}
        self._scopes: List[Dict[str, int]] = [{}]
        self._locals: List[LocalVar] = []
        self._params: List[LocalVar] = []
        self._source_lines: Dict[int, int] = {}
        # (break_label, continue_label) per enclosing loop.
        self._loop_stack: List[tuple] = []
        for i, param in enumerate(proc.params):
            self._params.append(
                LocalVar(i, param.name, param.declared, is_param=True, level=param.level)
            )
            self._scopes[0][param.name] = i

    # -- emission helpers ----------------------------------------------------

    def _emit(self, instr: Instr, line: int = 0) -> int:
        pc = len(self._instrs)
        self._instrs.append(instr)
        if line:
            self._source_lines[pc] = line
        return pc

    def _new_label(self) -> _Label:
        label = _Label()
        self._labels.append(label)
        return label

    def _bind(self, label: _Label) -> None:
        if label.pc is not None:
            raise CompileError("label bound twice")
        label.pc = len(self._instrs)

    def _emit_jump(self, op: Opcode, label: _Label, line: int = 0) -> None:
        pc = self._emit(Instr(op, None), line)
        self._patch[pc] = label

    def _resolve_labels(self) -> None:
        for pc, label in self._patch.items():
            if label.pc is None:
                raise CompileError("unbound label at pc %d" % pc)
            self._instrs[pc].arg = label.pc

    # -- slots ----------------------------------------------------------------

    def _declare_local(self, name: str, ty: ast.Type) -> int:
        slot = len(self._params) + len(self._locals)
        self._locals.append(LocalVar(slot, name, ty))
        self._scopes[-1][name] = slot
        return slot

    def _lookup(self, name: str) -> int:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        raise CompileError("unresolved variable %r (typechecker bug?)" % name)

    # -- expressions -----------------------------------------------------------

    def _compile_expr(self, expr: ast.Expr) -> None:
        line = expr.span.start.line
        if isinstance(expr, ast.IntLit):
            self._emit(Instr(Opcode.PUSH, expr.value), line)
        elif isinstance(expr, ast.BoolLit):
            self._emit(Instr(Opcode.PUSH, 1 if expr.value else 0), line)
        elif isinstance(expr, ast.NullLit):
            self._emit(Instr(Opcode.PUSH_NULL), line)
        elif isinstance(expr, ast.StrLit):
            # String literals desugar to byte arrays; the constant is the
            # tuple of code points, materialized by the interpreter.
            self._emit(Instr(Opcode.PUSH, tuple(ord(c) for c in expr.value)), line)
        elif isinstance(expr, ast.Var):
            self._emit(Instr(Opcode.LOAD, self._lookup(expr.name)), line)
        elif isinstance(expr, ast.Index):
            self._compile_expr(expr.array)
            self._compile_expr(expr.index)
            self._emit(Instr(Opcode.ALOAD), line)
        elif isinstance(expr, ast.Len):
            self._compile_expr(expr.array)
            self._emit(Instr(Opcode.ARRAYLEN), line)
        elif isinstance(expr, ast.Unary):
            self._compile_expr(expr.operand)
            op = Opcode.NEG if expr.op is ast.UnOp.NEG else Opcode.NOT
            self._emit(Instr(op), line)
        elif isinstance(expr, ast.Binary):
            self._compile_binary(expr)
        elif isinstance(expr, ast.Call):
            self._compile_call(expr)
        elif isinstance(expr, ast.NewArray):
            self._compile_expr(expr.size)
            self._emit(Instr(Opcode.NEWARRAY, expr.elem.base), line)
        else:
            raise CompileError("unknown expression %r" % type(expr).__name__)

    def _compile_binary(self, expr: ast.Binary) -> None:
        line = expr.span.start.line
        if expr.op is ast.BinOp.AND:
            # a && b  =>  a ? b : false
            false_label, end = self._new_label(), self._new_label()
            self._compile_expr(expr.left)
            self._emit_jump(Opcode.IFZ, false_label, line)
            self._compile_expr(expr.right)
            self._emit_jump(Opcode.GOTO, end, line)
            self._bind(false_label)
            self._emit(Instr(Opcode.PUSH, 0), line)
            self._bind(end)
            return
        if expr.op is ast.BinOp.OR:
            true_label, end = self._new_label(), self._new_label()
            self._compile_expr(expr.left)
            self._emit_jump(Opcode.IFNZ, true_label, line)
            self._compile_expr(expr.right)
            self._emit_jump(Opcode.GOTO, end, line)
            self._bind(true_label)
            self._emit(Instr(Opcode.PUSH, 1), line)
            self._bind(end)
            return
        self._compile_expr(expr.left)
        self._compile_expr(expr.right)
        if expr.op in _ARITH_OPS:
            self._emit(Instr(_ARITH_OPS[expr.op]), line)
        elif expr.op in _CMP_OPS:
            self._emit(Instr(_CMP_OPS[expr.op]), line)
        else:
            raise CompileError("unknown binary operator %s" % expr.op)

    def _compile_call(self, expr: ast.Call) -> None:
        proc = self._program.proc(expr.callee)
        for arg in expr.args:
            self._compile_expr(arg)
        self._emit(
            Instr(
                Opcode.INVOKE,
                callee=expr.callee,
                argc=len(expr.args),
                has_result=proc.ret != ast.VOID,
            ),
            expr.span.start.line,
        )

    # -- statements -------------------------------------------------------------

    def _compile_block(self, block: ast.Block) -> None:
        self._scopes.append({})
        for stmt in block.stmts:
            self._compile_stmt(stmt)
        self._scopes.pop()

    def _compile_stmt(self, stmt: ast.Stmt) -> None:
        line = stmt.span.start.line
        if isinstance(stmt, ast.Block):
            self._compile_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                self._compile_expr(stmt.init)
            else:
                # Definite default value: 0 / false / null.
                if stmt.declared.is_array:
                    self._emit(Instr(Opcode.PUSH_NULL), line)
                else:
                    self._emit(Instr(Opcode.PUSH, 0), line)
            slot = self._declare_local(stmt.name, stmt.declared)
            self._emit(Instr(Opcode.STORE, slot), line)
        elif isinstance(stmt, ast.Assign):
            if isinstance(stmt.target, ast.Var):
                self._compile_expr(stmt.value)
                self._emit(Instr(Opcode.STORE, self._lookup(stmt.target.name)), line)
            else:
                assert isinstance(stmt.target, ast.Index)
                self._compile_expr(stmt.target.array)
                self._compile_expr(stmt.target.index)
                self._compile_expr(stmt.value)
                self._emit(Instr(Opcode.ASTORE), line)
        elif isinstance(stmt, ast.If):
            self._compile_if(stmt)
        elif isinstance(stmt, ast.While):
            self._compile_while(stmt)
        elif isinstance(stmt, ast.For):
            self._compile_for(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                self._emit(Instr(Opcode.RET), line)
            else:
                self._compile_expr(stmt.value)
                self._emit(Instr(Opcode.RETVAL), line)
        elif isinstance(stmt, ast.Break):
            if not self._loop_stack:
                raise CompileError("break outside loop (typechecker bug?)")
            self._emit_jump(Opcode.GOTO, self._loop_stack[-1][0], line)
        elif isinstance(stmt, ast.Continue):
            if not self._loop_stack:
                raise CompileError("continue outside loop (typechecker bug?)")
            self._emit_jump(Opcode.GOTO, self._loop_stack[-1][1], line)
        elif isinstance(stmt, ast.ExprStmt):
            self._compile_expr(stmt.expr)
            if stmt.expr.ty is not None and stmt.expr.ty != ast.VOID:
                self._emit(Instr(Opcode.POP), line)
        else:
            raise CompileError("unknown statement %r" % type(stmt).__name__)

    def _compile_if(self, stmt: ast.If) -> None:
        line = stmt.span.start.line
        else_label, end = self._new_label(), self._new_label()
        self._compile_expr(stmt.cond)
        self._emit_jump(Opcode.IFZ, else_label, line)
        self._compile_block(stmt.then)
        self._emit_jump(Opcode.GOTO, end, line)
        self._bind(else_label)
        if stmt.orelse is not None:
            self._compile_block(stmt.orelse)
        self._bind(end)

    def _compile_while(self, stmt: ast.While) -> None:
        line = stmt.span.start.line
        head, exit_label = self._new_label(), self._new_label()
        self._bind(head)
        self._compile_expr(stmt.cond)
        self._emit_jump(Opcode.IFZ, exit_label, line)
        self._loop_stack.append((exit_label, head))
        self._compile_block(stmt.body)
        self._loop_stack.pop()
        self._emit_jump(Opcode.GOTO, head, line)
        self._bind(exit_label)

    def _compile_for(self, stmt: ast.For) -> None:
        line = stmt.span.start.line
        self._scopes.append({})  # scope of the init declaration
        if stmt.init is not None:
            self._compile_stmt(stmt.init)
        head, update_label, exit_label = (
            self._new_label(),
            self._new_label(),
            self._new_label(),
        )
        self._bind(head)
        if stmt.cond is not None:
            self._compile_expr(stmt.cond)
            self._emit_jump(Opcode.IFZ, exit_label, line)
        self._loop_stack.append((exit_label, update_label))
        self._compile_block(stmt.body)
        self._loop_stack.pop()
        self._bind(update_label)
        if stmt.update is not None:
            self._compile_stmt(stmt.update)
        self._emit_jump(Opcode.GOTO, head, line)
        self._bind(exit_label)
        self._scopes.pop()

    # -- entry point -------------------------------------------------------------

    def compile(self) -> CodeObject:
        assert self._proc.body is not None
        self._compile_block(self._proc.body)
        # Pad with a final RET when execution could fall off the end
        # (void procedures) or when a label resolved past the last
        # instruction (e.g. the join label of an if whose arms both
        # return: the jump to it is dead but must stay a valid target).
        needs_pad = not self._instrs or not self._instrs[-1].is_terminator
        if not needs_pad:
            end = len(self._instrs)
            needs_pad = any(label.pc == end for label in self._labels)
        if needs_pad:
            # For non-void procedures this pc is unreachable (the
            # typechecker proved all paths return); RET keeps the stream
            # well-terminated either way.
            self._emit(Instr(Opcode.RET))
        self._resolve_labels()
        return CodeObject(
            name=self._proc.name,
            params=self._params,
            ret=self._proc.ret,
            instrs=self._instrs,
            locals=self._locals,
            source_lines=self._source_lines,
        )


def compile_program(program: ast.Program) -> Module:
    """Compile a type-checked program to a bytecode module."""
    module = Module()
    for proc in program.procs:
        if proc.is_extern:
            module.externs[proc.name] = proc
        else:
            module.codes[proc.name] = _ProcCompiler(proc, program).compile()
    return module
