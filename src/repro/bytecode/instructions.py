"""Stack-machine bytecode: the analogue of JVM bytecode in this pipeline.

Blazer consumes Java bytecode through WALA.  Our pipeline mirrors that
architecture: the language front-end compiles to this stack bytecode, the
lifter (:mod:`repro.ir.lift`) turns it into a register IR the analyses
consume, and the paper's machine model — *each bytecode instruction counts
as one time unit* — is interpreted against the lifted instruction stream.

The instruction set is deliberately JVM-flavoured:

========= =========================== =======================
opcode    operands                    stack effect
========= =========================== =======================
PUSH      int constant                ``.. -> .., c``
PUSH_NULL                             ``.. -> .., null``
LOAD      local slot                  ``.. -> .., v``
STORE     local slot                  ``.., v -> ..``
ALOAD                                 ``.., a, i -> .., a[i]``
ASTORE                                ``.., a, i, v -> ..``
NEWARRAY  element kind                ``.., n -> .., ref``
ARRAYLEN                              ``.., a -> .., len(a)``
ADD/SUB/MUL/DIV/MOD                   ``.., a, b -> .., a op b``
NEG/NOT                               ``.., a -> .., op a``
CMPLT/LE/GT/GE/EQ/NE                  ``.., a, b -> .., bool``
GOTO      target pc                   unchanged
IFNZ      target pc                   ``.., v -> ..`` (jump if v != 0)
IFZ       target pc                   ``.., v -> ..`` (jump if v == 0)
INVOKE    proc name, argc, has_result pops argc, pushes result?
RET                                   return void
RETVAL                                ``.., v -> `` return v
POP                                   ``.., v -> ..``
DUP                                   ``.., v -> .., v, v``
NOP                                   unchanged
========= =========================== =======================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lang import ast


class Opcode(enum.Enum):
    PUSH = "push"
    PUSH_NULL = "push_null"
    LOAD = "load"
    STORE = "store"
    ALOAD = "aload"
    ASTORE = "astore"
    NEWARRAY = "newarray"
    ARRAYLEN = "arraylen"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    NEG = "neg"
    NOT = "not"
    CMPLT = "cmplt"
    CMPLE = "cmple"
    CMPGT = "cmpgt"
    CMPGE = "cmpge"
    CMPEQ = "cmpeq"
    CMPNE = "cmpne"
    GOTO = "goto"
    IFNZ = "ifnz"
    IFZ = "ifz"
    INVOKE = "invoke"
    RET = "ret"
    RETVAL = "retval"
    POP = "pop"
    DUP = "dup"
    NOP = "nop"


# Net change in stack height, for opcodes where it is fixed.
_STACK_DELTA: Dict[Opcode, int] = {
    Opcode.PUSH: 1,
    Opcode.PUSH_NULL: 1,
    Opcode.LOAD: 1,
    Opcode.STORE: -1,
    Opcode.ALOAD: -1,
    Opcode.ASTORE: -3,
    Opcode.NEWARRAY: 0,
    Opcode.ARRAYLEN: 0,
    Opcode.ADD: -1,
    Opcode.SUB: -1,
    Opcode.MUL: -1,
    Opcode.DIV: -1,
    Opcode.MOD: -1,
    Opcode.NEG: 0,
    Opcode.NOT: 0,
    Opcode.CMPLT: -1,
    Opcode.CMPLE: -1,
    Opcode.CMPGT: -1,
    Opcode.CMPGE: -1,
    Opcode.CMPEQ: -1,
    Opcode.CMPNE: -1,
    Opcode.GOTO: 0,
    Opcode.IFNZ: -1,
    Opcode.IFZ: -1,
    Opcode.RET: 0,
    Opcode.RETVAL: -1,
    Opcode.POP: -1,
    Opcode.DUP: 1,
    Opcode.NOP: 0,
}

BRANCH_OPS = frozenset({Opcode.IFNZ, Opcode.IFZ})
TERMINATOR_OPS = frozenset({Opcode.GOTO, Opcode.RET, Opcode.RETVAL}) | BRANCH_OPS
BINARY_ARITH_OPS = frozenset(
    {Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.MOD}
)
COMPARE_OPS = frozenset(
    {Opcode.CMPLT, Opcode.CMPLE, Opcode.CMPGT, Opcode.CMPGE, Opcode.CMPEQ, Opcode.CMPNE}
)


@dataclass
class Instr:
    """One bytecode instruction.

    ``arg`` holds the constant for PUSH, slot index for LOAD/STORE, target
    pc for jumps, and the element base type for NEWARRAY.  ``callee`` /
    ``argc`` / ``has_result`` are used only by INVOKE.
    """

    op: Opcode
    arg: object = None
    callee: str = ""
    argc: int = 0
    has_result: bool = False

    def stack_delta(self) -> int:
        if self.op is Opcode.INVOKE:
            return (1 if self.has_result else 0) - self.argc
        return _STACK_DELTA[self.op]

    @property
    def is_branch(self) -> bool:
        return self.op in BRANCH_OPS

    @property
    def is_terminator(self) -> bool:
        return self.op in TERMINATOR_OPS

    def __str__(self) -> str:
        if self.op is Opcode.INVOKE:
            return "invoke %s/%d%s" % (
                self.callee,
                self.argc,
                "" if self.has_result else " (void)",
            )
        if self.arg is None:
            return self.op.value
        return "%s %s" % (self.op.value, self.arg)


@dataclass
class LocalVar:
    """Debug/lift metadata for one local slot."""

    slot: int
    name: str
    declared: ast.Type
    is_param: bool = False
    level: Optional[ast.SecLevel] = None


@dataclass
class CodeObject:
    """A compiled procedure: metadata plus a flat instruction list.

    Jump targets are absolute instruction indices (pcs).  Slot 0..n-1 are
    the parameters in order; further slots are locals and compiler temps.
    """

    name: str
    params: List[LocalVar]
    ret: ast.Type
    instrs: List[Instr] = field(default_factory=list)
    locals: List[LocalVar] = field(default_factory=list)
    source_lines: Dict[int, int] = field(default_factory=dict)

    @property
    def num_slots(self) -> int:
        return len(self.params) + len(self.locals)

    def all_locals(self) -> List[LocalVar]:
        return list(self.params) + list(self.locals)

    def slot_name(self, slot: int) -> str:
        for var in self.all_locals():
            if var.slot == slot:
                return var.name
        return "slot%d" % slot

    def jump_targets(self) -> List[Tuple[int, int]]:
        """All (pc, target) pairs of branch/goto instructions."""
        out = []
        for pc, instr in enumerate(self.instrs):
            if instr.op in (Opcode.GOTO, Opcode.IFNZ, Opcode.IFZ):
                out.append((pc, int(instr.arg)))  # type: ignore[arg-type]
        return out

    def __str__(self) -> str:
        from repro.bytecode.disasm import disassemble

        return disassemble(self)


@dataclass
class Module:
    """A compiled program: code objects plus extern signatures."""

    codes: Dict[str, CodeObject] = field(default_factory=dict)
    externs: Dict[str, ast.ProcDecl] = field(default_factory=dict)

    def code(self, name: str) -> CodeObject:
        return self.codes[name]
