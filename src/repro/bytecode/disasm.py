"""Bytecode disassembler: a readable listing of a code object."""

from __future__ import annotations

from typing import List, Set

from repro.bytecode.instructions import CodeObject, Opcode


def disassemble(code: CodeObject) -> str:
    """Render ``code`` as a text listing with jump-target markers."""
    targets: Set[int] = {t for _, t in code.jump_targets()}
    lines: List[str] = []
    params = ", ".join(
        "%s %s: %s" % (p.level.value if p.level else "public", p.name, p.declared)
        for p in code.params
    )
    lines.append("code %s(%s): %s  [%d slots]" % (code.name, params, code.ret, code.num_slots))
    for pc, instr in enumerate(code.instrs):
        marker = "L%d:" % pc if pc in targets else ""
        text = str(instr)
        if instr.op in (Opcode.LOAD, Opcode.STORE):
            text += "    ; %s" % code.slot_name(int(instr.arg))  # type: ignore[arg-type]
        elif instr.op in (Opcode.GOTO, Opcode.IFNZ, Opcode.IFZ):
            text = "%s L%s" % (instr.op.value, instr.arg)
        lines.append("%6s %4d  %s" % (marker, pc, text))
    return "\n".join(lines)
