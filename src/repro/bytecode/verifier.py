"""Bytecode verifier.

Performs the classic abstract-stack verification pass the JVM performs on
class loading, adapted to our instruction set:

* every jump target is a valid pc;
* local slot indices are within ``num_slots``;
* the operand stack never underflows;
* the stack height (and abstract value kinds: INT vs REF) at each pc is
  consistent along every control-flow path reaching it;
* execution cannot fall off the end of the instruction stream;
* RET/RETVAL match the declared return type and leave a clean stack.

The verifier doubles as a safety net for the compiler (its tests feed it
both compiler output and hand-corrupted code objects) and as a guarantee
for the lifter, which relies on consistent stack heights at merge points.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple

from repro.bytecode.instructions import (
    BINARY_ARITH_OPS,
    COMPARE_OPS,
    CodeObject,
    Instr,
    Module,
    Opcode,
)
from repro.lang import ast
from repro.util.errors import VerifyError


class Kind(enum.Enum):
    """Abstract kind of a stack cell."""

    INT = "int"
    REF = "ref"
    NULL = "null"  # push_null: joins with REF


def _join_kind(a: Kind, b: Kind, pc: int) -> Kind:
    if a == b:
        return a
    if {a, b} == {Kind.REF, Kind.NULL}:
        return Kind.REF
    raise VerifyError("pc %d: inconsistent stack kinds %s vs %s" % (pc, a.value, b.value))


def _kind_of_type(ty: ast.Type) -> Kind:
    return Kind.REF if ty.is_array else Kind.INT


class Verifier:
    def __init__(self, code: CodeObject, module: Optional[Module] = None):
        self._code = code
        self._module = module

    def verify(self) -> None:
        code = self._code
        n = len(code.instrs)
        if n == 0:
            raise VerifyError("%s: empty instruction stream" % code.name)
        for pc, target in code.jump_targets():
            if not 0 <= target < n:
                raise VerifyError(
                    "%s: pc %d jumps to invalid target %d" % (code.name, pc, target)
                )
        last = code.instrs[-1]
        if not last.is_terminator:
            raise VerifyError(
                "%s: execution can fall off the end (last op %s)"
                % (code.name, last.op.value)
            )
        self._check_stack_discipline()

    # -- dataflow over abstract stacks ---------------------------------------

    def _check_stack_discipline(self) -> None:
        code = self._code
        n = len(code.instrs)
        states: Dict[int, Tuple[Kind, ...]] = {0: ()}
        worklist: List[int] = [0]
        while worklist:
            pc = worklist.pop()
            stack = states[pc]
            instr = code.instrs[pc]
            out_stack = self._transfer(pc, instr, stack)
            for succ in self._successors(pc, instr, n):
                if succ not in states:
                    states[succ] = out_stack
                    worklist.append(succ)
                else:
                    merged = self._merge(states[succ], out_stack, succ)
                    if merged != states[succ]:
                        states[succ] = merged
                        worklist.append(succ)

    def _merge(
        self, a: Tuple[Kind, ...], b: Tuple[Kind, ...], pc: int
    ) -> Tuple[Kind, ...]:
        if len(a) != len(b):
            raise VerifyError(
                "%s: pc %d reachable with stack heights %d and %d"
                % (self._code.name, pc, len(a), len(b))
            )
        return tuple(_join_kind(x, y, pc) for x, y in zip(a, b))

    def _successors(self, pc: int, instr: Instr, n: int) -> List[int]:
        if instr.op is Opcode.GOTO:
            return [int(instr.arg)]  # type: ignore[arg-type]
        if instr.op in (Opcode.IFNZ, Opcode.IFZ):
            return [pc + 1, int(instr.arg)]  # type: ignore[arg-type]
        if instr.op in (Opcode.RET, Opcode.RETVAL):
            return []
        if pc + 1 >= n:
            raise VerifyError("%s: pc %d falls off the end" % (self._code.name, pc))
        return [pc + 1]

    def _pop(self, stack: List[Kind], pc: int, expect: Optional[Kind] = None) -> Kind:
        if not stack:
            raise VerifyError("%s: pc %d: stack underflow" % (self._code.name, pc))
        kind = stack.pop()
        if expect is Kind.INT and kind is not Kind.INT:
            raise VerifyError(
                "%s: pc %d: expected int on stack, found %s"
                % (self._code.name, pc, kind.value)
            )
        if expect is Kind.REF and kind is Kind.INT:
            raise VerifyError(
                "%s: pc %d: expected array ref on stack, found int"
                % (self._code.name, pc)
            )
        return kind

    def _transfer(
        self, pc: int, instr: Instr, in_stack: Tuple[Kind, ...]
    ) -> Tuple[Kind, ...]:
        code = self._code
        stack = list(in_stack)
        op = instr.op
        if op is Opcode.PUSH:
            stack.append(Kind.REF if isinstance(instr.arg, tuple) else Kind.INT)
        elif op is Opcode.PUSH_NULL:
            stack.append(Kind.NULL)
        elif op is Opcode.LOAD:
            slot = int(instr.arg)  # type: ignore[arg-type]
            if not 0 <= slot < code.num_slots:
                raise VerifyError("%s: pc %d: load of bad slot %d" % (code.name, pc, slot))
            stack.append(self._slot_kind(slot))
        elif op is Opcode.STORE:
            slot = int(instr.arg)  # type: ignore[arg-type]
            if not 0 <= slot < code.num_slots:
                raise VerifyError("%s: pc %d: store to bad slot %d" % (code.name, pc, slot))
            self._pop(stack, pc, self._slot_kind(slot))
        elif op is Opcode.ALOAD:
            self._pop(stack, pc, Kind.INT)
            self._pop(stack, pc, Kind.REF)
            stack.append(Kind.INT)
        elif op is Opcode.ASTORE:
            self._pop(stack, pc, Kind.INT)
            self._pop(stack, pc, Kind.INT)
            self._pop(stack, pc, Kind.REF)
        elif op is Opcode.NEWARRAY:
            self._pop(stack, pc, Kind.INT)
            stack.append(Kind.REF)
        elif op is Opcode.ARRAYLEN:
            self._pop(stack, pc, Kind.REF)
            stack.append(Kind.INT)
        elif op in BINARY_ARITH_OPS:
            self._pop(stack, pc, Kind.INT)
            self._pop(stack, pc, Kind.INT)
            stack.append(Kind.INT)
        elif op in COMPARE_OPS:
            b = self._pop(stack, pc)
            a = self._pop(stack, pc)
            if op in (Opcode.CMPEQ, Opcode.CMPNE):
                ints = {Kind.INT}
                if (a in ints) != (b in ints):
                    raise VerifyError(
                        "%s: pc %d: equality between int and ref" % (code.name, pc)
                    )
            else:
                if a is not Kind.INT or b is not Kind.INT:
                    raise VerifyError(
                        "%s: pc %d: ordered comparison on refs" % (code.name, pc)
                    )
            stack.append(Kind.INT)
        elif op in (Opcode.NEG, Opcode.NOT):
            self._pop(stack, pc, Kind.INT)
            stack.append(Kind.INT)
        elif op in (Opcode.GOTO, Opcode.NOP):
            pass
        elif op in (Opcode.IFNZ, Opcode.IFZ):
            self._pop(stack, pc, Kind.INT)
        elif op is Opcode.INVOKE:
            sig = self._invoke_signature(instr)
            for expected in reversed(sig[0]):
                self._pop(stack, pc, expected and _kind_of_type(expected))
            if instr.has_result:
                ret = sig[1]
                stack.append(_kind_of_type(ret) if ret is not None else Kind.INT)
        elif op is Opcode.RET:
            if self._code.ret != ast.VOID:
                raise VerifyError(
                    "%s: pc %d: void return from non-void procedure" % (code.name, pc)
                )
            if stack:
                raise VerifyError(
                    "%s: pc %d: return with %d values on stack"
                    % (code.name, pc, len(stack))
                )
        elif op is Opcode.RETVAL:
            if self._code.ret == ast.VOID:
                raise VerifyError(
                    "%s: pc %d: value return from void procedure" % (code.name, pc)
                )
            self._pop(stack, pc, _kind_of_type(self._code.ret))
            if stack:
                raise VerifyError(
                    "%s: pc %d: return with %d extra values on stack"
                    % (code.name, pc, len(stack))
                )
        elif op is Opcode.POP:
            self._pop(stack, pc)
        elif op is Opcode.DUP:
            top = self._pop(stack, pc)
            stack.append(top)
            stack.append(top)
        else:  # pragma: no cover
            raise VerifyError("%s: pc %d: unknown opcode %s" % (code.name, pc, op))
        return tuple(stack)

    def _slot_kind(self, slot: int) -> Kind:
        for var in self._code.all_locals():
            if var.slot == slot:
                return _kind_of_type(var.declared)
        raise VerifyError("%s: unknown slot %d" % (self._code.name, slot))

    def _invoke_signature(self, instr: Instr):
        """Return ([param types...], ret type) or permissive placeholders."""
        if self._module is not None:
            decl = self._module.externs.get(instr.callee)
            if decl is None and instr.callee in self._module.codes:
                callee = self._module.codes[instr.callee]
                return [p.declared for p in callee.params], callee.ret
            if decl is not None:
                return [p.declared for p in decl.params], decl.ret
        # Without module context, only the arity is checked.
        return [None] * instr.argc, None


def verify_code(code: CodeObject, module: Optional[Module] = None) -> None:
    """Verify one code object; raises :class:`VerifyError` on violation."""
    Verifier(code, module).verify()


def verify_module(module: Module) -> None:
    """Verify every code object in ``module``."""
    for code in module.codes.values():
        verify_code(code, module)
