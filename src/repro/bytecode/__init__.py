"""Stack bytecode: instruction set, compiler, verifier, disassembler."""

from repro.bytecode.compile import compile_program
from repro.bytecode.disasm import disassemble
from repro.bytecode.instructions import CodeObject, Instr, LocalVar, Module, Opcode
from repro.bytecode.verifier import verify_code, verify_module

__all__ = [
    "compile_program",
    "disassemble",
    "CodeObject",
    "Instr",
    "LocalVar",
    "Module",
    "Opcode",
    "verify_code",
    "verify_module",
]
