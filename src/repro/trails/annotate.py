"""ANNOTATETRAIL: marking trail constructors as low/high-dependent.

Section 4.2 of the paper: a union constructor of a trail is
*low-dependent with respect to a tainted branch block b* if it is the
outermost union such that one operand's language mentions one of b's
branch edges while the other does not; similarly for Kleene stars (one
of b's edges inside the starred body, the other not).

The annotated regex drives the presentation (``|l``, ``*l``, ``|h``
annotations exactly as in the paper's examples); the *refinement* itself
works on the DFA form, using the taint classification directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.automata import regex as rx
from repro.cfg.graph import ControlFlowGraph, Edge
from repro.taint.analysis import Taint, TaintResult


@dataclass
class Annotation:
    """The α ∈ {l, h, l·h} mark on one constructor."""

    taints: Set[Taint] = field(default_factory=set)
    blocks: Set[int] = field(default_factory=set)

    @property
    def label(self) -> str:
        parts = []
        if Taint.LOW in self.taints:
            parts.append("l")
        if Taint.HIGH in self.taints:
            parts.append("h")
        return ",".join(parts)


class AnnotatedRegex:
    """A regex tree with per-constructor annotations (by node identity)."""

    def __init__(self, regex: rx.Regex, annotations: Dict[int, Annotation]):
        self.regex = regex
        self._annotations = annotations

    def annotation(self, node: rx.Regex) -> Optional[Annotation]:
        return self._annotations.get(id(node))

    def annotated_nodes(self) -> List[Tuple[rx.Regex, Annotation]]:
        out = []
        for node in rx.iter_subexprs(self.regex):
            ann = self._annotations.get(id(node))
            if ann is not None and ann.taints:
                out.append((node, ann))
        return out

    # -- rendering -------------------------------------------------------------

    def render(self) -> str:
        return self._render(self.regex)

    def _suffix(self, node: rx.Regex) -> str:
        ann = self._annotations.get(id(node))
        if ann is None or not ann.taints:
            return ""
        return "_" + ann.label

    def _render(self, node: rx.Regex) -> str:
        if isinstance(node, (rx.Empty, rx.Eps, rx.Sym)):
            return str(node)
        if isinstance(node, rx.Concat):
            left = self._render(node.left)
            right = self._render(node.right)
            if isinstance(node.left, rx.Union):
                left = "(%s)" % left
            if isinstance(node.right, rx.Union):
                right = "(%s)" % right
            return "%s.%s" % (left, right)
        if isinstance(node, rx.Union):
            return "%s |%s %s" % (
                self._render(node.left),
                self._suffix(node),
                self._render(node.right),
            )
        if isinstance(node, rx.Star):
            inner = self._render(node.inner)
            if not isinstance(node.inner, (rx.Sym, rx.Eps, rx.Empty)):
                inner = "(%s)" % inner
            return "%s*%s" % (inner, self._suffix(node))
        raise TypeError(type(node).__name__)


def _branch_edge_sets(
    cfg: ControlFlowGraph, taint: TaintResult
) -> List[Tuple[int, Edge, Edge, Set[Taint]]]:
    out = []
    for block in cfg.branch_blocks():
        taints = set(taint.taint_of_branch(block))
        if not taints:
            continue
        taken, not_taken = cfg.branch_edges(block)
        out.append((block, taken, not_taken, taints))
    return out


def annotate_trail(
    regex: rx.Regex, cfg: ControlFlowGraph, taint: TaintResult
) -> AnnotatedRegex:
    """Annotate each union/star constructor per Section 4.2."""
    annotations: Dict[int, Annotation] = {}
    branches = _branch_edge_sets(cfg, taint)

    def mark(node: rx.Regex, taints: Set[Taint], block: int) -> None:
        ann = annotations.setdefault(id(node), Annotation())
        ann.taints |= taints
        ann.blocks.add(block)

    def visit(node: rx.Regex, pending: FrozenSet[int]) -> None:
        """``pending``: branch blocks still awaiting their outermost mark."""
        if isinstance(node, rx.Union):
            left_syms = node.left.symbols()
            right_syms = node.right.symbols()
            next_pending = set(pending)
            for block, e_t, e_f, taints in branches:
                if block not in pending:
                    continue
                # §4.2: marked iff at least one operand contains exactly
                # one of b's two branch edges.
                split_left = (e_t in left_syms) != (e_f in left_syms)
                split_right = (e_t in right_syms) != (e_f in right_syms)
                if split_left or split_right:
                    mark(node, taints, block)
                    next_pending.discard(block)
            visit(node.left, frozenset(next_pending))
            visit(node.right, frozenset(next_pending))
        elif isinstance(node, rx.Star):
            inner_syms = node.inner.symbols()
            next_pending = set(pending)
            for block, e_t, e_f, taints in branches:
                if block not in pending:
                    continue
                if (e_t in inner_syms) != (e_f in inner_syms):
                    mark(node, taints, block)
                    next_pending.discard(block)
            visit(node.inner, frozenset(next_pending))
        elif isinstance(node, rx.Concat):
            visit(node.left, pending)
            visit(node.right, pending)

    visit(regex, frozenset(b for b, _, _, _ in branches))
    return AnnotatedRegex(regex, annotations)
