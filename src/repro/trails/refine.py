"""REFINEPARTITION: the pluggable trail-splitting strategies.

Section 4.3: splitting a trail at a branch block whose decision depends
only on low data yields a ψ_SC-quotient partition — two executions that
agree on the low inputs make identical decision sequences at such a
block (the taint analysis guarantees the decision is a function of
low-derived state, which evolves identically), so they fall into the
same component.  Splitting at high-dependent branches is used in the
attack-synthesis phase instead.

Strategies (the paper: "a collection of pluggable strategies"):

``OccurrenceSplit``
    ``tr ∩ (Σ* e Σ*)`` vs ``tr ∩ complement(Σ* e Σ*)`` for a branch edge
    ``e`` — "may exit on line 5" / "must enter the for loop" in Fig. 1.
    Always covers L(tr).

``StarUnrollSplit``
    Zero-vs-more iterations of a loop guarded by the branch: the trail
    that *never* takes the loop-entry edge vs the one that takes it at
    least once, then additionally unrolls the first iteration from the
    header (language-preserving refinement of the second component).

Every strategy returns components whose union covers the parent (checked
cheaply by the caller via automata inclusion when validating).
"""

from __future__ import annotations

import abc
from typing import List, Optional, Tuple

from repro.automata.dfa import DFA, containing_symbol
from repro.cfg.graph import ControlFlowGraph, Edge
from repro.trails.trail import SplitInfo, Trail
from repro.util.errors import TrailError


class SplitStrategy(abc.ABC):
    """One way of refining a trail at a branch block."""

    name: str = "abstract"

    @abc.abstractmethod
    def split(self, trail: Trail, block: int, kind: str) -> List[Trail]:
        """Split ``trail`` at branch ``block``; ``kind`` is "taint"/"sec".

        Returns [] when the split makes no progress (e.g. one side is
        empty or equals the parent).
        """


def _describe_edge(cfg: ControlFlowGraph, edge: Edge, polarity: bool) -> str:
    verb = "takes" if polarity else "never takes"
    return "%s edge b%d->b%d" % (verb, edge[0], edge[1])


def _derive_split_dfas(trail: Trail, edge: Edge) -> Tuple[DFA, DFA]:
    """The two occurrence-split child DFAs ``(with_edge, without_edge)``.

    Under the incremental plane the pair is interned process-wide, keyed
    by the parent DFA's *exact* state structure plus the alphabet and
    edge — the same strictness as the ``trail.regex`` intern: product
    construction and minimization output depend on concrete state
    numbering, so an isomorphism-class key would not preserve the seed's
    byte-identical child DFAs.  DFAs are immutable, so re-splitting the
    same parent across refinement rounds (diffcheck sweeps re-derive
    sibling trails constantly) shares one intersect+minimize run.
    """
    from repro.perf import runtime

    alphabet = trail.alphabet
    key = None
    if runtime.incremental_enabled():
        from repro.perf.fingerprint import dfa_structure_key

        key = (dfa_structure_key(trail.dfa), frozenset(alphabet), edge)
        pair = runtime.memo_table("refine.split").get(key)
        if pair is not None:
            runtime.STATS.hit("refine.split")
            return pair
        runtime.STATS.miss("refine.split")
    occurs = containing_symbol(alphabet, edge)
    pair = (
        trail.dfa.intersect(occurs).minimized(),
        trail.dfa.intersect(occurs.complement(alphabet)).minimized(),
    )
    if key is not None:
        runtime.memo_table("refine.split")[key] = pair
    return pair


class OccurrenceSplit(SplitStrategy):
    """Split on whether a chosen branch edge occurs in the trace."""

    name = "occurrence"

    def split(self, trail: Trail, block: int, kind: str) -> List[Trail]:
        cfg = trail.cfg
        taken, not_taken = cfg.branch_edges(block)
        # Prefer splitting on the edge that distinguishes more sharply:
        # try the taken edge first, fall back to the not-taken edge.
        for edge in (taken, not_taken):
            components = self.split_on_edge(trail, block, edge, kind)
            if components:
                return components
        return []

    def split_on_edge(
        self, trail: Trail, block: int, edge: Edge, kind: str
    ) -> List[Trail]:
        """The occurrence split for one specific branch edge."""
        if edge not in trail.alphabet:
            return []
        with_edge, without_edge = _derive_split_dfas(trail, edge)
        if with_edge.is_empty() or without_edge.is_empty():
            return []  # no progress: one side is the whole parent
        cfg = trail.cfg
        return [
            trail.derived(
                with_edge,
                _describe_edge(cfg, edge, True),
                SplitInfo(kind, block, edge, True),
            ),
            trail.derived(
                without_edge,
                _describe_edge(cfg, edge, False),
                SplitInfo(kind, block, edge, False),
            ),
        ]


class RegexNodeSplit(SplitStrategy):
    """Split at an annotated regex constructor (the paper's §4.3 letter).

    For a union ``tr1 |α tr2`` annotated with respect to the branch, the
    components replace the node by its operands: ``context[tr1]`` and
    ``context[tr2]``.  For a star ``tr*α`` the components are the
    zero-iteration replacement ``context[ε]`` and the at-least-once
    unrolling ``context[tr·tr*]``.  The languages are compiled back to
    DFAs, so components mix freely with occurrence splits.

    State elimination does not always surface a given branch as a single
    constructor (edges can be duplicated across operands), in which case
    the strategy finds no annotated node and returns [] — the driver then
    falls back to :class:`OccurrenceSplit`, matching the paper's
    "collection of pluggable strategies".
    """

    name = "regex-node"

    def split(self, trail: Trail, block: int, kind: str) -> List[Trail]:
        from repro.automata import regex as rx
        from repro.automata.elim import regex_to_dfa
        from repro.taint import analyze_taint
        from repro.trails.annotate import annotate_trail

        cfg = trail.cfg
        taint = analyze_taint(cfg)
        regex = trail.regex()
        annotated = annotate_trail(regex, cfg, taint)
        target: Optional[rx.Regex] = None
        for node, ann in annotated.annotated_nodes():
            if block in ann.blocks:
                target = node
                break
        if target is None:
            return []

        def rebuild(node: rx.Regex, replacement: rx.Regex) -> rx.Regex:
            if node is target:
                return replacement
            if isinstance(node, rx.Concat):
                return rx.concat(
                    rebuild(node.left, replacement), rebuild(node.right, replacement)
                )
            if isinstance(node, rx.Union):
                return rx.union(
                    rebuild(node.left, replacement), rebuild(node.right, replacement)
                )
            if isinstance(node, rx.Star):
                inner = rebuild(node.inner, replacement)
                return rx.star(inner) if inner is not node.inner else node
            return node

        if isinstance(target, rx.Union):
            replacements = [
                (target.left, "left alternative at b%d" % block),
                (target.right, "right alternative at b%d" % block),
            ]
        elif isinstance(target, rx.Star):
            replacements = [
                (rx.EPSILON, "skips the loop at b%d" % block),
                (
                    rx.concat(target.inner, target),
                    "iterates the loop at b%d" % block,
                ),
            ]
        else:
            return []

        taken, _ = cfg.branch_edges(block)
        components: List[Trail] = []
        for replacement, description in replacements:
            new_regex = rebuild(regex, replacement)
            dfa = regex_to_dfa(new_regex, trail.alphabet)
            # Stay within the parent (rebuilding can only shrink, but the
            # intersection guards against constructor sharing).
            dfa = dfa.intersect(trail.dfa).minimized()
            if dfa.is_empty():
                return []
            components.append(
                trail.derived(
                    dfa,
                    description,
                    SplitInfo(kind, block, taken, True),
                )
            )
        # Drop the split if it made no progress (a component equals the
        # parent's language).
        for component in components:
            if component.dfa.includes(trail.dfa):
                return []
        return components


class StarUnrollSplit(SplitStrategy):
    """Split a loop guard: never enters the loop vs enters at least once."""

    name = "star-unroll"

    def __init__(self, loop_entry_edge_of=None):
        # Optional hook mapping (cfg, block) -> the loop-entry edge;
        # defaults to the branch's taken edge.
        self._entry_edge_of = loop_entry_edge_of

    def split(self, trail: Trail, block: int, kind: str) -> List[Trail]:
        cfg = trail.cfg
        taken, not_taken = cfg.branch_edges(block)
        entry_edge = taken
        if self._entry_edge_of is not None:
            override = self._entry_edge_of(cfg, block)
            if override is not None:
                entry_edge = override
        return OccurrenceSplit().split_on_edge(trail, block, entry_edge, kind)


DEFAULT_STRATEGIES: Tuple[SplitStrategy, ...] = (OccurrenceSplit(),)


def verify_cover(parent: Trail, components: List[Trail]) -> bool:
    """Check ⋃ L(component_i) ⊇ L(parent) (used in tests and debugging)."""
    if not components:
        return False
    union: Optional[DFA] = None
    for comp in components:
        union = comp.dfa if union is None else union.union(comp.dfa)
    assert union is not None
    return union.includes(parent.dfa)


def split_trail(
    trail: Trail,
    block: int,
    kind: str,
    strategies: Tuple[SplitStrategy, ...] = DEFAULT_STRATEGIES,
) -> List[Trail]:
    """Try each strategy in order; return the first productive split."""
    if block not in trail.cfg.branch_blocks():
        raise TrailError("b%d is not a branch block" % block)
    for strategy in strategies:
        components = strategy.split(trail, block, kind)
        if components:
            return components
    return []
