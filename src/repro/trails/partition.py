"""Trees of trails: the partitions the driver refines.

The paper represents a partition "as a tree of trails tr1..trn such that
tri is a child of trj only if L(tri) ⊆ L(trj)"; the *current partition*
is the set of active leaves.  Components need not be disjoint; the
invariant maintained (and checked by :func:`PartitionTree.covers_root`)
is that the leaves jointly cover the most general trail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.bounds.analysis import BoundResult
from repro.trails.trail import Trail
from repro.util.table import render_tree


@dataclass
class TrailNode:
    """A node of the trail tree: a trail plus its analysis results."""

    trail: Trail
    children: List["TrailNode"] = field(default_factory=list)
    parent: Optional["TrailNode"] = None
    bound: Optional[BoundResult] = None
    # "unknown" | "safe" | "infeasible" | "wide" (bound not narrow) |
    # "attack" (part of an attack specification)
    status: str = "unknown"
    note: str = ""

    @property
    def split_kind(self) -> str:
        """The kind of split that created this node ('' for the root)."""
        return self.trail.splits[-1].kind if self.trail.splits else ""

    @property
    def delta(self):
        """The :class:`~repro.trails.trail.RefinementDelta` of the split
        that created this node (None for the root).  This is what the
        driver hands to :class:`~repro.bounds.analysis.BoundAnalysis` so
        the incremental plane knows which constructor the round
        perturbed and which parent computation to derive from."""
        return self.trail.delta

    def fingerprint(self) -> str:
        """The node's content fingerprint: its trail's (the analysis
        results hanging off the node are *derived from* the trail, so the
        trail is the identity)."""
        return self.trail.fingerprint()

    def __hash__(self) -> int:
        # Deterministic and consistent with the dataclass __eq__ (equal
        # nodes carry equal trails).  Without this, @dataclass(eq=True)
        # would make TrailNode unhashable.
        return hash(self.trail.fingerprint())

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def add_child(self, trail: Trail) -> "TrailNode":
        child = TrailNode(trail=trail, parent=self)
        self.children.append(child)
        return child

    def ancestors(self) -> Iterator["TrailNode"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def render(self) -> str:
        bound = "" if self.bound is None else "  %s" % self.bound
        status = " [%s]" % self.status if self.status != "unknown" else ""
        arrow = "" if not self.split_kind else "(%s) " % self.split_kind
        label = "%s%s%s%s" % (arrow, self.trail.description, bound, status)
        return render_tree(label, [c.render() for c in self.children])


class PartitionTree:
    """The evolving partition: a tree rooted at the most general trail."""

    def __init__(self, root_trail: Trail):
        self.root = TrailNode(trail=root_trail)

    def leaves(self) -> List[TrailNode]:
        out: List[TrailNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                out.append(node)
            else:
                stack.extend(reversed(node.children))
        return list(reversed(out))

    def active_partition(self) -> List[Trail]:
        """The current partition components (leaf trails)."""
        return [leaf.trail for leaf in self.leaves()]

    def covers_root(self) -> bool:
        """⋃ L(leaf) ⊇ L(root) — the partition-coverage invariant."""
        union = None
        for leaf in self.leaves():
            union = leaf.trail.dfa if union is None else union.union(leaf.trail.dfa)
        if union is None:
            return False
        return union.includes(self.root.trail.dfa)

    def all_nodes(self) -> List[TrailNode]:
        out: List[TrailNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(reversed(node.children))
        return out

    def render(self) -> str:
        return self.root.render()
