"""Trails: annotated-regex partition components and their refinement."""

from repro.trails.annotate import AnnotatedRegex, Annotation, annotate_trail
from repro.trails.partition import PartitionTree, TrailNode
from repro.trails.refine import (
    DEFAULT_STRATEGIES,
    OccurrenceSplit,
    RegexNodeSplit,
    SplitStrategy,
    StarUnrollSplit,
    split_trail,
    verify_cover,
)
from repro.trails.trail import SplitInfo, Trail

__all__ = [
    "Trail",
    "SplitInfo",
    "annotate_trail",
    "AnnotatedRegex",
    "Annotation",
    "PartitionTree",
    "TrailNode",
    "SplitStrategy",
    "OccurrenceSplit",
    "RegexNodeSplit",
    "StarUnrollSplit",
    "split_trail",
    "verify_cover",
    "DEFAULT_STRATEGIES",
]
