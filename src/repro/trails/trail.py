"""Trails: symbolic representations of trace-partition components.

A trail (Section 4.1) is a regular language over the CFG-edge alphabet.
The canonical internal form is a DFA (refinement needs boolean language
algebra); the regex form — the presentation used throughout the paper —
is derived on demand by state elimination.

``Trail`` also records *provenance*: the chain of splits that produced
it from the most general trail, which is what the Fig.-1-style trees
display (``taint`` vs ``sec`` arrows) and what the driver consults to
avoid splitting on the same branch twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.automata import regex as rx
from repro.automata.dfa import DFA
from repro.automata.elim import dfa_to_regex
from repro.cfg.automaton import cfg_automaton, edge_alphabet
from repro.cfg.graph import ControlFlowGraph, Edge


@dataclass(frozen=True)
class SplitInfo:
    """One refinement step in a trail's provenance."""

    kind: str  # "taint" (low split) or "sec" (high split)
    block: int  # the branch block split on
    edge: Edge  # the branch edge whose occurrence was decided
    polarity: bool  # True: the edge must occur; False: it never occurs

    def __str__(self) -> str:
        verb = "takes" if self.polarity else "avoids"
        return "%s:%s %s->%s" % (self.kind, verb, self.edge[0], self.edge[1])


@dataclass(frozen=True)
class RefinementDelta:
    """The one-constructor perturbation a split applied to its parent.

    Where :class:`SplitInfo` is human-facing provenance, the delta is
    the *machine-facing* contract the incremental re-analysis plane
    (docs/PERFORMANCE.md) consumes: which branch block was perturbed
    (everything structurally disjoint from it is a reuse candidate),
    and which parent computation — identified by its delta-lineage
    fingerprint — holds the artifacts to probe.  Carried by every
    derived trail; ignored entirely when the incremental plane is off.
    """

    parent_fingerprint: str  # content (language) fingerprint of the parent
    parent_lineage: str  # delta-lineage fingerprint of the parent
    kind: str  # "taint" or "sec", as in SplitInfo
    block: int  # the perturbed branch block
    edge: Edge  # the branch edge whose occurrence was decided
    polarity: bool  # True: the edge must occur; False: it never occurs

    def __str__(self) -> str:
        verb = "takes" if self.polarity else "avoids"
        return "delta[%s:%s b%d %s->%s of %s]" % (
            self.kind,
            verb,
            self.block,
            self.edge[0],
            self.edge[1],
            self.parent_lineage[:12],
        )


@dataclass
class Trail:
    """One partition component, as a language of CFG-edge words."""

    cfg: ControlFlowGraph
    dfa: DFA
    description: str
    splits: Tuple[SplitInfo, ...] = ()
    # The machine-facing perturbation record of the split that produced
    # this trail (None for roots).  compare=False: trail equality stays
    # content-based, exactly as before the incremental plane existed.
    delta: Optional[RefinementDelta] = field(default=None, repr=False, compare=False)
    _regex_cache: Optional[rx.Regex] = field(default=None, repr=False, compare=False)
    _fingerprint_cache: Optional[str] = field(default=None, repr=False, compare=False)
    _lineage_cache: Optional[str] = field(default=None, repr=False, compare=False)

    # -- constructors ----------------------------------------------------------

    @staticmethod
    def most_general(cfg: ControlFlowGraph) -> "Trail":
        """tr_mg: all paths of the CFG automaton (entry to exit)."""
        return Trail(
            cfg=cfg,
            dfa=cfg_automaton(cfg).minimized(),
            description="most general trail (all paths are possible)",
        )

    # -- language queries ----------------------------------------------------------

    @property
    def alphabet(self) -> FrozenSet[Edge]:
        return edge_alphabet(self.cfg)

    def accepts(self, word: Tuple[Edge, ...]) -> bool:
        return self.dfa.accepts(word)

    def is_empty(self) -> bool:
        return self.dfa.is_empty()

    def includes(self, other: "Trail") -> bool:
        """L(other) ⊆ L(self)."""
        return self.dfa.includes(other.dfa)

    def regex(self) -> rx.Regex:
        """The trail as a regular expression (state elimination).

        With the perf layer on, the computed regex is interned in a
        process-wide table keyed by the DFA's *exact* state structure
        (state count, initial, accepting set, transition map) — NOT the
        canonical isomorphism-class fingerprint: state elimination's
        output shape depends on concrete state numbering, and the seed
        semantics must see the regex this exact DFA would produce.
        Sibling trails re-derived across refinement rounds share one
        elimination run; regexes are immutable, so sharing is safe.
        """
        if self._regex_cache is None:
            regex = None
            from repro.perf import runtime

            key = None
            if runtime.enabled():
                from repro.perf.fingerprint import dfa_structure_key

                key = dfa_structure_key(self.dfa)
                regex = runtime.memo_table("trail.regex").get(key)
                if regex is None:
                    runtime.STATS.miss("trail.regex")
                else:
                    runtime.STATS.hit("trail.regex")
            if regex is None:
                regex = dfa_to_regex(self.dfa)
                if key is not None:
                    runtime.memo_table("trail.regex")[key] = regex
            object.__setattr__(self, "_regex_cache", regex)
        return self._regex_cache  # type: ignore[return-value]

    def split_blocks(self) -> FrozenSet[int]:
        """Branch blocks this trail's provenance already split on."""
        return frozenset(s.block for s in self.splits)

    # -- identity ----------------------------------------------------------------

    def fingerprint(self) -> str:
        """Deterministic content fingerprint of this trail (hex SHA-256).

        Covers the CFG structure and the trail DFA *up to isomorphism*
        (states are canonically renumbered), so it is stable across
        processes and Python hash randomization.  Deliberately
        **language-keyed**: the provenance (``splits``) and the
        human-readable ``description`` are excluded, so two trails
        denoting the same language — e.g. the same component reached via
        a different refinement route, or an untouched sibling re-derived
        after a split — share one fingerprint, and therefore one cached
        bound in :class:`repro.perf.cache.AnalysisCache`.
        """
        if self._fingerprint_cache is None:
            from repro.perf.fingerprint import trail_fingerprint

            object.__setattr__(self, "_fingerprint_cache", trail_fingerprint(self))
        return self._fingerprint_cache  # type: ignore[return-value]

    def lineage_fingerprint(self) -> str:
        """Delta-lineage fingerprint: :meth:`fingerprint` *plus* the
        split route (see :func:`repro.perf.fingerprint.lineage_fingerprint`).
        The incremental plane's parent-artifact index keys by this, so a
        reused fixpoint can never be served for a structurally different
        split even when the two children denote the same language.
        """
        if self._lineage_cache is None:
            from repro.perf.fingerprint import lineage_fingerprint

            object.__setattr__(self, "_lineage_cache", lineage_fingerprint(self))
        return self._lineage_cache  # type: ignore[return-value]

    def __hash__(self) -> int:
        # Content-based and consistent with the dataclass __eq__: equal
        # trails have equal cfg/dfa, hence equal fingerprints.  (Without
        # this, @dataclass(eq=True) would set __hash__ to None.)
        return hash(self.fingerprint())

    def derived(
        self, dfa: DFA, description: str, split: SplitInfo
    ) -> "Trail":
        return Trail(
            cfg=self.cfg,
            dfa=dfa.minimized(),
            description=description,
            splits=self.splits + (split,),
            delta=RefinementDelta(
                parent_fingerprint=self.fingerprint(),
                parent_lineage=self.lineage_fingerprint(),
                kind=split.kind,
                block=split.block,
                edge=split.edge,
                polarity=split.polarity,
            ),
        )

    def __str__(self) -> str:
        return "Trail(%s)" % self.description
