"""Command-line interface: ``python -m repro <command> ...``.

Subcommands mirror the stages a Blazer user cares about:

``analyze FILE --proc P``
    Run the full driver: SAFE / ATTACK / UNKNOWN, with the trail tree.

``pdsc FILE --proc P``
    Property-directed self-composition (docs/PDSC.md): prove the
    two-copy timing gap bounded, refining the copies' alignment on
    abstract counterexamples.  Exit 0 verified / 3 unverified /
    4 exhausted.

``leakage FILE --proc P [--model instr|cache|both]``
    Quantitative bits-leaked bound from the trail decomposition plus a
    constant-time check under a pluggable cost model (docs/LEAKAGE.md).
    Exit 0 constant-time / 2 variable-time / 3 unknown.

``bounds FILE --proc P [--domain D]``
    Just BOUNDANALYSIS on the most general trail.

``taint FILE --proc P``
    The low/high branch classification.

``disasm FILE [--proc P]``
    The compiled stack bytecode.

``run FILE --proc P --args JSON``
    Execute concretely; prints result and running time (instruction
    count under the paper's machine model).

``table1`` / ``figure1``
    Regenerate the paper's evaluation artifacts.

``diffcheck --seed S --count N``
    Differential fuzz campaign (docs/DIFFCHECK.md): random programs
    checked against the ground-truth oracle by up to five subjects
    (``--subjects blazer,selfcomp,consttime,pdsc,leakage``); exit 1 on
    a soundness bug.

``serve`` / ``submit`` / ``status``
    The resident analysis service (docs/SERVICE.md): boot the daemon,
    send it a job over the NDJSON socket protocol, inspect its queue.
    ``serve --aio`` boots the asyncio sharded tier instead — pipelined
    connections, admission control, circuit-breaker shard quarantine,
    graceful SIGTERM drain.

``loadgen``
    Replay mixed benchmark + diffcheck traffic against the async tier
    (in-process by default, or ``--connect`` to a running daemon) and
    audit the run for lost or wrongly-settled jobs; ``--faults`` runs
    the same audit under a REPRO_FAULTS chaos plan.

``metrics``
    A running daemon's unified metrics registry (docs/OBSERVABILITY.md)
    in Prometheus text exposition (or JSON with ``--json``).

Top-level ``-v`` / ``--log-level`` install a stderr logging handler for
the ``repro`` logger tree (the library itself never configures logging);
``--obs`` / ``--trace`` on ``analyze`` and ``table1`` arm the
observability layer for one run without touching the environment by
hand.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from typing import List, Optional

from repro.bounds import compute_bound, default_summaries
from repro.bytecode import compile_program, disassemble, verify_module
from repro.core import Blazer, BlazerConfig
from repro.core.observer import ConcreteThresholdObserver, PolynomialDegreeObserver
from repro.domains import DOMAINS
from repro.interp import Interpreter
from repro.ir import lift_module
from repro.lang import frontend
from repro.resilience.budget import Budget
from repro.taint import analyze_taint
from repro.util.cliargs import count_arg
from repro.util.errors import ReproError, SuiteInterrupted

# Exit codes (docs/RESILIENCE.md): 0 safe/ok, 1 generic error or Table-1
# mismatch, 2 attack, 3 unknown, 4 unknown-because-degraded (a budget
# ran out; rerun with a larger --deadline), 130 interrupted (SIGINT).
EXIT_ATTACK = 2
EXIT_UNKNOWN = 3
EXIT_DEGRADED = 4
EXIT_USAGE = 2  # argparse's own code for bad usage; also: no subcommand
EXIT_INTERRUPTED = 130

DEFAULT_ADDRESS = ".repro.sock"


def _version() -> str:
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:  # not pip-installed (PYTHONPATH=src checkouts)
        import repro

        return repro.__version__


def _verdict_exit(status: str, degraded: bool) -> int:
    """The shared exit-code contract for analysis outcomes."""
    if status == "safe":
        return 0
    if status == "attack":
        return EXIT_ATTACK
    return EXIT_DEGRADED if degraded else EXIT_UNKNOWN


def _load(path: str):
    with open(path) as handle:
        return frontend(handle.read())


def _pick_proc(cfgs, requested: Optional[str]) -> str:
    if requested is not None:
        if requested not in cfgs:
            raise SystemExit(
                "no procedure %r (available: %s)" % (requested, ", ".join(sorted(cfgs)))
            )
        return requested
    if len(cfgs) == 1:
        return next(iter(cfgs))
    raise SystemExit(
        "program defines several procedures; pick one with --proc "
        "(available: %s)" % ", ".join(sorted(cfgs))
    )


def _observer(name: str, threshold: int, max_input: int):
    if name == "degree":
        return PolynomialDegreeObserver()
    return ConcreteThresholdObserver(threshold=threshold, default_max=max_input)


def configure_logging(verbosity: int = 0, level_name: Optional[str] = None) -> None:
    """Install a stderr handler on the ``repro`` logger tree (idempotent).

    Level: ``--log-level`` wins; else ``-v`` → INFO, ``-vv`` → DEBUG,
    default WARNING.  Installing only on explicit request keeps the
    default CLI byte-identical to the unconfigured-logging behavior.
    """
    if level_name:
        level = getattr(logging, level_name.upper(), None)
        if not isinstance(level, int):
            raise SystemExit("unknown log level %r" % level_name)
    elif verbosity >= 2:
        level = logging.DEBUG
    elif verbosity == 1:
        level = logging.INFO
    else:
        level = logging.WARNING
    root = logging.getLogger("repro")
    root.setLevel(level)
    if not any(getattr(h, "_repro_cli", False) for h in root.handlers):
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s")
        )
        handler._repro_cli = True  # type: ignore[attr-defined]
        root.addHandler(handler)


def _arm_observability(args) -> None:
    """Honor ``--obs`` / ``--trace``: flip the process-wide REPRO_OBS
    switch and export it (plus the trace path) through the environment
    so worker processes inherit both."""
    import os

    trace = getattr(args, "trace", None)
    if not getattr(args, "obs", False) and trace is None:
        return
    from repro.obs import runtime as obs_runtime

    obs_runtime.set_enabled(True)
    os.environ["REPRO_OBS"] = "1"
    if trace is not None:
        obs_runtime.set_trace_path(trace, export_env=True)


def _budget_from_args(args) -> Optional[Budget]:
    deadline = getattr(args, "deadline", None)
    max_refinements = getattr(args, "max_refinements", None)
    max_steps = getattr(args, "max_steps", None)
    if deadline is None and max_refinements is None and max_steps is None:
        return None
    return Budget(
        wall_seconds=deadline,
        max_refinements=max_refinements,
        max_steps=max_steps,
    )


def cmd_analyze(args) -> int:
    _arm_observability(args)
    program = _load(args.file)
    config = BlazerConfig(
        domain=args.domain,
        observer=_observer(args.observer, args.threshold, args.max_input),
        summaries=default_summaries(args.max_bits),
        budget=_budget_from_args(args),
    )
    blazer = Blazer(program, config)
    proc = _pick_proc(blazer.cfgs, args.proc)
    verdict = blazer.analyze(proc)
    if args.json:
        from repro.core.report import verdict_to_json

        print(verdict_to_json(verdict))
    else:
        print(verdict.render())
    return _verdict_exit(verdict.status, verdict.degraded)


def cmd_bounds(args) -> int:
    program = _load(args.file)
    module = compile_program(program)
    verify_module(module)
    cfgs = lift_module(module)
    proc = _pick_proc(cfgs, args.proc)
    result = compute_bound(
        cfgs[proc], DOMAINS[args.domain], default_summaries(args.max_bits)
    )
    print("%s: %s" % (proc, result))
    for header, ib in sorted(result.loop_bounds.items()):
        print(
            "  loop at block b%d: iterations [%s, %s]%s"
            % (header[0], ib.lower, ib.upper if ib.upper is not None else "oo",
               " (exact)" if ib.exact else "")
        )
    return 0


def cmd_taint(args) -> int:
    program = _load(args.file)
    module = compile_program(program)
    verify_module(module)
    cfgs = lift_module(module)
    proc = _pick_proc(cfgs, args.proc)
    print(analyze_taint(cfgs[proc]))
    return 0


def cmd_disasm(args) -> int:
    program = _load(args.file)
    module = compile_program(program)
    verify_module(module)
    names = [args.proc] if args.proc else sorted(module.codes)
    for name in names:
        print(disassemble(module.code(name)))
        print()
    return 0


def cmd_run(args) -> int:
    program = _load(args.file)
    module = compile_program(program)
    verify_module(module)
    cfgs = lift_module(module)
    proc = _pick_proc(cfgs, args.proc)
    call_args = json.loads(args.args) if args.args else {}
    if not isinstance(call_args, (list, dict)):
        raise SystemExit("--args must be a JSON array or object")
    interp = Interpreter(cfgs)
    trace = interp.run(proc, call_args)
    print("result: %r" % (trace.result,))
    print("time:   %d instructions" % trace.time)
    print("edges:  %d CFG edges traversed" % len(trace.edges))
    return 0


DEFAULT_JOURNAL = ".table1.journal.jsonl"


def cmd_table1(args) -> int:
    _arm_observability(args)
    from repro.obs import runtime as obs_runtime
    from repro.obs.trace import span as trace_span

    # One root span over the whole suite run, backdated to process
    # start: with --trace, the exported JSONL covers the command's full
    # end-to-end wall time, interpreter startup included.
    with trace_span(
        "table1.suite", group=args.group or "all", jobs=args.jobs
    ) as root:
        root.backdate(obs_runtime.process_age_seconds())
        return _cmd_table1(args)


def _cmd_table1(args) -> int:
    from repro.benchsuite import ALL_BENCHMARKS, ParallelSuiteRunner
    from repro.util.table import render_table

    benches = [
        b for b in ALL_BENCHMARKS if not args.group or b.group == args.group
    ]
    journal = args.journal
    if journal is None and (args.resume or args.retries):
        journal = DEFAULT_JOURNAL
    runner = ParallelSuiteRunner(
        benches,
        jobs=args.jobs,
        retries=args.retries,
        task_timeout=args.task_timeout,
        deadline=args.deadline,
        journal=journal,
        resume=args.resume,
    )
    results = runner.run()
    rows = []
    for result in results:
        verdict_col = "DEGRADED" if result.degraded else (
            "OK" if result.ok else "MISMATCH"
        )
        rows.append(
            [
                result.name,
                result.group,
                result.size,
                result.status,
                "%.2f" % result.safety_seconds,
                "-"
                if result.status == "safe"
                else "%.2f" % (result.safety_seconds + result.attack_seconds),
                verdict_col,
            ]
        )
    print(
        render_table(
            ["Benchmark", "Group", "Size", "Verdict", "Safety (s)", "w/Attack (s)", "vs Table 1"],
            rows,
            aligns=["l", "l", "r", "l", "r", "r", "l"],
        )
    )
    if runner.resumed_names:
        print(
            "resumed %d row(s) from %s" % (len(runner.resumed_names), journal),
            file=sys.stderr,
        )
    if runner.retry_counts:
        print(
            "retried: %s"
            % ", ".join(
                "%s x%d" % (n, c) for n, c in sorted(runner.retry_counts.items())
            ),
            file=sys.stderr,
        )
    degraded = [r.name for r in results if r.degraded]
    mismatches = [r.name for r in results if not r.ok and not r.degraded]
    if mismatches:
        print(
            "MISMATCH in %d row(s): %s" % (len(mismatches), ", ".join(mismatches)),
            file=sys.stderr,
        )
        return 1
    if degraded:
        print(
            "DEGRADED (budget exhausted) in %d row(s): %s"
            % (len(degraded), ", ".join(degraded)),
            file=sys.stderr,
        )
        return EXIT_DEGRADED
    return 0


DEFAULT_DIFF_JOURNAL = ".diffcheck.journal.jsonl"


def cmd_diffcheck(args) -> int:
    _arm_observability(args)
    from repro.diffcheck import CampaignConfig, DiffConfig, run_campaign
    from repro.diffcheck.campaign import write_corpus
    from repro.diffcheck.differ import parse_subjects

    config = CampaignConfig(
        seed=args.seed,
        count=args.count,
        diff=DiffConfig(
            threshold=args.threshold,
            domain=args.domain,
            max_pairs=args.max_pairs,
            max_refinements=args.max_refinements,
            subjects=parse_subjects(args.subjects),
        ),
        shrink=not args.no_shrink,
    )
    journal = args.journal
    if journal is None and args.resume:
        journal = DEFAULT_DIFF_JOURNAL
    report = run_campaign(
        config,
        jobs=args.jobs,
        journal=journal,
        resume=args.resume,
        task_timeout=args.task_timeout,
    )
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
    if args.corpus:
        written = write_corpus(report, args.corpus)
        if written:
            print(
                "wrote %d reproducer(s) to %s" % (len(written), args.corpus),
                file=sys.stderr,
            )
    summary = report.to_dict()["summary"]
    print(
        "diffcheck: seed=%d programs=%d clean=%d leaky=%d "
        "blazer safe/attack=%d/%d selfcomp/pdsc verified=%d/%d"
        % (
            report.seed,
            summary["programs"],
            summary["clean"],
            summary["oracle_leaky"],
            summary["blazer_safe"],
            summary["blazer_attack"],
            summary["selfcomp_verified"],
            summary["pdsc_verified"],
        )
    )
    for kind, count in sorted(summary["disagreements"].items()):
        print("  %s: %d" % (kind, count))
    for outcome in report.soundness_bugs:
        print(
            "SOUNDNESS BUG in %s: %s"
            % (
                outcome.name,
                "; ".join(
                    d["detail"]
                    for d in outcome.disagreements
                    if d["kind"] == "soundness_bug"
                ),
            ),
            file=sys.stderr,
        )
        reproducer = outcome.shrunk_source or outcome.source
        if reproducer:
            print(reproducer, file=sys.stderr)
    if report.errors:
        print(
            "DEGRADED: %d program(s) errored: %s"
            % (len(report.errors), ", ".join(o.name for o in report.errors)),
            file=sys.stderr,
        )
    return report.exit_code


def cmd_pdsc(args) -> int:
    _arm_observability(args)
    from repro.core.pdsc import result_digest, verify_source

    with open(args.file) as handle:
        source = handle.read()
    proc, result = verify_source(
        source,
        proc=args.proc,
        domain=args.domain,
        epsilon=args.epsilon,
        max_pairs=args.max_pairs,
        max_refinements=args.max_refinements,
        deadline=args.deadline,
    )
    if args.json:
        print(
            json.dumps(
                {
                    "proc": proc,
                    "digest": result_digest(proc, result),
                    **result.to_dict(),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print("%s:" % proc)
        print(result.render())
    if result.verified:
        return 0
    return EXIT_DEGRADED if result.exhausted else EXIT_UNKNOWN


def cmd_leakage(args) -> int:
    _arm_observability(args)
    from repro.leakage.job import leakage_source, result_digest

    with open(args.file) as handle:
        source = handle.read()
    models = ("instr", "cache") if args.model == "both" else (args.model,)
    records = []
    all_ct = True
    any_unknown = False
    for model in models:
        proc, report, consttime = leakage_source(
            source,
            proc=args.proc,
            domain=args.domain,
            slack=args.slack,
            cost_model=model,
            max_bits=args.max_bits,
            max_input=args.max_input,
            deadline=args.deadline,
        )
        records.append(
            {
                "proc": proc,
                "cost_model": model,
                "digest": result_digest(proc, report, consttime),
                "leakage": report.to_dict(),
                "consttime": consttime.to_dict(),
            }
        )
        all_ct = all_ct and consttime.constant_time
        any_unknown = any_unknown or report.cells is None
        if not args.json:
            print(report.render())
            print(consttime.render())
    if args.json:
        print(json.dumps(records if len(records) > 1 else records[0],
                         indent=2, sort_keys=True))
    if any_unknown:
        return EXIT_UNKNOWN
    return 0 if all_ct else EXIT_ATTACK


def cmd_serve(args) -> int:
    if args.aio:
        import asyncio

        from repro.service.aio import AsyncAnalysisDaemon

        daemon = AsyncAnalysisDaemon(
            args.address,
            shards=args.shards,
            workers_per_shard=args.workers_per_shard,
            cache_dir=args.cache_dir,
            isolation=args.isolation,
            max_pending=args.max_pending,
            shard_inflight=args.shard_inflight,
            rate=args.rate,
            burst=args.burst,
            default_deadline=args.deadline,
            task_timeout=args.task_timeout,
        )

        async def _serve() -> None:
            await daemon.start()
            print(
                "serving on %s (async, %d shard(s) x %d worker(s), %s isolation)"
                % (
                    daemon.address,
                    daemon.shards.count,
                    args.workers_per_shard,
                    daemon.isolation,
                ),
                flush=True,
            )
            await daemon.serve_forever()  # SIGTERM/SIGINT drain gracefully

        asyncio.run(_serve())
        return 0

    import signal

    from repro.service import AnalysisDaemon

    daemon = AnalysisDaemon(
        args.address,
        workers=args.workers,
        cache_dir=args.cache_dir,
        isolation=args.isolation,
        retries=args.retries,
        default_deadline=args.deadline,
        task_timeout=args.task_timeout,
    )
    daemon.start()
    # SIGTERM = graceful drain (the rolling-restart contract): stop
    # accepting, settle in-flight jobs, flush the disk tier, exit.
    previous = signal.signal(signal.SIGTERM, lambda *_: daemon.request_stop())
    print("serving on %s" % daemon.address, flush=True)
    try:
        daemon.serve_forever()
    finally:
        signal.signal(signal.SIGTERM, previous)
    return 0


def cmd_loadgen(args) -> int:
    from repro.service.loadgen import LoadgenConfig, run_loadgen, write_report

    config = LoadgenConfig(
        clients=args.clients,
        requests_per_client=args.requests,
        shards=args.shards,
        workers_per_shard=args.workers_per_shard,
        isolation=args.isolation,
        generated=args.generated,
        seed=args.seed,
        connect=args.connect,
        cache_dir=args.cache_dir,
        max_pending=args.max_pending,
        shard_inflight=args.shard_inflight,
        rate=args.rate,
        faults=args.faults,
        restart_after=args.restart_after,
        deadline=args.deadline,
    )
    report = run_loadgen(config)
    if args.report:
        write_report(report, args.report)
    latency = report["latency_seconds"]
    print(
        "loadgen: %d client(s) x %d request(s) -> %d done, %d failed, "
        "%d lost in %.2fs (%.1f req/s)"
        % (
            args.clients,
            args.requests,
            report["requests_done"],
            report["requests_failed"],
            report["requests_lost"],
            report["elapsed_seconds"],
            report["throughput_rps"],
        )
    )
    print(
        "latency: p50=%s p99=%s max=%s (histogram p50=%s p99=%s)"
        % tuple(
            "%.3fs" % latency[k] if latency[k] is not None else "-"
            for k in ("p50", "p99", "max", "histogram_p50", "histogram_p99")
        )
    )
    if report["restarts"]:
        print("restarts: %d (graceful drain mid-run)" % report["restarts"])
    if report["faults"]:
        print("fault plan: %s" % report["faults"])
    for violation in report["violations"]:
        print("VIOLATION: %s" % violation, file=sys.stderr)
    return 0 if report["ok"] else 1


def cmd_submit(args) -> int:
    from repro.service import ServiceClient

    with ServiceClient(args.connect, timeout=args.timeout) as client:
        response = client.submit(
            open(args.file).read(),
            proc=args.proc,
            wait=not args.no_wait,
            priority=args.priority,
            domain=args.domain,
            observer=args.observer,
            threshold=args.threshold,
            max_input=args.max_input,
            max_bits=args.max_bits,
            deadline=args.deadline,
            max_refinements=args.max_refinements,
            max_steps=args.max_steps,
        )
    if args.json:
        print(json.dumps(response, indent=2, sort_keys=True))
    if response.get("state") == "failed":
        print(
            "job %s failed: %s"
            % (response.get("job", "?"), response.get("error", "unknown error")),
            file=sys.stderr,
        )
        return 1
    result = response.get("result")
    if result is None:  # --no-wait (or wait timed out): job is in flight
        if not args.json:
            print("%s %s" % (response.get("job", "?"), response.get("state")))
        return 0
    if not args.json:
        print(
            "%s: %s%s  [digest %s%s]"
            % (
                result.get("proc"),
                result.get("status", "?").upper(),
                " (degraded)" if result.get("degraded") else "",
                str(result.get("digest", ""))[:12],
                ", cached: %s" % response["cached"] if response.get("cached") else "",
            )
        )
    return _verdict_exit(result.get("status", "unknown"), bool(result.get("degraded")))


def cmd_status(args) -> int:
    from repro.service import ServiceClient

    with ServiceClient(args.connect, timeout=args.timeout) as client:
        if args.shutdown:
            response = client.shutdown()
        elif args.job:
            response = client.status(args.job)
        elif args.stats:
            response = client.stats()
        else:
            response = client.status()
    if args.json:
        print(json.dumps(response, indent=2, sort_keys=True))
        return 0
    if args.shutdown:
        print("daemon stopping")
        return 0
    if args.job:
        line = "%s %s" % (response["job"], response["state"])
        if response.get("error"):
            line += " (%s)" % response["error"]
        print(line)
        return 0
    if args.stats:
        for name in sorted(response):
            if name not in ("ok", "op", "v"):
                print("%s: %s" % (name, response[name]))
        return 0
    print(
        "%s: %d worker(s), %s isolation, queue depth %d"
        % (
            response["address"],
            response["workers"],
            response["isolation"],
            response["queue_depth"],
        )
    )
    for job in response.get("jobs", []):
        line = "  %s %s proc=%s waiters=%d" % (
            job["job"],
            job["state"],
            job.get("proc"),
            job.get("waiters", 1),
        )
        if job.get("error"):
            line += " error=%s" % job["error"]
        print(line)
    return 0


def cmd_metrics(args) -> int:
    from repro.service import ServiceClient

    with ServiceClient(args.connect, timeout=args.timeout) as client:
        if args.json:
            response = client.metrics(format="json")
            print(json.dumps(response["metrics"], indent=2, sort_keys=True))
        else:
            response = client.metrics()
            sys.stdout.write(response["text"])
    return 0


_jobs_arg = count_arg("jobs")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Blazer reproduction: timing-channel verification "
        "by quotient partitioning (PLDI 2017)",
    )
    parser.add_argument(
        "--version", action="version", version="repro %s" % _version()
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="log to stderr: -v for INFO, -vv for DEBUG (before the "
        "subcommand, e.g. 'repro -v table1')",
    )
    parser.add_argument(
        "--log-level",
        metavar="LEVEL",
        help="explicit stderr log level (DEBUG, INFO, WARNING, ERROR); "
        "overrides -v",
    )
    sub = parser.add_subparsers(dest="command", required=False)

    def common(p, needs_proc=True):
        p.add_argument("file", help="source file in the repro input language")
        if needs_proc:
            p.add_argument("--proc", help="procedure to analyze")
        p.add_argument(
            "--domain", default="zone", choices=sorted(DOMAINS), help="numeric domain"
        )
        p.add_argument(
            "--max-bits", type=int, default=4096, help="assumed BigInteger width"
        )

    def analysis_flags(p):
        p.add_argument(
            "--observer",
            default="degree",
            choices=["degree", "threshold"],
            help="observer model (generic degree vs concrete threshold)",
        )
        p.add_argument("--threshold", type=int, default=25_000)
        p.add_argument(
            "--json", action="store_true", help="machine-readable JSON output"
        )
        p.add_argument(
            "--max-input", type=int, default=4096, help="assumed max input size"
        )
        p.add_argument(
            "--deadline",
            type=float,
            metavar="SECONDS",
            help="wall-clock budget; on exhaustion the verdict degrades "
            "soundly to 'unknown' (exit %d)" % EXIT_DEGRADED,
        )
        p.add_argument(
            "--max-refinements",
            type=int,
            metavar="N",
            help="refinement-iteration budget (degrades like --deadline)",
        )
        p.add_argument(
            "--max-steps",
            type=int,
            metavar="N",
            help="abstract-interpretation step budget (degrades like --deadline)",
        )

    def obs_flags(p):
        p.add_argument(
            "--obs",
            action="store_true",
            help="enable the observability layer (REPRO_OBS=1) for this run "
            "(docs/OBSERVABILITY.md)",
        )
        p.add_argument(
            "--trace",
            metavar="PATH",
            help="export trace spans as JSONL to PATH (implies --obs; "
            "worker processes append to the same file)",
        )

    analyze = sub.add_parser("analyze", help="prove TCF or synthesize an attack")
    common(analyze)
    analysis_flags(analyze)
    obs_flags(analyze)
    analyze.set_defaults(func=cmd_analyze)

    pdsc = sub.add_parser(
        "pdsc",
        help="property-directed self-composition: prove the timing gap "
        "bounded by refining the copies' alignment (docs/PDSC.md)",
    )
    pdsc.add_argument("file", help="source file in the repro input language")
    pdsc.add_argument("--proc", help="procedure to verify")
    pdsc.add_argument(
        "--domain", default="zone", choices=sorted(DOMAINS), help="numeric domain"
    )
    pdsc.add_argument(
        "--epsilon",
        type=int,
        default=32,
        help="verified means |cost1 - cost2| <= epsilon at the paired "
        "exit (default: 32)",
    )
    pdsc.add_argument(
        "--max-pairs",
        type=int,
        default=4000,
        help="pair-space budget per fixpoint round (default: 4000)",
    )
    pdsc.add_argument(
        "--max-refinements",
        type=int,
        default=4,
        help="alignment refinements before the loop reports 'exhausted' "
        "(default: 4)",
    )
    pdsc.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        help="wall-clock budget over the whole CEGAR loop; on exhaustion "
        "the outcome degrades soundly to 'exhausted' (exit %d)" % EXIT_DEGRADED,
    )
    pdsc.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    obs_flags(pdsc)
    pdsc.set_defaults(func=cmd_pdsc)

    leakage = sub.add_parser(
        "leakage",
        help="quantitative bits-leaked bound from the trail decomposition "
        "plus a constant-time check under a cost model (docs/LEAKAGE.md)",
    )
    leakage.add_argument("file", help="source file in the repro input language")
    leakage.add_argument("--proc", help="procedure to analyze")
    leakage.add_argument(
        "--domain", default="zone", choices=sorted(DOMAINS), help="numeric domain"
    )
    leakage.add_argument(
        "--model",
        default="instr",
        choices=("instr", "cache", "both"),
        help="cost model: uniform instruction count, cache-aware array "
        "reads, or both in sequence (default: instr)",
    )
    leakage.add_argument(
        "--slack",
        type=int,
        default=32,
        help="observer slack: timing observations closer than this are "
        "indistinguishable (default: 32)",
    )
    leakage.add_argument(
        "--max-bits",
        type=int,
        default=4096,
        help="assumed maximum bit length for the bigint externs "
        "(default: 4096)",
    )
    leakage.add_argument(
        "--max-input",
        type=int,
        default=4096,
        help="assumed maximum value for unconstrained input symbols "
        "when evaluating bound intervals (default: 4096)",
    )
    leakage.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        help="wall-clock budget; on exhaustion the report degrades "
        "soundly to 'unknown' (exit %d)" % EXIT_UNKNOWN,
    )
    leakage.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    obs_flags(leakage)
    leakage.set_defaults(func=cmd_leakage)

    bounds = sub.add_parser("bounds", help="symbolic running-time bounds")
    common(bounds)
    bounds.set_defaults(func=cmd_bounds)

    taint = sub.add_parser("taint", help="low/high branch classification")
    common(taint)
    taint.set_defaults(func=cmd_taint)

    disasm = sub.add_parser("disasm", help="stack-bytecode listing")
    common(disasm)
    disasm.set_defaults(func=cmd_disasm)

    run = sub.add_parser("run", help="execute concretely and time it")
    common(run)
    run.add_argument(
        "--args",
        default="",
        help='arguments as JSON, e.g. \'{"low": 3, "high": 7}\' or \'[3, 7]\'',
    )
    run.set_defaults(func=cmd_run)

    table1 = sub.add_parser("table1", help="regenerate Table 1")
    table1.add_argument("--group", choices=["MicroBench", "STAC", "Literature"])
    table1.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=1,
        help="worker processes (0 = one per CPU; default: serial)",
    )
    table1.add_argument(
        "--retries",
        type=int,
        default=0,
        help="re-run a failed benchmark up to N times on the serial backend",
    )
    table1.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        help="per-benchmark wall-clock budget (degraded rows exit %d)"
        % EXIT_DEGRADED,
    )
    table1.add_argument(
        "--task-timeout",
        type=float,
        metavar="SECONDS",
        help="hard per-benchmark timeout: a worker that produces no "
        "result in time is abandoned and the row retried",
    )
    table1.add_argument(
        "--journal",
        metavar="PATH",
        help="crash-safe JSONL journal of completed rows "
        "(default %s when --resume or --retries is given)" % DEFAULT_JOURNAL,
    )
    table1.add_argument(
        "--resume",
        action="store_true",
        help="skip benchmarks already recorded in the journal",
    )
    obs_flags(table1)
    table1.set_defaults(func=cmd_table1)

    # Kept in sync with repro.diffcheck.differ.SUBJECTS (not imported:
    # parser construction must stay lightweight).
    diff_subjects = ("blazer", "selfcomp", "consttime", "pdsc", "leakage")

    diffcheck = sub.add_parser(
        "diffcheck",
        help="differential fuzz campaign: oracle vs driver vs baselines "
        "(docs/DIFFCHECK.md)",
    )
    diffcheck.add_argument(
        "--seed", type=int, default=0, help="campaign seed (default: 0)"
    )
    diffcheck.add_argument(
        "--count", type=int, default=200, help="programs to generate (default: 200)"
    )
    diffcheck.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=1,
        help="worker processes (0 = one per CPU; default: serial); the "
        "report is byte-identical at any job count",
    )
    diffcheck.add_argument(
        "--threshold",
        type=int,
        default=24,
        help="observer slack T: a concrete low-equal gap >= T is a leak "
        "(default: 24)",
    )
    diffcheck.add_argument(
        "--domain", default="zone", choices=sorted(DOMAINS), help="numeric domain"
    )
    diffcheck.add_argument(
        "--max-pairs",
        type=int,
        default=2500,
        help="self-composition pair-space budget per program; beyond it "
        "the baseline reports 'exhausted' instead of a verdict "
        "(default: 2500; the smoke gate uses a smaller budget)",
    )
    diffcheck.add_argument(
        "--max-refinements",
        type=int,
        default=3,
        help="pdsc alignment-refinement budget per program (default: 3)",
    )
    diffcheck.add_argument(
        "--subjects",
        default=",".join(diff_subjects),
        metavar="LIST",
        help="comma list of engines to run (any of: %s; default: all). "
        "Skipped subjects report 'skipped'; the report is byte-identical "
        "for a fixed subject set at any --jobs" % ", ".join(diff_subjects),
    )
    diffcheck.add_argument(
        "--report", metavar="PATH", help="write the canonical JSON report here"
    )
    diffcheck.add_argument(
        "--corpus",
        metavar="DIR",
        help="write shrunk reproducers of soundness bugs and attack-spec "
        "mismatches into DIR",
    )
    diffcheck.add_argument(
        "--no-shrink",
        action="store_true",
        help="record raw counterexamples without minimizing them",
    )
    diffcheck.add_argument(
        "--journal",
        metavar="PATH",
        help="crash-safe JSONL journal of completed programs "
        "(default %s when --resume is given)" % DEFAULT_DIFF_JOURNAL,
    )
    diffcheck.add_argument(
        "--resume",
        action="store_true",
        help="skip programs already recorded in the journal",
    )
    diffcheck.add_argument(
        "--task-timeout",
        type=float,
        metavar="SECONDS",
        help="hard per-program timeout: a worker that produces no result "
        "in time is abandoned and the program retried serially",
    )
    obs_flags(diffcheck)
    diffcheck.set_defaults(func=cmd_diffcheck)

    serve = sub.add_parser(
        "serve", help="run the resident analysis daemon (docs/SERVICE.md)"
    )
    serve.add_argument(
        "address",
        nargs="?",
        default=DEFAULT_ADDRESS,
        help="socket to listen on: unix:/path, tcp:host:port, a bare "
        ".sock path, or host:port (default: %s; tcp port 0 picks a "
        "free port and prints it)" % DEFAULT_ADDRESS,
    )
    serve.add_argument(
        "--workers",
        type=count_arg("workers", allow_zero=False),
        default=1,
        help="concurrent analysis workers (must be >= 1)",
    )
    serve.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persistent result cache directory; verdicts and bound "
        "results stored here survive daemon restarts",
    )
    serve.add_argument(
        "--isolation",
        default="thread",
        choices=["thread", "process"],
        help="job isolation: threads (default) or a crash-isolated "
        "process pool",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=0,
        help="re-run a failed job up to N times before failing it",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        help="default per-job wall-clock budget (jobs may override)",
    )
    serve.add_argument(
        "--task-timeout",
        type=float,
        metavar="SECONDS",
        help="hard per-job timeout under --isolation process",
    )
    serve.add_argument(
        "--aio",
        action="store_true",
        help="run the asyncio sharded tier instead of the thread-per-"
        "connection daemon: pipelined connections, admission control, "
        "circuit-breaker shard quarantine, graceful SIGTERM drain",
    )
    serve.add_argument(
        "--shards",
        type=count_arg("shards", allow_zero=False),
        default=2,
        help="worker shards under --aio (default: 2)",
    )
    serve.add_argument(
        "--workers-per-shard",
        type=count_arg("workers-per-shard", allow_zero=False),
        default=1,
        help="pool workers per shard under --aio (default: 1)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=256,
        help="unsettled-job ceiling before submissions are shed with "
        "'overloaded' (--aio; default: 256)",
    )
    serve.add_argument(
        "--shard-inflight",
        type=int,
        default=64,
        help="per-shard unsettled-job bound (backpressure; --aio; "
        "default: 64)",
    )
    serve.add_argument(
        "--rate",
        type=float,
        metavar="PER_SECOND",
        help="per-connection submission rate limit (--aio; token bucket)",
    )
    serve.add_argument(
        "--burst",
        type=float,
        metavar="TOKENS",
        help="token-bucket burst size for --rate (default: max(1, rate))",
    )
    serve.set_defaults(func=cmd_serve)

    loadgen = sub.add_parser(
        "loadgen",
        help="replay mixed analysis traffic against the async tier and "
        "audit it for lost or wrongly-settled jobs (docs/SERVICE.md)",
    )
    loadgen.add_argument(
        "--clients", type=int, default=1000, help="concurrent clients (default: 1000)"
    )
    loadgen.add_argument(
        "--requests",
        type=int,
        default=4,
        help="requests per client (default: 4)",
    )
    loadgen.add_argument(
        "--shards", type=int, default=2, help="shards for the in-process daemon"
    )
    loadgen.add_argument(
        "--workers-per-shard", type=int, default=1, help="workers per shard"
    )
    loadgen.add_argument(
        "--isolation",
        default="thread",
        choices=["thread", "process"],
        help="shard isolation (crash faults need 'process')",
    )
    loadgen.add_argument(
        "--generated",
        type=int,
        default=12,
        help="diffcheck-generated programs in the mix (default: 12)",
    )
    loadgen.add_argument("--seed", type=int, default=20260808)
    loadgen.add_argument(
        "--connect",
        metavar="ADDRESS",
        help="target a running daemon instead of booting one in-process",
    )
    loadgen.add_argument(
        "--cache-dir", metavar="DIR", help="cache dir for the in-process daemon"
    )
    loadgen.add_argument("--max-pending", type=int, default=256)
    loadgen.add_argument("--shard-inflight", type=int, default=64)
    loadgen.add_argument(
        "--rate", type=float, metavar="PER_SECOND", help="per-connection rate limit"
    )
    loadgen.add_argument(
        "--faults",
        metavar="SPEC",
        help="REPRO_FAULTS chaos plan active during the load phase "
        "(e.g. 'worker.run:crash@1,worker.run:delay=0.2@5')",
    )
    loadgen.add_argument(
        "--restart-after",
        type=int,
        metavar="N",
        help="drain the daemon gracefully after N settled requests and "
        "boot a fresh one on the same address (rolling restart)",
    )
    loadgen.add_argument(
        "--deadline",
        type=float,
        default=120.0,
        help="harness wall ceiling; requests beyond it count as LOST "
        "(default: 120)",
    )
    loadgen.add_argument(
        "--report", metavar="PATH", help="write the JSON audit report here"
    )
    loadgen.set_defaults(func=cmd_loadgen)

    submit = sub.add_parser(
        "submit", help="send one analysis job to a running daemon"
    )
    common(submit)
    analysis_flags(submit)
    submit.add_argument(
        "--connect",
        default=DEFAULT_ADDRESS,
        metavar="ADDRESS",
        help="daemon address (default: %s)" % DEFAULT_ADDRESS,
    )
    submit.add_argument(
        "--no-wait",
        action="store_true",
        help="enqueue and return immediately instead of waiting for the verdict",
    )
    submit.add_argument(
        "--priority", type=int, default=0, help="scheduling priority (higher first)"
    )
    submit.add_argument(
        "--timeout", type=float, metavar="SECONDS", help="socket timeout"
    )
    submit.set_defaults(func=cmd_submit)

    status = sub.add_parser(
        "status", help="inspect (or stop) a running analysis daemon"
    )
    status.add_argument(
        "--connect",
        default=DEFAULT_ADDRESS,
        metavar="ADDRESS",
        help="daemon address (default: %s)" % DEFAULT_ADDRESS,
    )
    status.add_argument("--job", metavar="ID", help="show one job instead")
    status.add_argument(
        "--stats", action="store_true", help="show daemon counters instead"
    )
    status.add_argument(
        "--shutdown", action="store_true", help="ask the daemon to stop"
    )
    status.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    status.add_argument(
        "--timeout", type=float, metavar="SECONDS", help="socket timeout"
    )
    status.set_defaults(func=cmd_status)

    metrics = sub.add_parser(
        "metrics",
        help="scrape a running daemon's metrics (docs/OBSERVABILITY.md)",
    )
    metrics.add_argument(
        "--connect",
        default=DEFAULT_ADDRESS,
        metavar="ADDRESS",
        help="daemon address (default: %s)" % DEFAULT_ADDRESS,
    )
    metrics.add_argument(
        "--json",
        action="store_true",
        help="JSON snapshot instead of Prometheus text exposition",
    )
    metrics.add_argument(
        "--timeout", type=float, metavar="SECONDS", help="socket timeout"
    )
    metrics.set_defaults(func=cmd_metrics)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.verbose or args.log_level:
        configure_logging(args.verbose, args.log_level)
    if getattr(args, "func", None) is None:
        parser.print_help(sys.stderr)
        return EXIT_USAGE
    try:
        return args.func(args)
    except SuiteInterrupted as exc:
        print("interrupted: %s" % exc, file=sys.stderr)
        return EXIT_INTERRUPTED
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
