"""The control-flow-graph automaton (Section 4.1 of the paper).

Given a CFG, its automaton A_C has the blocks as states, the CFG *edges*
as alphabet symbols, a transition ``q --(q,p)--> p`` per edge, the entry
block as initial state and the exit block as the only accepting state.
An execution trace, projected to the sequence of edges it traverses, is a
word over this alphabet; L(A_C) over-approximates the set of such words
(it is the most general trail tr_mg).
"""

from __future__ import annotations

from typing import FrozenSet

from repro.automata import regex as rx
from repro.automata.dfa import DFA
from repro.automata.elim import dfa_to_regex
from repro.cfg.graph import ControlFlowGraph, Edge


def edge_alphabet(cfg: ControlFlowGraph) -> FrozenSet[Edge]:
    """The alphabet of the CFG automaton: all CFG edges."""
    return frozenset(cfg.edges())


def cfg_automaton(cfg: ControlFlowGraph) -> DFA:
    """Build A_C.  It is deterministic by construction: the symbol (q, p)
    uniquely determines both endpoints."""
    transitions = {}
    for (src, dst) in cfg.edges():
        transitions[(src, (src, dst))] = dst
    return DFA(
        num_states=max(cfg.block_ids()) + 1,
        initial=cfg.entry,
        accepting={cfg.exit_id},
        transitions=transitions,
        alphabet=edge_alphabet(cfg),
    )


def most_general_trail_regex(cfg: ControlFlowGraph) -> rx.Regex:
    """The most general trail tr_mg as a regular expression."""
    return dfa_to_regex(cfg_automaton(cfg))
