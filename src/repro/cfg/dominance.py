"""Dominators, post-dominators, and control dependence.

The taint analysis needs control dependence (for implicit flows), and the
loop analysis needs dominators (for back-edge detection).  Both are
computed by the classic iterative data-flow algorithm over reverse
postorder — simple, and fast enough for the paper's benchmark sizes
(≤ ~100 blocks).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.cfg.graph import ControlFlowGraph


class DominatorTree:
    """Immediate-dominator tree for a CFG (or its reverse).

    ``idom[b]`` is the immediate dominator of ``b`` (``None`` for the
    root).  Query helpers work on block ids.
    """

    def __init__(self, root: int, idom: Dict[int, Optional[int]]):
        self.root = root
        self.idom = idom
        self._children: Dict[int, List[int]] = {b: [] for b in idom}
        for node, parent in idom.items():
            if parent is not None:
                self._children[parent].append(node)

    def dominates(self, a: int, b: int) -> bool:
        """Does ``a`` dominate ``b`` (reflexively)?"""
        node: Optional[int] = b
        while node is not None:
            if node == a:
                return True
            node = self.idom.get(node)
        return False

    def strictly_dominates(self, a: int, b: int) -> bool:
        return a != b and self.dominates(a, b)

    def children(self, node: int) -> List[int]:
        return list(self._children.get(node, []))

    def path_to_root(self, node: int) -> List[int]:
        """``node`` and all its (transitive) dominators, root last."""
        out = [node]
        cur = self.idom.get(node)
        while cur is not None:
            out.append(cur)
            cur = self.idom.get(cur)
        return out


def _compute_idom(
    nodes: List[int],
    root: int,
    preds: Dict[int, List[int]],
    rpo: List[int],
) -> Dict[int, Optional[int]]:
    """Cooper–Harvey–Kennedy iterative immediate-dominator algorithm."""
    order_index = {node: i for i, node in enumerate(rpo)}
    idom: Dict[int, Optional[int]] = {node: None for node in nodes}
    idom[root] = root

    def intersect(a: int, b: int) -> int:
        while a != b:
            while order_index[a] > order_index[b]:
                a = idom[a]  # type: ignore[assignment]
            while order_index[b] > order_index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for node in rpo:
            if node == root:
                continue
            new_idom: Optional[int] = None
            for pred in preds.get(node, []):
                if idom.get(pred) is None:
                    continue
                new_idom = pred if new_idom is None else intersect(pred, new_idom)
            if new_idom is not None and idom[node] != new_idom:
                idom[node] = new_idom
                changed = True
    result = {node: (None if node == root else idom[node]) for node in nodes}
    return result


def dominator_tree(cfg: ControlFlowGraph) -> DominatorTree:
    """Dominator tree rooted at the CFG entry (unreachable blocks omitted)."""
    rpo = cfg.reverse_postorder()
    preds = {node: cfg.predecessors(node) for node in rpo}
    idom = _compute_idom(rpo, cfg.entry, preds, rpo)
    return DominatorTree(cfg.entry, idom)


def postdominator_tree(cfg: ControlFlowGraph) -> DominatorTree:
    """Post-dominator tree rooted at the synthetic exit block."""
    # Reverse the graph: preds become succs.  Restrict to blocks that can
    # reach the exit (all can, in verified code, except dead stubs).
    reachable_rev: Set[int] = set()
    stack = [cfg.exit_id]
    while stack:
        node = stack.pop()
        if node in reachable_rev:
            continue
        reachable_rev.add(node)
        stack.extend(cfg.predecessors(node))
    nodes = [n for n in cfg.block_ids() if n in reachable_rev]

    # Reverse postorder of the reversed graph.
    succs_rev = {n: [p for p in cfg.predecessors(n) if p in reachable_rev] for n in nodes}
    seen: Set[int] = set()
    order: List[int] = []

    def dfs(start: int) -> None:
        stack2 = [(start, iter(succs_rev[start]))]
        seen.add(start)
        while stack2:
            node, it = stack2[-1]
            advanced = False
            for nxt in it:
                if nxt not in seen:
                    seen.add(nxt)
                    stack2.append((nxt, iter(succs_rev[nxt])))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack2.pop()

    dfs(cfg.exit_id)
    rpo = list(reversed(order))
    preds_rev = {n: [s for s in cfg.successors(n) if s in reachable_rev] for n in nodes}
    idom = _compute_idom(rpo, cfg.exit_id, preds_rev, rpo)
    return DominatorTree(cfg.exit_id, idom)


def control_dependence(cfg: ControlFlowGraph) -> Dict[int, Set[int]]:
    """Map each block to the set of branch blocks it is control-dependent on.

    Uses the Ferrante–Ottenstein–Warren characterization: for each edge
    ``(a, b)`` where ``b`` does not post-dominate ``a``, every node on the
    post-dominator-tree path from ``b`` up to (but excluding) ``ipdom(a)``
    is control dependent on ``a``.
    """
    pdom = postdominator_tree(cfg)
    deps: Dict[int, Set[int]] = {node: set() for node in cfg.block_ids()}
    for a, b in cfg.edges():
        if b not in pdom.idom and b != pdom.root:
            continue  # b cannot reach exit; ignore
        if pdom.dominates(b, a):
            continue
        stop = pdom.idom.get(a)
        node: Optional[int] = b
        while node is not None and node != stop:
            deps.setdefault(node, set()).add(a)
            node = pdom.idom.get(node)
    return deps
