"""Control-flow graphs: blocks, dominance, loops, the CFG automaton."""

from repro.cfg.automaton import cfg_automaton, edge_alphabet, most_general_trail_regex
from repro.cfg.dominance import (
    DominatorTree,
    control_dependence,
    dominator_tree,
    postdominator_tree,
)
from repro.cfg.graph import Block, ControlFlowGraph, Edge, ParamInfo
from repro.cfg.loops import Loop, innermost_loop, is_reducible, natural_loops

__all__ = [
    "Block",
    "ControlFlowGraph",
    "Edge",
    "ParamInfo",
    "DominatorTree",
    "dominator_tree",
    "postdominator_tree",
    "control_dependence",
    "Loop",
    "natural_loops",
    "innermost_loop",
    "is_reducible",
    "cfg_automaton",
    "edge_alphabet",
    "most_general_trail_regex",
]
