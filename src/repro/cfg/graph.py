"""Control-flow graphs over the register IR.

A :class:`ControlFlowGraph` is the central program representation of this
reproduction (as WALA's CFG was for Blazer): basic blocks of straight-line
IR instructions, each ended by a terminator.  One synthetic *exit* block
(with no instructions and no terminator) is the target of every return;
the CFG automaton and the trails machinery rely on it so the language of
complete executions is prefix-free.

Edges are plain ``(src_block_id, dst_block_id)`` pairs — exactly the
alphabet over which trails (Section 4 of the paper) are defined.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.ir.instr import Branch, Instr, Return, Terminator
from repro.lang import ast

Edge = Tuple[int, int]


@dataclass
class ParamInfo:
    """One formal parameter: its name, type and security level."""

    name: str
    declared: ast.Type
    level: ast.SecLevel

    @property
    def is_secret(self) -> bool:
        return self.level is ast.SecLevel.SECRET


@dataclass
class Block:
    """A basic block: straight-line instructions plus one terminator.

    The synthetic exit block has ``term is None``.
    """

    id: int
    instrs: List[Instr] = field(default_factory=list)
    term: Optional[Terminator] = None

    @property
    def cost(self) -> int:
        """Bytecode instructions charged when executing this block."""
        total = sum(i.weight for i in self.instrs)
        if self.term is not None:
            total += self.term.weight
        return total

    @property
    def is_branch(self) -> bool:
        return isinstance(self.term, Branch)

    def __str__(self) -> str:
        lines = ["b%d:" % self.id]
        lines.extend("    %s  ; w=%d" % (i, i.weight) for i in self.instrs)
        if self.term is not None:
            lines.append("    %s  ; w=%d" % (self.term, self.term.weight))
        else:
            lines.append("    <exit>")
        return "\n".join(lines)


class ControlFlowGraph:
    """CFG of one procedure, with cached predecessor/successor maps."""

    def __init__(
        self,
        name: str,
        params: Sequence[ParamInfo],
        ret: ast.Type,
        blocks: Dict[int, Block],
        entry: int,
        exit_id: int,
    ):
        self.name = name
        self.params = list(params)
        self.ret = ret
        self.blocks = blocks
        self.entry = entry
        self.exit_id = exit_id
        # Register kinds ("int" / "arr") filled in by the lifter; analyses
        # use this to know which registers hold array references.
        self.reg_kinds: Dict[str, str] = {}
        self._succ: Dict[int, List[int]] = {}
        self._pred: Dict[int, List[int]] = {}
        self._rebuild_edges()

    # -- structure ------------------------------------------------------------

    def _rebuild_edges(self) -> None:
        self._succ = {bid: [] for bid in self.blocks}
        self._pred = {bid: [] for bid in self.blocks}
        for bid, block in self.blocks.items():
            if block.term is None:
                continue
            if isinstance(block.term, Return):
                succs: List[int] = [self.exit_id]
            else:
                # Deduplicate (a degenerate branch can target one block twice).
                succs = list(dict.fromkeys(block.term.successors()))
            for succ in succs:
                self._succ[bid].append(succ)
                self._pred[succ].append(bid)

    def successors(self, bid: int) -> List[int]:
        return list(self._succ[bid])

    def predecessors(self, bid: int) -> List[int]:
        return list(self._pred[bid])

    def edges(self) -> List[Edge]:
        return [(b, s) for b in sorted(self._succ) for s in self._succ[b]]

    def block_ids(self) -> List[int]:
        return sorted(self.blocks)

    def branch_blocks(self) -> List[int]:
        """Blocks with two distinct successors (candidate split points)."""
        return [
            bid
            for bid in self.block_ids()
            if self.blocks[bid].is_branch and len(self._succ[bid]) == 2
        ]

    def branch_edges(self, bid: int) -> Tuple[Edge, Edge]:
        """The (taken, not-taken) edges of branch block ``bid``."""
        block = self.blocks[bid]
        if not isinstance(block.term, Branch):
            raise ValueError("b%d is not a branch block" % bid)
        return (bid, block.term.on_true), (bid, block.term.on_false)

    @property
    def size(self) -> int:
        """Number of basic blocks (the "Size" column of Table 1)."""
        return len(self.blocks)

    # -- traversal --------------------------------------------------------------

    def reverse_postorder(self) -> List[int]:
        """Blocks in reverse postorder from the entry (good fixpoint order)."""
        seen = set()
        order: List[int] = []

        def visit(bid: int) -> None:
            stack = [(bid, iter(self._succ[bid]))]
            seen.add(bid)
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(self._succ[succ])))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()

        visit(self.entry)
        return list(reversed(order))

    def reachable(self) -> List[int]:
        return self.reverse_postorder()

    def iter_instrs(self) -> Iterator[Tuple[int, Instr]]:
        for bid in self.block_ids():
            for instr in self.blocks[bid].instrs:
                yield bid, instr

    def param(self, name: str) -> ParamInfo:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(name)

    def secret_params(self) -> List[ParamInfo]:
        return [p for p in self.params if p.is_secret]

    def public_params(self) -> List[ParamInfo]:
        return [p for p in self.params if not p.is_secret]

    def __str__(self) -> str:
        header = "cfg %s(%s): %s  entry=b%d exit=b%d" % (
            self.name,
            ", ".join("%s %s: %s" % (p.level.value, p.name, p.declared) for p in self.params),
            self.ret,
            self.entry,
            self.exit_id,
        )
        parts = [header]
        parts.extend(str(self.blocks[bid]) for bid in self.block_ids())
        return "\n".join(parts)
