"""Natural-loop detection and loop nesting.

The bound analysis (Section 5 of the paper) needs to know where the loops
are, which blocks belong to each loop, and how loops nest, so that it can
compute per-loop iteration bounds and multiply costs through the nest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.cfg.dominance import dominator_tree
from repro.cfg.graph import ControlFlowGraph, Edge


@dataclass
class Loop:
    """One natural loop: header, body blocks (header included), exits."""

    header: int
    body: Set[int] = field(default_factory=set)
    back_edges: List[Edge] = field(default_factory=list)
    parent: Optional["Loop"] = None

    @property
    def depth(self) -> int:
        depth, cur = 0, self.parent
        while cur is not None:
            depth += 1
            cur = cur.parent
        return depth

    def exit_edges(self, cfg: ControlFlowGraph) -> List[Edge]:
        """Edges leaving the loop body."""
        out = []
        for node in sorted(self.body):
            for succ in cfg.successors(node):
                if succ not in self.body:
                    out.append((node, succ))
        return out

    def __str__(self) -> str:
        return "loop(header=b%d, body=%s)" % (self.header, sorted(self.body))


def natural_loops(cfg: ControlFlowGraph) -> List[Loop]:
    """All natural loops, merged per header, outermost first.

    A back edge is an edge ``n -> h`` where ``h`` dominates ``n``.  The
    natural loop of the back edge is ``h`` plus all nodes that reach ``n``
    without passing through ``h``.  Loops sharing a header are merged
    (standard practice; our front-end never produces such CFGs, but
    hand-written bytecode can).
    """
    dom = dominator_tree(cfg)
    reachable = set(cfg.reverse_postorder())
    loops_by_header: Dict[int, Loop] = {}
    for a, b in cfg.edges():
        if a not in reachable:
            continue
        if dom.dominates(b, a):
            loop = loops_by_header.setdefault(b, Loop(header=b, body={b}))
            loop.back_edges.append((a, b))
            # Walk predecessors backwards from the latch.
            stack = [a]
            while stack:
                node = stack.pop()
                if node in loop.body:
                    continue
                loop.body.add(node)
                stack.extend(p for p in cfg.predecessors(node) if p in reachable)
    loops = list(loops_by_header.values())
    # Establish nesting: the parent of L is the smallest loop strictly
    # containing L's header among loops with a different header.
    for loop in loops:
        candidates = [
            other
            for other in loops
            if other is not loop
            and loop.header in other.body
            and loop.body <= other.body
        ]
        if candidates:
            loop.parent = min(candidates, key=lambda l: len(l.body))
    loops.sort(key=lambda l: (l.depth, l.header))
    return loops


def loop_of_header(loops: List[Loop], header: int) -> Optional[Loop]:
    for loop in loops:
        if loop.header == header:
            return loop
    return None


def innermost_loop(loops: List[Loop], block: int) -> Optional[Loop]:
    """The innermost loop containing ``block``, if any."""
    best: Optional[Loop] = None
    for loop in loops:
        if block in loop.body and (best is None or len(loop.body) < len(best.body)):
            best = loop
    return best


def is_reducible(cfg: ControlFlowGraph) -> bool:
    """Check reducibility: every retreating edge is a back edge.

    Our compiler only emits reducible CFGs; the check guards hand-written
    bytecode before the loop-based bound analysis runs.
    """
    dom = dominator_tree(cfg)
    order = cfg.reverse_postorder()
    position = {node: i for i, node in enumerate(order)}
    for a, b in cfg.edges():
        if a in position and b in position and position[b] <= position[a]:
            if not dom.dominates(b, a):
                return False
    return True
