"""The abstract-interpretation fixpoint engine with a trail oracle.

Section 5 of the paper: *"We equip a standard abstract interpreter with
the ability to consult an oracle (the synthesized trails) to decide which
CFG arcs to follow, thus deriving partition-specific invariants."*

The oracle is realized as a product construction: analysis states live on
nodes ``(block, q)`` of the product of the CFG with the trail DFA.  A CFG
edge may only be followed if the DFA has a transition on that edge symbol
from the current ``q`` — executions outside the trail are simply never
explored, which is exactly how trail restriction sharpens invariants
(e.g. proving the vulnerable-looking path of ``loopAndBranch`` infeasible).

The engine is also reused by the bound analysis for per-loop transition
relations: callers can supply arbitrary initial states, restrict the
explored blocks, and *collect* (rather than propagate) the states flowing
along chosen edges (the loop back edges).

Fixpoint machinery: chaotic iteration in reverse postorder, delayed
widening at the targets of retreating edges, followed by a bounded number
of narrowing (decreasing) passes to recover precision lost to widening.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.absint.transfer import TransferFunctions
from repro.automata.dfa import DFA
from repro.cfg.graph import ControlFlowGraph, Edge
from repro.domains.base import AbstractState, Domain
from repro.obs.trace import span as trace_span
from repro.resilience import faults
from repro.util.errors import AnalysisError

# A node of the product graph: (CFG block id, trail-DFA state).
# The DFA state is -1 when the analysis runs unrestricted.
Node = Tuple[int, int]

NO_TRAIL_STATE = -1

CollectPred = Callable[[Node, Node, Edge], bool]


@dataclass
class ProductEdgeInfo:
    src: Node
    dst: Node
    cfg_edge: Edge
    branch_taken: Optional[bool]  # None for non-branch edges


@dataclass
class AnalysisResult:
    """Invariants on product nodes plus any collected edge states."""

    cfg: ControlFlowGraph
    domain: Domain
    invariants: Dict[Node, AbstractState] = field(default_factory=dict)
    collected: Dict[Tuple[Node, Node], AbstractState] = field(default_factory=dict)

    def nodes_of_block(self, block_id: int) -> List[Node]:
        return [n for n in self.invariants if n[0] == block_id]

    def block_invariant(self, block_id: int) -> AbstractState:
        """Join of the invariants of every product node of ``block_id``."""
        nodes = self.nodes_of_block(block_id)
        if not nodes:
            return self.domain.bottom()
        state = self.invariants[nodes[0]]
        for node in nodes[1:]:
            state = state.join(self.invariants[node])
        return state

    def collected_join(self) -> AbstractState:
        state: AbstractState = self.domain.bottom()
        for other in self.collected.values():
            state = state.join(other)
        return state

    def reachable_blocks(self) -> Set[int]:
        return {
            node[0]
            for node, state in self.invariants.items()
            if not state.is_bottom()
        }


class Engine:
    def __init__(
        self,
        cfg: ControlFlowGraph,
        domain: Domain,
        trail_dfa: Optional[DFA] = None,
        widening_delay: int = 2,
        narrowing_passes: int = 2,
        max_iterations: int = 10_000,
        summaries=None,
        budget=None,
    ):
        self._cfg = cfg
        self._domain = domain
        self._dfa = trail_dfa
        self._transfer = TransferFunctions(cfg, summaries)
        self._widening_delay = widening_delay
        self._narrowing_passes = narrowing_passes
        self._max_iterations = max_iterations
        # Optional cooperative Budget (repro.resilience.budget): checked
        # once per fixpoint step; None (the default and the whole seed
        # path) costs a single comparison per iteration.
        self._budget = budget

    # -- product graph ---------------------------------------------------------

    def _initial_node(self) -> Node:
        q0 = self._dfa.initial if self._dfa is not None else NO_TRAIL_STATE
        return (self._cfg.entry, q0)

    def _product_successors(self, node: Node) -> List[ProductEdgeInfo]:
        block_id, q = node
        block = self._cfg.blocks[block_id]
        if block.term is None:
            return []
        out: List[ProductEdgeInfo] = []
        succs = self._cfg.successors(block_id)
        from repro.ir.instr import Branch

        is_real_branch = isinstance(block.term, Branch) and len(succs) == 2
        for succ in succs:
            cfg_edge = (block_id, succ)
            if self._dfa is not None:
                q_next = self._dfa.step(q, cfg_edge)
                if q_next is None:
                    continue  # the trail forbids this arc
            else:
                q_next = NO_TRAIL_STATE
            taken: Optional[bool] = None
            if is_real_branch:
                taken = succ == block.term.on_true  # type: ignore[union-attr]
            out.append(ProductEdgeInfo(node, (succ, q_next), cfg_edge, taken))
        return out

    def _explore(
        self, roots: Sequence[Node], restrict: Optional[Set[Node]]
    ) -> Tuple[List[Node], Dict[Node, List[ProductEdgeInfo]]]:
        """Reachable product subgraph and its adjacency.

        ``restrict``, when given, is a set of *product nodes* the
        exploration may not leave (used by per-loop analyses).
        """
        adjacency: Dict[Node, List[ProductEdgeInfo]] = {}
        seen: Set[Node] = set()
        stack = list(roots)
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            edges = [
                e
                for e in self._product_successors(node)
                if restrict is None or e.dst in restrict
            ]
            adjacency[node] = edges
            for e in edges:
                if e.dst not in seen:
                    stack.append(e.dst)
        return sorted(seen), adjacency

    @staticmethod
    def _rpo(
        roots: Sequence[Node], adjacency: Dict[Node, List[ProductEdgeInfo]]
    ) -> List[Node]:
        seen: Set[Node] = set()
        order: List[Node] = []
        for root in roots:
            if root in seen:
                continue
            stack: List[Tuple[Node, int]] = [(root, 0)]
            seen.add(root)
            while stack:
                node, idx = stack.pop()
                edges = adjacency.get(node, [])
                if idx < len(edges):
                    stack.append((node, idx + 1))
                    dst = edges[idx].dst
                    if dst not in seen:
                        seen.add(dst)
                        stack.append((dst, 0))
                else:
                    order.append(node)
        return list(reversed(order))

    # -- the fixpoint ---------------------------------------------------------------

    def analyze(
        self,
        initial: Optional[Dict[Node, AbstractState]] = None,
        restrict: Optional[Set[Node]] = None,
        collect: Optional[CollectPred] = None,
    ) -> AnalysisResult:
        domain = self._domain
        if initial is None:
            entry_state = self._transfer.entry_state(domain.top())
            initial = {self._initial_node(): entry_state}
        roots = sorted(initial)
        _, adjacency = self._explore(roots, restrict)
        order = self._rpo(roots, adjacency)
        position = {node: i for i, node in enumerate(order)}
        widen_at: Set[Node] = set()
        for src, edges in adjacency.items():
            for e in edges:
                if (
                    e.dst in position
                    and src in position
                    and position[e.dst] <= position[src]
                ):
                    widen_at.add(e.dst)

        invariants: Dict[Node, AbstractState] = {
            node: initial.get(node, domain.bottom()) for node in order
        }
        result_collected: Dict[Tuple[Node, Node], AbstractState] = {}
        visits: Dict[Node, int] = {node: 0 for node in order}

        worklist: List[Node] = list(order)
        in_worklist: Set[Node] = set(worklist)
        iterations = 0
        with trace_span(
            "engine.widen", cfg=self._cfg.name, nodes=len(order)
        ) as widen_span:
            while worklist:
                iterations += 1
                if iterations > self._max_iterations:
                    raise AnalysisError(
                        "abstract interpretation did not converge on %s"
                        % self._cfg.name
                    )
                if self._budget is not None:
                    self._budget.step("engine.step")
                faults.maybe_fire("engine.step", key=self._cfg.name)
                # Pop the node earliest in RPO for near-optimal iteration order.
                worklist.sort(key=lambda n: position.get(n, 0))
                node = worklist.pop(0)
                in_worklist.discard(node)
                state = invariants[node]
                if state.is_bottom():
                    continue
                for e, out_state in self._edge_states(node, state, adjacency):
                    if collect is not None and collect(e.src, e.dst, e.cfg_edge):
                        key = (e.src, e.dst)
                        prev = result_collected.get(key, domain.bottom())
                        result_collected[key] = prev.join(out_state)
                        continue
                    if out_state.is_bottom():
                        continue
                    old = invariants.get(e.dst, domain.bottom())
                    if out_state.leq(old):
                        continue
                    joined = old.join(out_state)
                    visits[e.dst] = visits.get(e.dst, 0) + 1
                    if e.dst in widen_at and visits[e.dst] > self._widening_delay:
                        joined = old.widen(joined)
                    invariants[e.dst] = joined
                    if e.dst not in in_worklist:
                        worklist.append(e.dst)
                        in_worklist.add(e.dst)
            widen_span.annotate(iterations=iterations)

        # Narrowing: recompute joins without widening, a fixed number of
        # passes (each pass is sound: transfer is monotone and we only
        # shrink toward a post-fixpoint).
        with trace_span(
            "engine.narrow", cfg=self._cfg.name, passes=self._narrowing_passes
        ):
            for _ in range(self._narrowing_passes):
                changed = False
                incoming: Dict[Node, AbstractState] = {
                    node: initial.get(node, domain.bottom()) for node in order
                }
                for node in order:
                    if self._budget is not None:
                        self._budget.step("engine.step")
                    state = invariants[node]
                    if state.is_bottom():
                        continue
                    for e, out_state in self._edge_states(node, state, adjacency):
                        if collect is not None and collect(e.src, e.dst, e.cfg_edge):
                            key = (e.src, e.dst)
                            prev = result_collected.get(key, domain.bottom())
                            result_collected[key] = prev.join(out_state)
                            continue
                        prev_in = incoming.get(e.dst, domain.bottom())
                        incoming[e.dst] = prev_in.join(out_state)
                for node in order:
                    new_state = incoming[node]
                    # Each narrowing iterate initial ∪ F(X) of a sound X is
                    # itself sound, so plain assignment is safe; the pass count
                    # bounds any oscillation.
                    if not (
                        new_state.leq(invariants[node])
                        and invariants[node].leq(new_state)
                    ):
                        changed = True
                    invariants[node] = new_state
                if not changed:
                    break

        return AnalysisResult(
            cfg=self._cfg,
            domain=self._domain,
            invariants=invariants,
            collected=result_collected,
        )

    # -- helpers -----------------------------------------------------------------------

    def product_graph(
        self,
        roots: Optional[Sequence[Node]] = None,
        restrict: Optional[Set[Node]] = None,
    ) -> Dict[Node, List[ProductEdgeInfo]]:
        """The reachable product adjacency (for the bound analysis)."""
        if roots is None:
            roots = [self._initial_node()]
        _, adjacency = self._explore(list(roots), restrict)
        return adjacency

    def initial_node(self) -> Node:
        return self._initial_node()

    def edge_out_states(
        self, node: Node, state: AbstractState
    ) -> List[Tuple[ProductEdgeInfo, AbstractState]]:
        """The states flowing out of ``node`` given its invariant."""
        adjacency = {node: self._product_successors(node)}
        return self._edge_states(node, state, adjacency)

    def _edge_states(
        self,
        node: Node,
        state: AbstractState,
        adjacency: Dict[Node, List[ProductEdgeInfo]],
    ) -> List[Tuple[ProductEdgeInfo, AbstractState]]:
        out_state, conds = self._transfer.block_effect(node[0], state)
        results = []
        for e in adjacency.get(node, []):
            edge_state = out_state
            if e.branch_taken is not None and not edge_state.is_bottom():
                cons = self._transfer.branch_constraint(node[0], e.branch_taken, conds)
                if cons is not None:
                    edge_state = edge_state.guard(cons)
            results.append((e, edge_state))
        return results
