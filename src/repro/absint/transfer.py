"""Abstract transfer functions: register IR → numeric-domain operations.

Bridges the IR and the numeric domains:

* integer registers map to domain variables of the same name;
* array registers are tracked through *length variables* ``r#len``
  (array lengths are what the paper's bounds are expressed in, e.g.
  ``23*g.len + 10``); array contents are not tracked numerically;
* comparison results are not encoded relationally — instead the engine
  remembers, per block, which register holds which comparison (a *cond
  def*), and refines the branch successors with the comparison (or its
  integer negation).  This is how the "off-the-shelf abstract
  interpreter" of the paper regains path sensitivity at branches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.cfg.graph import ControlFlowGraph
from repro.domains.base import AbstractState
from repro.domains.linexpr import LinCons, LinExpr
from repro.ir import instr as ir
from repro.perf import runtime


def len_var(reg_name: str) -> str:
    """The domain variable tracking the length of array register ``reg``."""
    return reg_name + "#len"


def operand_expr(operand: ir.Operand, cfg: ControlFlowGraph) -> Optional[LinExpr]:
    """The linear expression of a numeric operand, if representable."""
    if isinstance(operand, ir.ConstInt):
        return LinExpr.constant(operand.value)
    if isinstance(operand, ir.Reg):
        if cfg.reg_kinds.get(operand.name) == "arr":
            return None
        return LinExpr.var(operand.name)
    return None


@dataclass(frozen=True)
class CondDef:
    """``reg`` holds the boolean of ``a op b`` (possibly negated)."""

    op: ir.CmpOp
    a: ir.Operand
    b: ir.Operand

    def negated(self) -> "CondDef":
        return CondDef(self.op.negate(), self.a, self.b)

    def constraint(self, cfg: ControlFlowGraph) -> Optional[LinCons]:
        """The constraint that holds when the condition is true."""
        ea = operand_expr(self.a, cfg)
        eb = operand_expr(self.b, cfg)
        if ea is None or eb is None:
            return None
        op = self.op
        if op is ir.CmpOp.LT:
            return LinCons.lt(ea, eb)
        if op is ir.CmpOp.LE:
            return LinCons.le(ea, eb)
        if op is ir.CmpOp.GT:
            return LinCons.gt(ea, eb)
        if op is ir.CmpOp.GE:
            return LinCons.ge(ea, eb)
        if op is ir.CmpOp.EQ:
            return LinCons.eq(ea, eb)
        # NE is a disjunction; not representable as one constraint.
        return None


CondEnv = Dict[str, CondDef]


class TransferFunctions:
    """Instruction-wise abstract semantics over any numeric domain.

    ``summaries`` (optional) supplies extern return-value facts: numeric
    ranges and array-result lengths, applied after havocing a call's
    destination.
    """

    def __init__(self, cfg: ControlFlowGraph, summaries=None):
        self._cfg = cfg
        self._summaries = summaries

    # -- blocks --------------------------------------------------------------

    def block_effect(
        self, block_id: int, state: AbstractState
    ) -> Tuple[AbstractState, CondEnv]:
        """Run the straight-line part of a block; returns the out-state and
        the cond defs live at the terminator.

        The result is a pure function of (block, entry state, summaries)
        and is independent of which trail DFA the engine is running, so
        it is memoized *on the CFG*: every trail of one procedure —
        including all the sibling leaves of a refinement split — shares
        one table.  Requires the domain state to expose ``cache_key()``;
        domains without it fall through uncached.
        """
        if runtime.enabled():
            key_fn = getattr(state, "cache_key", None)
            if key_fn is not None:
                memo = runtime.cfg_memo(self._cfg).setdefault("transfer", {})
                if len(memo) > runtime.TABLE_LIMIT:
                    memo.clear()
                key = (block_id, key_fn())
                entry = memo.get(key)
                # Summary registries are compared by identity: a different
                # registry can change call effects, so it must not share
                # cached results.
                if entry is not None and entry[0] is self._summaries:
                    runtime.STATS.hit("transfer")
                    out, conds = entry[1]
                    return out, dict(conds)
                runtime.STATS.miss("transfer")
                result = self._block_effect(block_id, state)
                memo[key] = (self._summaries, result)
                return result[0], dict(result[1])
        return self._block_effect(block_id, state)

    def _block_effect(
        self, block_id: int, state: AbstractState
    ) -> Tuple[AbstractState, CondEnv]:
        conds: CondEnv = {}
        for instr in self._cfg.blocks[block_id].instrs:
            state = self.step(instr, state, conds)
            if state.is_bottom():
                break
        return state, conds

    def branch_constraint(
        self, block_id: int, taken: bool, conds: CondEnv
    ) -> Optional[LinCons]:
        """The refinement constraint for leaving ``block_id`` by the taken /
        not-taken branch edge, if derivable."""
        term = self._cfg.blocks[block_id].term
        if not isinstance(term, ir.Branch):
            return None
        cond = term.cond
        if isinstance(cond, ir.ConstInt):
            # Constant branches: the dead edge is refined to bottom.
            feasible = (cond.value != 0) == taken
            if feasible:
                return None
            return LinCons.le(LinExpr.constant(1), 0)  # unsatisfiable
        if not isinstance(cond, ir.Reg):
            return None
        cond_def = conds.get(cond.name)
        if cond_def is None:
            # Branching on a plain 0/1 register: v != 0 / v == 0.
            if self._cfg.reg_kinds.get(cond.name) == "arr":
                return None
            var = LinExpr.var(cond.name)
            return LinCons.ge(var, 1) if taken else LinCons.eq(var, 0)
        effective = cond_def if taken else cond_def.negated()
        return effective.constraint(self._cfg)

    # -- instructions ---------------------------------------------------------

    def step(
        self, instr: ir.Instr, state: AbstractState, conds: CondEnv
    ) -> AbstractState:
        cfg = self._cfg
        if isinstance(instr, ir.Assign):
            conds.pop(instr.dst.name, None)
            if isinstance(instr.src, ir.Reg) and instr.src.name in conds:
                conds[instr.dst.name] = conds[instr.src.name]
            if cfg.reg_kinds.get(instr.dst.name) == "arr":
                return self._assign_array(instr.dst.name, instr.src, state)
            return state.assign(instr.dst.name, operand_expr(instr.src, cfg))
        if isinstance(instr, ir.BinInstr):
            conds.pop(instr.dst.name, None)
            return state.assign(instr.dst.name, self._bin_expr(instr))
        if isinstance(instr, ir.CmpInstr):
            conds[instr.dst.name] = CondDef(instr.op, instr.a, instr.b)
            state = state.assign(instr.dst.name, None)
            var = LinExpr.var(instr.dst.name)
            return state.guard(LinCons.ge(var, 0)).guard(LinCons.le(var, 1))
        if isinstance(instr, ir.UnInstr):
            if instr.op == "neg":
                conds.pop(instr.dst.name, None)
                src = operand_expr(instr.a, cfg)
                return state.assign(instr.dst.name, None if src is None else -src)
            # not: flips a cond def if the operand has one.
            if isinstance(instr.a, ir.Reg) and instr.a.name in conds:
                conds[instr.dst.name] = conds[instr.a.name].negated()
            else:
                conds.pop(instr.dst.name, None)
            state = state.assign(instr.dst.name, None)
            var = LinExpr.var(instr.dst.name)
            return state.guard(LinCons.ge(var, 0)).guard(LinCons.le(var, 1))
        if isinstance(instr, ir.ALoad):
            conds.pop(instr.dst.name, None)
            return state.assign(instr.dst.name, None)
        if isinstance(instr, ir.AStore):
            return state  # contents are not tracked
        if isinstance(instr, ir.NewArr):
            conds.pop(instr.dst.name, None)
            size = operand_expr(instr.size, cfg)
            state = state.assign(len_var(instr.dst.name), size)
            return state.guard(LinCons.ge(LinExpr.var(len_var(instr.dst.name)), 0))
        if isinstance(instr, ir.ArrLen):
            conds.pop(instr.dst.name, None)
            if isinstance(instr.arr, ir.Reg):
                state = state.assign(
                    instr.dst.name, LinExpr.var(len_var(instr.arr.name))
                )
            elif isinstance(instr.arr, ir.ConstArr):
                state = state.assign(
                    instr.dst.name, LinExpr.constant(len(instr.arr.values))
                )
            else:
                state = state.assign(instr.dst.name, None)
            return state.guard(LinCons.ge(LinExpr.var(instr.dst.name), 0))
        if isinstance(instr, ir.CallInstr):
            if instr.dst is not None:
                conds.pop(instr.dst.name, None)
                state = state.assign(instr.dst.name, None)
                summary = (
                    self._summaries.lookup(instr.callee)
                    if self._summaries is not None
                    else None
                )
                if cfg.reg_kinds.get(instr.dst.name) == "arr":
                    dst_len = LinExpr.var(len_var(instr.dst.name))
                    if summary is not None and summary.ret_len is not None:
                        state = state.assign(
                            len_var(instr.dst.name),
                            LinExpr.constant(summary.ret_len),
                        )
                    else:
                        state = state.assign(len_var(instr.dst.name), None)
                        state = state.guard(LinCons.ge(dst_len, 0))
                else:
                    dst = LinExpr.var(instr.dst.name)
                    if summary is not None and summary.ret_lo is not None:
                        state = state.guard(LinCons.ge(dst, summary.ret_lo))
                    if summary is not None and summary.ret_hi is not None:
                        state = state.guard(LinCons.le(dst, summary.ret_hi))
            # Array lengths of arguments are preserved (Java arrays are
            # fixed-size); contents are untracked, so nothing else changes.
            return state
        raise TypeError("unknown IR instruction %r" % type(instr).__name__)

    # -- helpers ----------------------------------------------------------------

    def _assign_array(
        self, dst: str, src: ir.Operand, state: AbstractState
    ) -> AbstractState:
        """Array reference copy: transfer the length variable."""
        if isinstance(src, ir.Reg):
            return state.assign(len_var(dst), LinExpr.var(len_var(src.name)))
        if isinstance(src, ir.ConstArr):
            return state.assign(len_var(dst), LinExpr.constant(len(src.values)))
        # null: the length is undefined; any dereference traps anyway.
        return state.assign(len_var(dst), None)

    def _bin_expr(self, instr: ir.BinInstr) -> Optional[LinExpr]:
        cfg = self._cfg
        ea = operand_expr(instr.a, cfg)
        eb = operand_expr(instr.b, cfg)
        if ea is None or eb is None:
            return None
        if instr.op is ir.ArithOp.ADD:
            return ea + eb
        if instr.op is ir.ArithOp.SUB:
            return ea - eb
        if instr.op is ir.ArithOp.MUL:
            if ea.is_constant:
                return eb * ea.const
            if eb.is_constant:
                return ea * eb.const
            return None
        # DIV/MOD: not affine; havoc (sound).
        return None

    def rewrite_to_block_entry(
        self, block_id: int, expr: LinExpr
    ) -> Optional[LinExpr]:
        """Re-express ``expr`` (valid at the block's terminator) in terms
        of the values variables had at *block entry*, by substituting the
        block's assignments backwards.

        Needed by the bound analysis: a loop guard like ``i < t0`` with
        ``t0 = len(guess)`` computed in the header block must become
        ``i < guess#len`` so the ranking expression survives seeding
        (the temp is dead across the back edge).  Returns None when a
        non-affine definition (array load, call, division) feeds the
        expression.
        """
        cfg = self._cfg
        for instr in reversed(cfg.blocks[block_id].instrs):
            defs = instr.defs()
            if not defs:
                continue
            dst = defs[0].name
            if dst not in expr.coeffs:
                continue
            rhs: Optional[LinExpr] = None
            if isinstance(instr, ir.Assign):
                rhs = operand_expr(instr.src, cfg)
                if rhs is None and isinstance(instr.src, ir.Reg):
                    # Array move: irrelevant for numeric expressions.
                    rhs = None
            elif isinstance(instr, ir.BinInstr):
                rhs = self._bin_expr(instr)
            elif isinstance(instr, ir.ArrLen):
                if isinstance(instr.arr, ir.Reg):
                    rhs = LinExpr.var(len_var(instr.arr.name))
                elif isinstance(instr.arr, ir.ConstArr):
                    rhs = LinExpr.constant(len(instr.arr.values))
            elif isinstance(instr, ir.UnInstr) and instr.op == "neg":
                src = operand_expr(instr.a, cfg)
                rhs = None if src is None else -src
            if rhs is None:
                return None
            expr = expr.substitute(dst, rhs)
        return expr

    def entry_state(self, state: AbstractState) -> AbstractState:
        """Constrain the entry: array lengths and unsigned/boolean
        parameters are non-negative (booleans also at most 1)."""
        from repro.lang import ast

        for param in self._cfg.params:
            if param.declared.is_array:
                state = state.guard(LinCons.ge(LinExpr.var(len_var(param.name)), 0))
            elif param.declared.base is ast.BaseType.UINT:
                state = state.guard(LinCons.ge(LinExpr.var(param.name), 0))
            elif param.declared.base is ast.BaseType.BOOL:
                state = state.guard(LinCons.ge(LinExpr.var(param.name), 0))
                state = state.guard(LinCons.le(LinExpr.var(param.name), 1))
        return state
