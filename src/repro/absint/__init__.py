"""Trail-restricted abstract interpretation."""

from repro.absint.engine import AnalysisResult, Engine, Node, ProductEdgeInfo
from repro.absint.transfer import CondDef, TransferFunctions, len_var, operand_expr

__all__ = [
    "Engine",
    "AnalysisResult",
    "Node",
    "ProductEdgeInfo",
    "TransferFunctions",
    "CondDef",
    "len_var",
    "operand_expr",
]
