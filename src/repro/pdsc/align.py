"""Alignment policies and their counterexample-guided refinement.

PDSC's search space is the set of *composition functions* (CAV'19): a
scheduling policy that says, at every pair node ``(b1, b2)``, which
copy advances.  Soundness never depends on the choice — any policy
covers every pair of terminating runs, because each copy only ever
moves along its own CFG and a copy at the exit always yields to the
other — so refinement is free to explore: a bad alignment costs
precision, never correctness.

The policies, in the order the refinement loop proposes them:

``lockstep``
    Both copies advance one block per step.  Proves everything whose
    copies stay phase-synchronized (equal-low control flow, balanced
    branches): the decisive improvement over the eager baseline, which
    runs copy 1 to completion first and loses the counters' correlation
    at the first widened loop.

``catchup``
    When the copies desynchronize (``b1 != b2``), only the copy at the
    *earlier* block in reverse-postorder advances, until the pair
    re-synchronizes.  Re-aligns copies that lockstep drove apart
    (unbalanced conditionals, skipped loops) and keeps the explored
    pair space near the diagonal — which also rescues programs whose
    lockstep product blows the pair budget.

per-node exceptions
    Later rounds flip the catch-up direction at individual desynchrony
    nodes taken from the abstract counterexample, deepest mismatch
    first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.cfg.graph import ControlFlowGraph
from repro.pdsc.pairing import PairNode

# Scheduling decisions.
BOTH = "both"
LEFT = "left"
RIGHT = "right"

_UNREACHABLE_RANK = 1 << 30


def block_ranks(cfg: ControlFlowGraph) -> Dict[int, int]:
    """Reverse-postorder index per block — the program-order measure the
    catch-up policy advances the *smaller* of."""
    return {block: index for index, block in enumerate(cfg.reverse_postorder())}


@dataclass(frozen=True)
class AlignmentPolicy:
    """One composition function: a mode plus per-node exceptions.

    Immutable and deterministic — the CEGAR loop replaces the policy
    wholesale each round, and equal policies always schedule equal
    traces, so a verification outcome is a pure function of
    ``(cfg, domain, policy, budgets)``.
    """

    mode: str = "lockstep"  # "lockstep" | "catchup"
    exceptions: Tuple[Tuple[PairNode, str], ...] = ()
    _index: Dict[PairNode, str] = field(
        init=False, repr=False, compare=False, hash=False, default=None  # type: ignore[assignment]
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "_index", dict(self.exceptions))

    @staticmethod
    def lockstep() -> "AlignmentPolicy":
        return AlignmentPolicy(mode="lockstep")

    @staticmethod
    def catchup(
        exceptions: Tuple[Tuple[PairNode, str], ...] = ()
    ) -> "AlignmentPolicy":
        return AlignmentPolicy(mode="catchup", exceptions=exceptions)

    def describe(self) -> str:
        if not self.exceptions:
            return self.mode
        return "%s+%d flip(s)" % (self.mode, len(self.exceptions))

    def decide(
        self, node: PairNode, ranks: Dict[int, int], exit_id: int
    ) -> str:
        """Which copy moves at ``node``.  The exit overrides come first:
        a finished copy never stutters the other forever, which is the
        progress half of the any-policy-is-sound argument."""
        b1, b2 = node
        if b1 == exit_id:
            return RIGHT
        if b2 == exit_id:
            return LEFT
        override = self._index.get(node)
        if override is not None:
            return override
        if self.mode == "lockstep" or b1 == b2:
            return BOTH
        r1 = ranks.get(b1, _UNREACHABLE_RANK)
        r2 = ranks.get(b2, _UNREACHABLE_RANK)
        if r1 == r2:
            return BOTH
        return LEFT if r1 < r2 else RIGHT


@dataclass(frozen=True)
class AbstractCex:
    """Why one fixpoint round failed to prove the property.

    ``desync`` lists the desynchronized pair nodes (``b1 != b2``) the
    round visited, in first-visit order, each with the scheduling
    decision the failing policy made there — the property-directed part
    of the refinement: these are exactly the points where the alignment
    let the copies drift, ordered by when the drift first appeared.
    """

    reason: str  # "wide-gap" | "pair-budget"
    desync: Tuple[Tuple[PairNode, str], ...] = ()
    gap_lo: Optional[int] = None
    gap_hi: Optional[int] = None

    def render(self) -> str:
        gap = "[%s, %s]" % (self.gap_lo, self.gap_hi)
        return "%s: gap %s, %d desync node(s)" % (
            self.reason,
            gap,
            len(self.desync),
        )


def refine_policy(
    policy: AlignmentPolicy, cex: Optional[AbstractCex]
) -> Optional[AlignmentPolicy]:
    """Propose the next alignment from a failed round, or ``None`` when
    the (finite, deterministic) proposal sequence is spent.

    Round 1 abandons lockstep for the catch-up realignment — the big
    qualitative move, justified whenever the counterexample shows any
    desynchronization at all (and unconditionally on a pair-budget
    blowup, which catch-up's near-diagonal exploration shrinks).  Later
    rounds flip the catch-up direction at the first not-yet-flipped
    desynchrony node of the latest counterexample.
    """
    if cex is None:
        return None
    if policy.mode == "lockstep":
        return AlignmentPolicy.catchup(exceptions=policy.exceptions)
    flipped = dict(policy.exceptions)
    for node, decision in cex.desync:
        if node in flipped or decision not in (LEFT, RIGHT):
            continue
        flipped[node] = RIGHT if decision == LEFT else LEFT
        return AlignmentPolicy.catchup(
            exceptions=tuple(sorted(flipped.items()))
        )
    return None
