"""Shared pair-program semantics of the self-composition family.

Self-composition reduces the 2-safety timing-contrast property to a
1-safety property of two renamed copies of the procedure running over a
joint state.  Everything that is common to the *eager* baseline
(:mod:`repro.core.selfcomp`) and the *property-directed* checker
(:mod:`repro.pdsc.checker`) lives here:

* copy 2's registers (and array-length shadows) are renamed with the
  ``$2`` suffix, so both copies share one abstract state over a
  disjoint union of variables;
* the entry state equates the copies' *public* inputs (low-equivalent
  pairs) and leaves secrets unconstrained;
* each copy accumulates its own instruction counter (``#cost`` /
  ``#cost$2``); the property under verification is a bound on their
  difference at the paired exit.

The two engines differ only in *scheduling* — which copy advances at a
given pair node — which is exactly the alignment the PDSC search is
about, so scheduling stays out of this module on purpose.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.absint.transfer import TransferFunctions, len_var
from repro.bounds.summaries import SummaryRegistry, default_summaries
from repro.cfg.graph import ControlFlowGraph
from repro.domains.base import AbstractState, Domain
from repro.domains.linexpr import LinCons, LinExpr
from repro.ir import instr as ir
from repro.lang import ast
from repro.util.errors import AnalysisError

SUFFIX = "$2"

# The cost counters: fresh variables incremented by block costs.
COST1 = "#cost"
COST2 = "#cost" + SUFFIX

# Scratch variables for nondeterministic call-cost deltas (one per copy).
_CALL1 = "#call"
_CALL2 = "#call" + SUFFIX

PairNode = Tuple[int, int]  # (block of copy 1, block of copy 2)


def rename_map(cfg: ControlFlowGraph) -> Dict[str, str]:
    """Copy-1 variable → copy-2 variable, length shadows included.

    A renamed register's length shadow is ``len_var(reg + SUFFIX)`` —
    the name the transfer functions derive when they step the *renamed*
    instruction — not ``len_var(reg) + SUFFIX``.
    """
    mapping = {}
    for reg in cfg.reg_kinds:
        mapping[reg] = reg + SUFFIX
        mapping[len_var(reg)] = len_var(reg + SUFFIX)
    return mapping


def renamed_instr(instr: ir.Instr) -> ir.Instr:
    """A copy-2 version of the instruction (registers suffixed)."""

    def op(o: ir.Operand) -> ir.Operand:
        if isinstance(o, ir.Reg):
            return ir.Reg(o.name + SUFFIX)
        return o

    if isinstance(instr, ir.Assign):
        return ir.Assign(dst=op(instr.dst), src=op(instr.src), weight=instr.weight)  # type: ignore[arg-type]
    if isinstance(instr, ir.BinInstr):
        return ir.BinInstr(dst=op(instr.dst), op=instr.op, a=op(instr.a), b=op(instr.b), weight=instr.weight)  # type: ignore[arg-type]
    if isinstance(instr, ir.CmpInstr):
        return ir.CmpInstr(dst=op(instr.dst), op=instr.op, a=op(instr.a), b=op(instr.b), weight=instr.weight)  # type: ignore[arg-type]
    if isinstance(instr, ir.UnInstr):
        return ir.UnInstr(dst=op(instr.dst), op=instr.op, a=op(instr.a), weight=instr.weight)  # type: ignore[arg-type]
    if isinstance(instr, ir.ALoad):
        return ir.ALoad(dst=op(instr.dst), arr=op(instr.arr), idx=op(instr.idx), weight=instr.weight)  # type: ignore[arg-type]
    if isinstance(instr, ir.AStore):
        return ir.AStore(arr=op(instr.arr), idx=op(instr.idx), val=op(instr.val), weight=instr.weight)
    if isinstance(instr, ir.NewArr):
        return ir.NewArr(dst=op(instr.dst), size=op(instr.size), elem=instr.elem, weight=instr.weight)  # type: ignore[arg-type]
    if isinstance(instr, ir.ArrLen):
        return ir.ArrLen(dst=op(instr.dst), arr=op(instr.arr), weight=instr.weight)  # type: ignore[arg-type]
    if isinstance(instr, ir.CallInstr):
        return ir.CallInstr(
            dst=op(instr.dst) if instr.dst is not None else None,  # type: ignore[arg-type]
            callee=instr.callee,
            args=tuple(op(a) for a in instr.args),
            weight=instr.weight,
        )
    raise AnalysisError("cannot rename %r" % type(instr).__name__)


class PairSemantics:
    """Abstract semantics of one scheduling *step* of the 2-copy product.

    ``step_copy`` advances exactly one copy through one basic block
    (straight-line effect, cost-counter bump, branch refinement on each
    out edge); the caller decides which copy moves when — lockstep,
    catch-up, eager sequencing — and composes steps freely, because the
    two copies touch disjoint variables.
    """

    def __init__(
        self,
        cfg: ControlFlowGraph,
        domain: Domain,
        summaries: Optional[SummaryRegistry] = None,
    ):
        self._cfg = cfg
        self._domain = domain
        self._summaries = (
            summaries if summaries is not None else default_summaries()
        )
        self._transfer = TransferFunctions(cfg, summaries=self._summaries)
        self._rename = rename_map(cfg)
        # Teach the shared transfer functions the kinds of the renamed
        # copy-2 registers (extra keys are inert for other analyses).
        for reg, kind in list(cfg.reg_kinds.items()):
            cfg.reg_kinds.setdefault(reg + SUFFIX, kind)

    @property
    def cfg(self) -> ControlFlowGraph:
        return self._cfg

    @property
    def domain(self) -> Domain:
        return self._domain

    @property
    def entry_node(self) -> PairNode:
        return (self._cfg.entry, self._cfg.entry)

    @property
    def exit_node(self) -> PairNode:
        return (self._cfg.exit_id, self._cfg.exit_id)

    # -- states ----------------------------------------------------------------

    def entry_state(self) -> AbstractState:
        """⊤ constrained to low-equivalent input pairs, costs zeroed."""
        state = self._transfer.entry_state(self._domain.top())
        state = self._rename_entry_constraints(state)
        # Equal low inputs; secrets unconstrained.
        for param in self._cfg.params:
            if param.is_secret:
                continue
            if param.declared.is_array:
                first = len_var(param.name)
                second = len_var(param.name + SUFFIX)
            else:
                first = param.name
                second = param.name + SUFFIX
            state = state.guard(
                LinCons.eq(LinExpr.var(first), LinExpr.var(second))
            )
        state = state.assign(COST1, LinExpr.constant(0))
        state = state.assign(COST2, LinExpr.constant(0))
        return state

    def _rename_entry_constraints(self, state: AbstractState) -> AbstractState:
        # Re-impose the entry constraints for copy 2 under renamed vars.
        for param in self._cfg.params:
            if param.declared.is_array:
                state = state.guard(
                    LinCons.ge(LinExpr.var(len_var(param.name + SUFFIX)), 0)
                )
            elif param.declared.base is ast.BaseType.UINT:
                state = state.guard(LinCons.ge(LinExpr.var(param.name + SUFFIX), 0))
        return state

    def gap_bounds(self, state: AbstractState):
        """``[lo, hi]`` of ``cost1 - cost2`` in ``state``."""
        return state.bounds_of(LinExpr.var(COST1) - LinExpr.var(COST2))

    # -- steps -----------------------------------------------------------------

    def step_copy(
        self, block_id: int, state: AbstractState, copy2: bool
    ) -> List[Tuple[int, AbstractState]]:
        """Advance one copy through block ``block_id``: the successor
        blocks with their (branch-refined) out-states."""
        cfg = self._cfg
        block = cfg.blocks[block_id]
        cost_var = COST2 if copy2 else COST1
        conds: Dict = {}
        for instr in block.instrs:
            instr = renamed_instr(instr) if copy2 else instr
            state = self._transfer.step(instr, state, conds)
            if isinstance(instr, ir.CallInstr):
                state = self._charge_call(instr, state, copy2)
        state = state.assign(cost_var, LinExpr.var(cost_var) + block.cost)
        out: List[Tuple[int, AbstractState]] = []
        succs = cfg.successors(block_id)
        is_branch = isinstance(block.term, ir.Branch) and len(succs) == 2
        for succ in succs:
            edge_state = state
            if is_branch:
                taken = succ == block.term.on_true  # type: ignore[union-attr]
                cons = self._branch_constraint(block_id, taken, conds, copy2)
                if cons is not None:
                    edge_state = edge_state.guard(cons)
            out.append((succ, edge_state))
        return out

    def _charge_call(
        self, instr: ir.CallInstr, state: AbstractState, copy2: bool
    ) -> AbstractState:
        """Add a call's running time to the stepping copy's counter.

        ``block.cost`` only covers the caller's own instructions — the
        callee's time is charged here, from the same summary registry
        the bound analysis uses (the concrete extern models charge the
        identical constants, so this is exact for every shipped
        summary).  A callee without a summary — a defined procedure, an
        unknown extern — raises :class:`AnalysisError`: the engines
        catch it into the three-valued ``"exhausted"`` outcome rather
        than silently under-counting, which would be a soundness hole
        (a secret-guarded call skipped in one copy *is* the timing
        channel, cf. the unixlogin benchmark).
        """
        summary = self._summaries.lookup(instr.callee)
        if summary is None:
            raise AnalysisError(
                "pair semantics cannot cost a call to %r (no summary)"
                % instr.callee
            )
        lo, hi = self._call_cost_exprs(instr, summary)
        cost_var = COST2 if copy2 else COST1
        cost = LinExpr.var(cost_var)
        if hi is not None and lo is not None and lo == hi:
            return state.assign(cost_var, cost + lo)
        # Nondeterministic cost: route it through a havoced delta
        # variable bounded by the summary's range.
        delta_var = _CALL2 if copy2 else _CALL1
        state = state.assign(delta_var, None)
        delta = LinExpr.var(delta_var)
        if lo is not None:
            state = state.guard(LinCons.ge(delta, lo))
        if hi is not None:
            state = state.guard(LinCons.le(delta, hi))
        state = state.assign(cost_var, cost + delta)
        return state.assign(delta_var, None)  # scratch: decorrelate

    def _call_cost_exprs(
        self, instr: ir.CallInstr, summary
    ) -> Tuple[Optional[LinExpr], Optional[LinExpr]]:
        """``[lo, hi]`` cost expressions of one summarized call, in the
        stepping copy's (already renamed) variables.  ``None`` = that
        side unbounded."""
        lo: Optional[LinExpr] = LinExpr.constant(int(math.floor(summary.lo)))
        hi: Optional[LinExpr] = LinExpr.constant(int(math.ceil(summary.hi)))
        if summary.per_byte_arg is None:
            return lo, hi
        length = None
        if summary.per_byte_arg < len(instr.args):
            arg = instr.args[summary.per_byte_arg]
            if isinstance(arg, ir.Reg):
                length = LinExpr.var(len_var(arg.name))
            elif isinstance(arg, ir.ConstArr):
                length = LinExpr.constant(len(arg.values))
        if length is None:
            return lo, None  # length unknown: the upper bound is lost
        per = Fraction(summary.per_byte)
        # Lengths are nonnegative, so flooring/ceiling the per-byte
        # coefficient keeps each side conservative.
        return (
            lo + length * int(math.floor(per)),
            hi + length * int(math.ceil(per)),
        )

    def _branch_constraint(
        self, block_id: int, taken: bool, conds: Dict, copy2: bool
    ) -> Optional[LinCons]:
        """Branch-edge refinement for either copy.

        Copy 2's instructions were renamed *before* stepping, so its
        cond defs are keyed by the suffixed register names; looking the
        terminator's condition up under its renamed name keeps the full
        relational constraint (e.g. ``i$2 < l$2``) instead of degrading
        to the boolean-register fallback — which is what prunes the
        infeasible mixed pairs ("copy 1 still looping, copy 2 already
        out") that lockstep precision lives on.
        """
        if not copy2:
            return self._transfer.branch_constraint(block_id, taken, conds)
        cfg = self._cfg
        term = cfg.blocks[block_id].term
        if not isinstance(term, ir.Branch):
            return None
        cond = term.cond
        if isinstance(cond, ir.ConstInt):
            # Constant branches: the dead edge is refined to bottom.
            if (cond.value != 0) == taken:
                return None
            return LinCons.le(LinExpr.constant(1), 0)  # unsatisfiable
        if not isinstance(cond, ir.Reg):
            return None
        name = cond.name + SUFFIX
        cond_def = conds.get(name)
        if cond_def is None:
            # Branching on a plain 0/1 register: v != 0 / v == 0.
            if cfg.reg_kinds.get(cond.name) == "arr":
                return None
            var = LinExpr.var(name)
            return LinCons.ge(var, 1) if taken else LinCons.eq(var, 0)
        effective = cond_def if taken else cond_def.negated()
        # The cond def's operands are already copy-2 registers (the
        # renamed kinds were registered at construction).
        return effective.constraint(cfg)

    def step_both(
        self, node: PairNode, state: AbstractState
    ) -> List[Tuple[PairNode, AbstractState]]:
        """Advance *both* copies one block (the lockstep move).  Sound
        to compose sequentially: the copies' variable sets are disjoint,
        so copy 2's step commutes with copy 1's."""
        b1, b2 = node
        out: List[Tuple[PairNode, AbstractState]] = []
        for succ1, mid in self.step_copy(b1, state, copy2=False):
            for succ2, final in self.step_copy(b2, mid, copy2=True):
                out.append(((succ1, succ2), final))
        return out
