"""One scheduled pair-space fixpoint round.

The engine is the ``CHECK`` half of the PDSC loop: given an alignment
policy it runs a worklist fixpoint over the scheduled 2-copy product —
pair nodes, joint abstract states, widening after repeated visits —
and checks the timing-difference property ``|cost1 - cost2| <= ε`` at
the paired exit.  A round ends one of three ways:

* **verified** — the exit invariant bounds the gap within ε;
* **failed with a counterexample** — the fixpoint converged but the
  exit gap is too wide; the round reports the desynchronized pair
  nodes it visited (first-visit order) as the abstract counterexample
  the refinement step realigns on;
* **exhausted** — the pair budget or the wall deadline tripped; also a
  counterexample (the visited desync frontier), because a blown-up
  pair space is itself evidence of a bad alignment.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.domains.base import AbstractState
from repro.pdsc.align import BOTH, LEFT, AbstractCex, AlignmentPolicy, block_ranks
from repro.pdsc.pairing import PairNode, PairSemantics

# Widening threshold: joins tolerated per pair node before widening —
# same discipline as the eager baseline, so precision comparisons
# between the two compare alignments, not fixpoint knobs.
WIDEN_AFTER = 3

# Desync nodes remembered per round; the refinement only ever consumes
# a prefix, so an unbounded trace would be waste.
DESYNC_LIMIT = 64

# Deadline checks are amortized over this many worklist pops.
DEADLINE_STRIDE = 64


@dataclass
class RoundOutcome:
    """What one fixpoint round established."""

    verified: bool
    exhausted: bool
    explored_pairs: int
    note: str
    gap_lo: Optional[int] = None
    gap_hi: Optional[int] = None
    cex: Optional[AbstractCex] = None


class PairFixpoint:
    """Worklist fixpoint over the policy-scheduled pair product."""

    def __init__(
        self,
        semantics: PairSemantics,
        policy: AlignmentPolicy,
        epsilon: int,
        max_pairs: int,
        deadline_at: Optional[float] = None,
    ):
        self._sem = semantics
        self._policy = policy
        self._epsilon = epsilon
        self._max_pairs = max_pairs
        self._deadline_at = deadline_at
        self._ranks = block_ranks(semantics.cfg)

    def run(self) -> RoundOutcome:
        sem = self._sem
        cfg = sem.cfg
        policy = self._policy
        exit_id = cfg.exit_id
        invariants: Dict[PairNode, AbstractState] = {
            sem.entry_node: sem.entry_state()
        }
        worklist: List[PairNode] = [sem.entry_node]
        queued = {sem.entry_node}
        visits: Dict[PairNode, int] = {}
        desync: List[Tuple[PairNode, str]] = []
        seen_desync = set()
        explored = 0
        while worklist:
            node = worklist.pop(0)
            queued.discard(node)
            explored += 1
            if explored > self._max_pairs:
                return self._exhausted(
                    explored,
                    "pair state space exceeded %d nodes" % self._max_pairs,
                    desync,
                )
            if (
                self._deadline_at is not None
                and explored % DEADLINE_STRIDE == 0
                and time.monotonic() > self._deadline_at
            ):
                return self._exhausted(explored, "wall deadline", desync)
            state = invariants[node]
            if state.is_bottom():
                continue
            decision = policy.decide(node, self._ranks, exit_id)
            if (
                node[0] != node[1]
                and node not in seen_desync
                and len(desync) < DESYNC_LIMIT
            ):
                seen_desync.add(node)
                desync.append((node, decision))
            for succ, out_state in self._successors(node, state, decision):
                old = invariants.get(succ, sem.domain.bottom())
                if out_state.leq(old):
                    continue
                joined = old.join(out_state)
                visits[succ] = visits.get(succ, 0) + 1
                if visits[succ] > WIDEN_AFTER:
                    joined = old.widen(joined)
                invariants[succ] = joined
                if succ not in queued:
                    queued.add(succ)
                    worklist.append(succ)

        state = invariants.get(sem.exit_node)
        if state is None or state.is_bottom():
            # No common exit reached: vacuously fine (or a modeling gap).
            return RoundOutcome(
                verified=True,
                exhausted=False,
                explored_pairs=explored,
                note="exit unreachable",
            )
        lo, hi = sem.gap_bounds(state)
        ok = (
            lo is not None
            and hi is not None
            and -self._epsilon <= lo
            and hi <= self._epsilon
        )
        note = "cost gap in [%s, %s]" % (lo, hi)
        cex = None
        if not ok:
            cex = AbstractCex(
                reason="wide-gap",
                desync=tuple(desync),
                gap_lo=lo if isinstance(lo, int) else None,
                gap_hi=hi if isinstance(hi, int) else None,
            )
        return RoundOutcome(
            verified=ok,
            exhausted=False,
            explored_pairs=explored,
            note=note,
            gap_lo=lo if isinstance(lo, int) else None,
            gap_hi=hi if isinstance(hi, int) else None,
            cex=cex,
        )

    def _successors(
        self, node: PairNode, state: AbstractState, decision: str
    ) -> List[Tuple[PairNode, AbstractState]]:
        sem = self._sem
        b1, b2 = node
        if b1 == sem.cfg.exit_id and b2 == sem.cfg.exit_id:
            return []
        if decision == BOTH:
            return sem.step_both(node, state)
        if decision == LEFT:
            return [
                ((succ, b2), out) for succ, out in sem.step_copy(b1, state, False)
            ]
        return [((b1, succ), out) for succ, out in sem.step_copy(b2, state, True)]

    def _exhausted(
        self,
        explored: int,
        note: str,
        desync: List[Tuple[PairNode, str]],
    ) -> RoundOutcome:
        return RoundOutcome(
            verified=False,
            exhausted=True,
            explored_pairs=explored,
            note=note,
            cex=AbstractCex(reason="pair-budget", desync=tuple(desync)),
        )
