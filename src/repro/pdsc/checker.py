"""The PDSC CEGAR loop: check, refine the alignment, re-check.

``PDSC.verify`` alternates the scheduled fixpoint of
:class:`~repro.pdsc.engine.PairFixpoint` with the policy-refinement
step of :func:`~repro.pdsc.align.refine_policy`, under two budgets —
a per-round pair-space cap and a total refinement count (plus an
optional wall deadline over the whole loop).  Degradation is sound by
construction: every alignment is a complete scheduling of the 2-copy
product, so "verified" is trustworthy under *any* policy, and running
out of refinements or pairs yields the three-valued ``"exhausted"``
outcome — never a wrong verdict.

Observability (docs/OBSERVABILITY.md): the loop is traced with
``pdsc.verify`` / ``pdsc.round`` spans and feeds the process registry
with round/refinement/outcome counters and a rounds-per-verification
histogram, all zero-cost while ``REPRO_OBS`` is off.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.cfg.graph import ControlFlowGraph
from repro.domains.base import Domain
from repro.obs.metrics import REGISTRY
from repro.obs.trace import span
from repro.pdsc.align import AlignmentPolicy, refine_policy
from repro.pdsc.engine import PairFixpoint, RoundOutcome
from repro.pdsc.pairing import PairSemantics
from repro.util.errors import AnalysisError, ResourceExhausted

ROUNDS_TOTAL = REGISTRY.counter(
    "repro_pdsc_rounds_total",
    "PDSC fixpoint rounds run, by the alignment mode they checked",
    labelnames=("alignment",),
)
OUTCOMES_TOTAL = REGISTRY.counter(
    "repro_pdsc_outcomes_total",
    "PDSC verifications by three-valued outcome",
    labelnames=("outcome",),
)
REFINEMENTS = REGISTRY.histogram(
    "repro_pdsc_refinements",
    "Alignment refinements spent per PDSC verification",
)


@dataclass
class PDSCRound:
    """One CEGAR round's record (for reports and the explain surface)."""

    alignment: str
    verified: bool
    exhausted: bool
    explored_pairs: int
    note: str

    def to_dict(self) -> dict:
        return {
            "alignment": self.alignment,
            "verified": self.verified,
            "exhausted": self.exhausted,
            "explored_pairs": self.explored_pairs,
            "note": self.note,
        }


@dataclass
class PDSCResult:
    """Outcome of one property-directed verification.

    ``outcome`` is three-valued like the eager baseline's
    (:class:`~repro.core.selfcomp.SelfCompositionResult`): ``verified``
    and ``unverified`` are real answers — the last alignment's fixpoint
    converged and answered the property — while ``exhausted`` means a
    budget (pairs, refinements under a still-blowing-up product, wall
    deadline) cut the search short: a precision data point, never a
    crash and never a wrong verdict.
    """

    verified: bool
    seconds: float
    explored_pairs: int  # total across every round
    rounds: List[PDSCRound] = field(default_factory=list)
    note: str = ""
    outcome: str = ""

    def __post_init__(self) -> None:
        if not self.outcome:
            self.outcome = "verified" if self.verified else "unverified"

    @property
    def refinements(self) -> int:
        """Alignment refinements consumed (rounds beyond the first)."""
        return max(0, len(self.rounds) - 1)

    @property
    def exhausted(self) -> bool:
        return self.outcome == "exhausted"

    def to_dict(self) -> dict:
        return {
            "outcome": self.outcome,
            "verified": self.verified,
            "refinements": self.refinements,
            "explored_pairs": self.explored_pairs,
            "note": self.note,
            "rounds": [r.to_dict() for r in self.rounds],
        }

    def render(self) -> str:
        lines = [
            "pdsc: %s (%d round(s), %d pair(s), %.2fs)"
            % (self.outcome.upper(), len(self.rounds), self.explored_pairs, self.seconds)
        ]
        for index, entry in enumerate(self.rounds):
            lines.append(
                "  round %d [%s]: %s (%d pairs)"
                % (index, entry.alignment, entry.note, entry.explored_pairs)
            )
        if self.note:
            lines.append("  " + self.note)
        return "\n".join(lines)


class PDSC:
    """Property-directed self-composition over one procedure's CFG."""

    def __init__(
        self,
        cfg: ControlFlowGraph,
        domain: Domain,
        epsilon: int = 32,
        max_pairs: int = 4000,
        max_refinements: int = 4,
        deadline: Optional[float] = None,
        summaries=None,
    ):
        self._cfg = cfg
        self._semantics = PairSemantics(cfg, domain, summaries=summaries)
        self._epsilon = epsilon
        self._max_pairs = max_pairs
        self._max_refinements = max_refinements
        self._deadline = deadline

    def verify(self) -> PDSCResult:
        """Run the CEGAR loop to a three-valued outcome.

        Never raises on resource limits or unsupported pair semantics:
        both degrade to ``outcome="exhausted"``.
        """
        started = time.perf_counter()
        deadline_at = (
            time.monotonic() + self._deadline if self._deadline is not None else None
        )
        policy = AlignmentPolicy.lockstep()
        rounds: List[PDSCRound] = []
        total_pairs = 0
        with span("pdsc.verify", proc=self._cfg.name, epsilon=self._epsilon) as root:
            try:
                while True:
                    with span(
                        "pdsc.round",
                        round=len(rounds),
                        alignment=policy.describe(),
                    ) as round_span:
                        outcome = PairFixpoint(
                            self._semantics,
                            policy,
                            epsilon=self._epsilon,
                            max_pairs=self._max_pairs,
                            deadline_at=deadline_at,
                        ).run()
                        round_span.annotate(
                            verified=outcome.verified,
                            pairs=outcome.explored_pairs,
                        )
                    ROUNDS_TOTAL.labels(alignment=policy.mode).inc()
                    total_pairs += outcome.explored_pairs
                    rounds.append(
                        PDSCRound(
                            alignment=policy.describe(),
                            verified=outcome.verified,
                            exhausted=outcome.exhausted,
                            explored_pairs=outcome.explored_pairs,
                            note=outcome.note,
                        )
                    )
                    if outcome.verified:
                        return self._finish(
                            root, started, rounds, total_pairs, outcome, "verified"
                        )
                    if deadline_at is not None and time.monotonic() > deadline_at:
                        return self._finish(
                            root,
                            started,
                            rounds,
                            total_pairs,
                            outcome,
                            "exhausted",
                            note="wall deadline reached after %d round(s)"
                            % len(rounds),
                        )
                    if len(rounds) > self._max_refinements:
                        return self._finish(
                            root,
                            started,
                            rounds,
                            total_pairs,
                            outcome,
                            "exhausted" if outcome.exhausted else "unverified",
                            note="refinement budget (%d) spent"
                            % self._max_refinements,
                        )
                    proposal = refine_policy(policy, outcome.cex)
                    if proposal is None:
                        return self._finish(
                            root,
                            started,
                            rounds,
                            total_pairs,
                            outcome,
                            "exhausted" if outcome.exhausted else "unverified",
                            note="no further alignment to try",
                        )
                    policy = proposal
            except (AnalysisError, ResourceExhausted) as exc:
                result = PDSCResult(
                    verified=False,
                    seconds=time.perf_counter() - started,
                    explored_pairs=total_pairs,
                    rounds=rounds,
                    note="pair semantics gave up: %s" % exc,
                    outcome="exhausted",
                )
                self._observe(root, result)
                return result

    def _finish(
        self,
        root,
        started: float,
        rounds: List[PDSCRound],
        total_pairs: int,
        outcome: RoundOutcome,
        verdict: str,
        note: str = "",
    ) -> PDSCResult:
        result = PDSCResult(
            verified=verdict == "verified",
            seconds=time.perf_counter() - started,
            explored_pairs=total_pairs,
            rounds=rounds,
            note=note or outcome.note,
            outcome=verdict,
        )
        self._observe(root, result)
        return result

    def _observe(self, root, result: PDSCResult) -> None:
        OUTCOMES_TOTAL.labels(outcome=result.outcome).inc()
        REFINEMENTS.observe(result.refinements)
        root.annotate(
            outcome=result.outcome,
            rounds=len(result.rounds),
            pairs=result.explored_pairs,
        )
