"""Property-directed self-composition (PDSC, after CAV'19).

The fourth verification backend: instead of eagerly sequencing the two
program copies (``repro.core.selfcomp``) or decomposing the trail space
(``repro.core.blazer``), PDSC *searches for an alignment* of the 2-copy
product under which an off-the-shelf abstract domain can prove the
timing-difference property — starting from the lockstep composition and
refining the scheduling policy from abstract counterexamples
(docs/PDSC.md).

Package layout:

* :mod:`repro.pdsc.pairing` — the shared pair-program semantics (copy-2
  renaming, equal-low entry states, per-copy cost counters) the whole
  self-composition family builds on;
* :mod:`repro.pdsc.align` — alignment policies (lockstep / rank-directed
  catch-up / per-node exceptions) and the counterexample-guided
  refinement step;
* :mod:`repro.pdsc.engine` — one scheduled pair-space fixpoint round;
* :mod:`repro.pdsc.checker` — the CEGAR loop, budgets, and the
  three-valued :class:`~repro.pdsc.checker.PDSCResult`.
"""

from repro.pdsc.align import AlignmentPolicy, refine_policy
from repro.pdsc.checker import PDSC, PDSCResult, PDSCRound
from repro.pdsc.pairing import PairSemantics

__all__ = [
    "PDSC",
    "PDSCResult",
    "PDSCRound",
    "AlignmentPolicy",
    "PairSemantics",
    "refine_policy",
]
