"""The abstract-state interface every numeric domain implements.

The abstract interpreter (:mod:`repro.absint`) is parametric in the
domain: intervals, zones, octagons and polyhedra all implement this
interface.  States are immutable from the caller's perspective — every
operation returns a fresh state.

Variables come into existence lazily: operations mentioning an unknown
variable implicitly add it unconstrained (top).  ``bounds_of`` is the
central query for the bound analysis: the tightest derivable interval of
a linear expression.
"""

from __future__ import annotations

import abc
from fractions import Fraction
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.domains.linexpr import LinCons, LinExpr

Bound = Optional[Fraction]  # None = unbounded


class AbstractState(abc.ABC):
    """One element of a numeric abstract domain."""

    # -- lattice -------------------------------------------------------------

    @abc.abstractmethod
    def is_bottom(self) -> bool:
        ...

    @abc.abstractmethod
    def join(self, other: "AbstractState") -> "AbstractState":
        ...

    @abc.abstractmethod
    def widen(self, other: "AbstractState") -> "AbstractState":
        """Widening: ``self`` is the old state, ``other`` the new one."""

    @abc.abstractmethod
    def leq(self, other: "AbstractState") -> bool:
        """Abstract inclusion (sound: γ(self) ⊆ γ(other) when True)."""

    # -- transfer -------------------------------------------------------------

    @abc.abstractmethod
    def assign(self, var: str, expr: Optional[LinExpr]) -> "AbstractState":
        """``var := expr``; ``expr=None`` havocs the variable."""

    @abc.abstractmethod
    def guard(self, cons: LinCons) -> "AbstractState":
        """Meet with one linear constraint."""

    @abc.abstractmethod
    def forget(self, var: str) -> "AbstractState":
        """Project the variable away (keep it, unconstrained)."""

    # -- queries ----------------------------------------------------------------

    @abc.abstractmethod
    def bounds_of(self, expr: LinExpr) -> Tuple[Bound, Bound]:
        """Sound (lo, hi) bounds of ``expr``; ``None`` = unbounded."""

    @abc.abstractmethod
    def constraints(self) -> List[LinCons]:
        """A sound set of constraints describing the state."""

    def entails(self, cons: LinCons) -> bool:
        """Does every concrete state satisfy ``cons``?  Sound, may say False."""
        lo, hi = self.bounds_of(cons.expr)
        if cons.op.value == "==":
            return lo is not None and hi is not None and lo == hi == 0
        return hi is not None and hi <= 0

    def guard_all(self, constraints: Iterable[LinCons]) -> "AbstractState":
        state: AbstractState = self
        for cons in constraints:
            state = state.guard(cons)
        return state

    # -- convenience ---------------------------------------------------------------

    def var_bounds(self, var: str) -> Tuple[Bound, Bound]:
        return self.bounds_of(LinExpr.var(var))


class Domain(abc.ABC):
    """A factory of abstract states."""

    name: str = "abstract"

    @abc.abstractmethod
    def top(self, variables: Sequence[str] = ()) -> AbstractState:
        ...

    @abc.abstractmethod
    def bottom(self, variables: Sequence[str] = ()) -> AbstractState:
        ...
