"""Flat difference-bound-matrix kernels shared by the zone and octagon
domains.

The DBM domains used to run their Floyd–Warshall closures as
triple-nested Python loops over ``Optional`` entries, testing ``is
None`` on every relaxation — profiling showed that loop alone was ~70%
of a serial full-suite run.  These kernels replace the entry-wise inner
loop with row-at-a-time ``map(min, row, candidates)`` over matrices that
encode +∞ as ``float("inf")`` instead of ``None``:

* ``INF`` compares and adds exactly against ``int``/``Fraction`` bounds
  (``Fraction(1, 3) < INF``; ``x + INF == INF``), and a candidate that
  involves +∞ can never win a ``min``, so no finite entry is ever
  contaminated by float arithmetic;
* ``min`` returns its *first* argument on ties, matching the strict
  ``cand < m[i][j]`` update of the reference loop, so existing entries
  (and their int-vs-Fraction representation) survive value ties exactly
  as before;
* within one ``k`` sweep the row ``m[k]`` and column ``m[·][k]`` are
  fixed points of their own relaxation unless the diagonal has already
  gone negative — in which case the matrix is inconsistent (⊥) under
  either evaluation order — so the row-snapshot kernels compute
  *identical* results to the in-place reference loop.

``closure_reference`` preserves the original ``None``-encoded triple
loop verbatim; the property tests in ``tests/domains`` use it as the
oracle that the flat kernels agree with the seed semantics entry-wise.

Matrix cache keys are bytes-backed where possible: an all-``int`` DBM
packs into a single ``array('q')`` buffer (``+∞`` becomes a reserved
sentinel; out-of-range values fall back to the string key), which is
what the zone domain's memo tables and the interned-canonical-matrix
table hash.
"""

from __future__ import annotations

from array import array
from fractions import Fraction
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

INF = float("inf")
NEG_INF = float("-inf")

Rows = List[List[object]]

# array('q') packing: one reserved code for +oo.  Finite entries must
# stay clear of the sentinel, so anything at or beyond ±2^62 (absurd for
# a bound, but possible in principle) refuses the fast key instead of
# risking a collision.
_INF_CODE = (1 << 63) - 1
_KEY_LIMIT = 1 << 62


# -- observability -------------------------------------------------------------

_HISTOGRAM = None
_OBS_ENABLED = None  # late-bound repro.obs.runtime.enabled (import cycle)


def _obs_enabled() -> bool:
    global _OBS_ENABLED
    if _OBS_ENABLED is None:
        from repro.obs import runtime as obs_runtime

        _OBS_ENABLED = obs_runtime.enabled
    return _OBS_ENABLED()


def _observe_closure(kernel: str, seconds: float) -> None:
    """Record one closure-kernel run in the process metrics registry
    (only called when REPRO_OBS is armed; see ``repro metrics``)."""
    global _HISTOGRAM
    if _HISTOGRAM is None:
        from repro.obs.metrics import REGISTRY

        _HISTOGRAM = REGISTRY.histogram(
            "repro_dbm_closure_seconds",
            "Wall time of one DBM closure kernel invocation",
            labelnames=("kernel",),
        )
    _HISTOGRAM.labels(kernel=kernel).observe(seconds)


# -- flat (INF-encoded) kernels ------------------------------------------------


def fw_close_rows(m: Rows, n: int) -> bool:
    """In-place Floyd–Warshall closure of an ``INF``-encoded DBM.

    Returns False when the system is inconsistent (a negative diagonal
    entry appears, i.e. a negative cycle exists); otherwise normalizes
    the diagonal to ``0`` and returns True.  Exactly the shortest-path
    matrix the reference loop computes.
    """
    timed = _obs_enabled()
    start = perf_counter() if timed else 0.0
    for k in range(n):
        row_k = m[k]
        for i in range(n):
            row_i = m[i]
            mik = row_i[k]
            if mik < INF:
                if mik:
                    m[i] = list(map(min, row_i, [mik + v for v in row_k]))
                else:
                    m[i] = list(map(min, row_i, row_k))
    ok = True
    for i in range(n):
        if m[i][i] < 0:
            ok = False
            break
        m[i][i] = 0
    if timed:
        _observe_closure("fw", perf_counter() - start)
    return ok


def tighten_rows(m: Rows, n: int, a: int, b: int, c) -> None:
    """In-place incremental closure of a *closed* ``INF``-encoded DBM
    after tightening one entry to ``v_a - v_b <= c``.

    For a closed matrix the closure of the tightened system is
    ``min(m[i][j], m[i][a] + c + m[b][j])`` — every path either avoids
    the new edge or uses it once.  The caller must have checked
    consistency (``m[b][a] + c >= 0``) and that the update actually
    tightens (``c < m[a][b]``).  O(n²).
    """
    timed = _obs_enabled()
    start = perf_counter() if timed else 0.0
    shifted = [c + v for v in m[b]]
    for i in range(n):
        row_i = m[i]
        mia = row_i[a]
        if mia < INF:
            if mia:
                m[i] = list(map(min, row_i, [mia + v for v in shifted]))
            else:
                m[i] = list(map(min, row_i, shifted))
    if timed:
        _observe_closure("tighten", perf_counter() - start)


def _half(bound):
    if isinstance(bound, int):
        return bound // 2 if bound % 2 == 0 else Fraction(bound, 2)
    return bound / 2


def octagon_close_rows(m: Rows, n: int) -> bool:
    """In-place strong closure of an ``INF``-encoded octagon DBM:
    alternating shortest-path and strengthening rounds, exactly as the
    reference loop (including its 4-round cap and change detection).

    Returns False on inconsistency, True with a strongly closed matrix
    (diagonal normalized to 0) otherwise.
    """
    timed = _obs_enabled()
    start = perf_counter() if timed else 0.0
    ok = True
    for _ in range(4):
        changed = False
        for k in range(n):
            row_k = m[k]
            for i in range(n):
                row_i = m[i]
                mik = row_i[k]
                if mik < INF:
                    if mik:
                        new_row = list(map(min, row_i, [mik + v for v in row_k]))
                    else:
                        new_row = list(map(min, row_i, row_k))
                    if new_row != row_i:
                        changed = True
                        m[i] = new_row
        # Strengthening with the unary bounds: the column of m[bar(j)][j]
        # entries is a fixed point of this pass, so one snapshot is exact.
        colv = [m[j ^ 1][j] for j in range(n)]
        for i in range(n):
            row_i = m[i]
            uib = row_i[i ^ 1]
            if uib < INF:
                for j in range(n):
                    cj = colv[j]
                    if cj < INF:
                        cand = _half(uib + cj)
                        if cand < row_i[j]:
                            row_i[j] = cand
                            changed = True
        for i in range(n):
            if m[i][i] < 0:
                ok = False
                break
            m[i][i] = 0
        if not ok or not changed:
            break
    if timed:
        _observe_closure("octagon", perf_counter() - start)
    return ok


# -- encoding ------------------------------------------------------------------


def rows_from_opt(matrix: Sequence[Sequence[object]]) -> Rows:
    """``None``-encoded DBM -> ``INF``-encoded copy."""
    return [[INF if v is None else v for v in row] for row in matrix]


def rows_to_opt(m: Rows) -> List[List[object]]:
    """``INF``-encoded DBM -> ``None``-encoded copy."""
    return [[None if v == INF else v for v in row] for row in m]


# -- reference semantics (the seed loop, kept as the oracle) -------------------


def closure_reference(
    matrix: Sequence[Sequence[object]],
) -> Tuple[Optional[List[List[object]]], bool]:
    """The original ``None``-encoded Floyd–Warshall closure.

    Returns ``(closed_matrix, False)`` or ``(None, True)`` when the
    system is empty.  This is the seed implementation, kept verbatim so
    the property tests can check the flat kernels against it.
    """
    n = len(matrix)
    m = [list(row) for row in matrix]
    for k in range(n):
        row_k = m[k]
        for i in range(n):
            mik = m[i][k]
            if mik is None:
                continue
            row_i = m[i]
            for j in range(n):
                mkj = row_k[j]
                if mkj is None:
                    continue
                candidate = mik + mkj
                if row_i[j] is None or candidate < row_i[j]:
                    row_i[j] = candidate
    for i in range(n):
        if m[i][i] is not None and m[i][i] < 0:
            return None, True
        m[i][i] = 0
    return m, False


# -- bytes-backed keys and interning -------------------------------------------


def int_key(m: Rows) -> Optional[bytes]:
    """A compact injective key for an all-int ``INF``-encoded DBM, as
    the raw buffer of an ``array('q')`` — or None when the matrix holds
    a ``Fraction`` (or an implausibly large int that could collide with
    the +∞ sentinel), in which case the caller falls back to a string
    key.

    The hot path is one substituting list comprehension plus the C-level
    ``array('q')`` constructor, which validates int-ness and the 64-bit
    range for free (``Fraction`` raises TypeError, a too-big int raises
    OverflowError).  The only remaining hazard is a *finite* entry equal
    to the +∞ sentinel itself; comparing C-level ``count``\\ s of the
    sentinel before and after substitution detects exactly that case.
    """
    flat = [_INF_CODE if v == INF else v for row in m for v in row]
    try:
        buf = array("q", flat)
    except (TypeError, OverflowError):
        return None
    if flat.count(_INF_CODE) != sum(row.count(INF) for row in m):
        return None  # a finite entry collides with the sentinel
    return buf.tobytes()


_INTERN: Dict[object, Rows] = {}
_INTERN_LIMIT = 50_000


def intern_rows(key: object, m: Rows) -> Rows:
    """Canonical-matrix interning: equal closed matrices (same content
    key) share one row-list object, so sibling trails that converge on
    the same invariant also share the per-instance closure caches hung
    off it downstream.  Bounded; wholesale-cleared at the limit."""
    if len(_INTERN) >= _INTERN_LIMIT:
        _INTERN.clear()
    return _INTERN.setdefault(key, m)


def clear_interned() -> None:
    _INTERN.clear()
