"""Linear expressions and constraints over named variables.

The shared constraint language of every numeric abstract domain in
:mod:`repro.domains` and of the bound-lemma matching: affine expressions
with rational coefficients, and constraints ``e <= 0`` / ``e == 0`` (with
``e < 0`` normalized to ``e <= -1`` since all program values are
integers).
"""

from __future__ import annotations

import enum
from fractions import Fraction
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

Coeff = Union[int, Fraction]


def _frac(value: Coeff) -> Fraction:
    return value if isinstance(value, Fraction) else Fraction(value)


class LinExpr:
    """An affine expression ``sum(coeffs[v] * v) + const``.

    Immutable; arithmetic operators build new expressions.  Variables are
    plain strings (register names, length variables like ``a#len``, or
    seed variables like ``i@seed``).
    """

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: Optional[Mapping[str, Coeff]] = None, const: Coeff = 0):
        items = {}
        if coeffs:
            for var, coeff in coeffs.items():
                f = _frac(coeff)
                if f != 0:
                    items[var] = f
        self.coeffs: Dict[str, Fraction] = items
        self.const: Fraction = _frac(const)

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def var(name: str) -> "LinExpr":
        return LinExpr({name: 1})

    @staticmethod
    def constant(value: Coeff) -> "LinExpr":
        return LinExpr(None, value)

    # -- queries ----------------------------------------------------------------

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def variables(self) -> Tuple[str, ...]:
        return tuple(sorted(self.coeffs))

    def coeff(self, var: str) -> Fraction:
        return self.coeffs.get(var, Fraction(0))

    def evaluate(self, env: Mapping[str, Coeff]) -> Fraction:
        total = self.const
        for var, coeff in self.coeffs.items():
            total += coeff * _frac(env[var])
        return total

    def substitute(self, var: str, replacement: "LinExpr") -> "LinExpr":
        """Replace ``var`` by ``replacement``."""
        if var not in self.coeffs:
            return self
        coeff = self.coeffs[var]
        rest = {v: c for v, c in self.coeffs.items() if v != var}
        return LinExpr(rest, self.const) + replacement * coeff

    def rename(self, mapping: Mapping[str, str]) -> "LinExpr":
        return LinExpr(
            {mapping.get(v, v): c for v, c in self.coeffs.items()}, self.const
        )

    # -- arithmetic ----------------------------------------------------------------

    def __add__(self, other: Union["LinExpr", Coeff]) -> "LinExpr":
        if isinstance(other, (int, Fraction)):
            return LinExpr(self.coeffs, self.const + _frac(other))
        coeffs = dict(self.coeffs)
        for var, coeff in other.coeffs.items():
            coeffs[var] = coeffs.get(var, Fraction(0)) + coeff
        return LinExpr(coeffs, self.const + other.const)

    def __radd__(self, other: Coeff) -> "LinExpr":
        return self + other

    def __neg__(self) -> "LinExpr":
        return LinExpr({v: -c for v, c in self.coeffs.items()}, -self.const)

    def __sub__(self, other: Union["LinExpr", Coeff]) -> "LinExpr":
        if isinstance(other, (int, Fraction)):
            return LinExpr(self.coeffs, self.const - _frac(other))
        return self + (-other)

    def __rsub__(self, other: Coeff) -> "LinExpr":
        return (-self) + other

    def __mul__(self, factor: Coeff) -> "LinExpr":
        f = _frac(factor)
        return LinExpr({v: c * f for v, c in self.coeffs.items()}, self.const * f)

    def __rmul__(self, factor: Coeff) -> "LinExpr":
        return self * factor

    # -- equality / hashing -----------------------------------------------------------

    def _key(self) -> Tuple:
        return (tuple(sorted(self.coeffs.items())), self.const)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LinExpr) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __str__(self) -> str:
        parts = []
        for var in sorted(self.coeffs):
            coeff = self.coeffs[var]
            if coeff == 1:
                parts.append("+ %s" % var)
            elif coeff == -1:
                parts.append("- %s" % var)
            elif coeff > 0:
                parts.append("+ %s*%s" % (coeff, var))
            else:
                parts.append("- %s*%s" % (-coeff, var))
        if self.const != 0 or not parts:
            sign = "+" if self.const >= 0 else "-"
            parts.append("%s %s" % (sign, abs(self.const)))
        text = " ".join(parts)
        return text[2:] if text.startswith("+ ") else "-" + text[2:] if text.startswith("- ") else text

    def __repr__(self) -> str:
        return "LinExpr(%s)" % self


class RelOp(enum.Enum):
    LE = "<="
    EQ = "=="


class LinCons:
    """A linear constraint ``expr <= 0`` or ``expr == 0``."""

    __slots__ = ("expr", "op")

    def __init__(self, expr: LinExpr, op: RelOp):
        self.expr = expr
        self.op = op

    # -- constructors ------------------------------------------------------------

    @staticmethod
    def le(lhs: LinExpr, rhs: Union[LinExpr, Coeff]) -> "LinCons":
        """``lhs <= rhs``."""
        return LinCons(lhs - rhs, RelOp.LE)

    @staticmethod
    def ge(lhs: LinExpr, rhs: Union[LinExpr, Coeff]) -> "LinCons":
        rhs_expr = rhs if isinstance(rhs, LinExpr) else LinExpr.constant(rhs)
        return LinCons(rhs_expr - lhs, RelOp.LE)

    @staticmethod
    def lt(lhs: LinExpr, rhs: Union[LinExpr, Coeff]) -> "LinCons":
        """``lhs < rhs`` over integers: ``lhs <= rhs - 1``."""
        return LinCons(lhs - rhs + 1, RelOp.LE)

    @staticmethod
    def gt(lhs: LinExpr, rhs: Union[LinExpr, Coeff]) -> "LinCons":
        rhs_expr = rhs if isinstance(rhs, LinExpr) else LinExpr.constant(rhs)
        return LinCons(rhs_expr - lhs + 1, RelOp.LE)

    @staticmethod
    def eq(lhs: LinExpr, rhs: Union[LinExpr, Coeff]) -> "LinCons":
        return LinCons(lhs - rhs, RelOp.EQ)

    # -- queries --------------------------------------------------------------------

    def variables(self) -> Tuple[str, ...]:
        return self.expr.variables()

    def holds(self, env: Mapping[str, Coeff]) -> bool:
        value = self.expr.evaluate(env)
        return value == 0 if self.op is RelOp.EQ else value <= 0

    def negate(self) -> "LinCons":
        """Integer negation of an inequality; equalities cannot be negated
        into a single constraint (raises)."""
        if self.op is RelOp.EQ:
            raise ValueError("cannot negate an equality into one constraint")
        # not(e <= 0)  <=>  e >= 1  <=>  -e + 1 <= 0
        return LinCons(-self.expr + 1, RelOp.LE)

    def rename(self, mapping: Mapping[str, str]) -> "LinCons":
        return LinCons(self.expr.rename(mapping), self.op)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, LinCons)
            and self.op == other.op
            and self.expr == other.expr
        )

    def __hash__(self) -> int:
        return hash((self.expr, self.op))

    def __str__(self) -> str:
        return "%s %s 0" % (self.expr, self.op.value)

    def __repr__(self) -> str:
        return "LinCons(%s)" % self


def conjunction_holds(constraints: Iterable[LinCons], env: Mapping[str, Coeff]) -> bool:
    return all(c.holds(env) for c in constraints)
