"""A convex-polyhedra abstract domain (the PPL stand-in).

Constraint-only representation: a conjunction of linear inequalities
``e <= 0`` with exact rational arithmetic.  Operations:

* projection (``forget``/``assign``) by Fourier–Motzkin elimination;
* ``bounds_of`` exactly, by eliminating every variable but a fresh one
  equated to the queried expression;
* join by *mutual-entailment weakening* — keep each side's constraints
  that the other side entails.  This over-approximates PPL's exact convex
  hull (documented substitution; sound, occasionally less precise);
* widening by the classic "keep the stable constraints" rule.

Fourier–Motzkin is worst-case exponential; a configurable cap bounds the
constraint count, and over the cap the weakest (syntactically largest)
constraints are *dropped*, which only enlarges the polyhedron — sound
for an over-approximating analysis.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from repro.domains.base import AbstractState, Bound, Domain
from repro.domains.linexpr import LinCons, LinExpr, RelOp

# Maximum number of inequalities kept per state / per elimination step.
MAX_CONSTRAINTS = 120


def _as_le(cons: LinCons) -> List[LinExpr]:
    """Normalize to a list of ``e <= 0`` left-hand sides."""
    if cons.op is RelOp.LE:
        return [cons.expr]
    return [cons.expr, -cons.expr]


def _dedupe(constraints: List[LinExpr]) -> List[LinExpr]:
    seen = set()
    out: List[LinExpr] = []
    for expr in constraints:
        # Normalize scale: divide by the gcd-ish leading magnitude so that
        # 2x <= 0 and x <= 0 coincide.
        scale: Optional[Fraction] = None
        for var in sorted(expr.coeffs):
            scale = abs(expr.coeffs[var])
            break
        if scale is None:
            scale = abs(expr.const) if expr.const != 0 else Fraction(1)
        normal = expr * (Fraction(1) / scale) if scale not in (0, 1) else expr
        key = (tuple(sorted(normal.coeffs.items())), normal.const)
        if key not in seen:
            seen.add(key)
            out.append(normal)
    return out


def _eliminate(constraints: List[LinExpr], var: str) -> List[LinExpr]:
    """Fourier–Motzkin elimination of ``var`` from ``e_i <= 0``."""
    pos: List[LinExpr] = []
    neg: List[LinExpr] = []
    rest: List[LinExpr] = []
    for expr in constraints:
        coeff = expr.coeff(var)
        if coeff > 0:
            pos.append(expr)
        elif coeff < 0:
            neg.append(expr)
        else:
            rest.append(expr)
    for p in pos:
        cp = p.coeff(var)
        for q in neg:
            cq = q.coeff(var)
            # cp > 0, cq < 0: combine to cancel var.
            combined = p * (-cq) + q * cp
            combined = LinExpr(
                {v: c for v, c in combined.coeffs.items() if v != var},
                combined.const,
            )
            rest.append(combined)
    rest = _dedupe(rest)
    if len(rest) > MAX_CONSTRAINTS:
        # Drop the syntactically heaviest constraints (soundly enlarges).
        rest.sort(key=lambda e: (len(e.coeffs), str(e)))
        rest = rest[:MAX_CONSTRAINTS]
    return rest


def _resolvents(constraints: List[LinExpr]) -> List[LinExpr]:
    """One round of pairwise Fourier–Motzkin combinations.

    Every returned ``e <= 0`` is entailed by the input system; used to
    saturate join candidates.  Bounded by MAX_CONSTRAINTS.
    """
    out: List[LinExpr] = []
    variables = sorted({v for e in constraints for v in e.coeffs})
    for var in variables:
        pos = [e for e in constraints if e.coeff(var) > 0]
        neg = [e for e in constraints if e.coeff(var) < 0]
        for p in pos:
            for q in neg:
                combined = p * (-q.coeff(var)) + q * p.coeff(var)
                combined = LinExpr(
                    {v: c for v, c in combined.coeffs.items() if v != var},
                    combined.const,
                )
                if combined.coeffs or combined.const > 0:
                    out.append(combined)
                if len(out) >= MAX_CONSTRAINTS:
                    return _dedupe(out)
    return _dedupe(out)


def _infeasible(constraints: List[LinExpr]) -> bool:
    """Exact feasibility via full elimination.  True = definitely empty."""
    work = list(constraints)
    variables = sorted({v for e in work for v in e.coeffs})
    for var in variables:
        work = _eliminate(work, var)
        for expr in work:
            if not expr.coeffs and expr.const > 0:
                return True
    return any(not e.coeffs and e.const > 0 for e in work)


class PolyhedraState(AbstractState):
    def __init__(self, constraints: Sequence[LinExpr] = (), bottom: bool = False):
        self._cons: List[LinExpr] = _dedupe(
            [c for c in constraints if c.coeffs or c.const > 0]
        )
        self._bottom = bottom
        self._feasibility: Optional[bool] = None  # cached is_bottom

    # -- lattice ------------------------------------------------------------------

    def is_bottom(self) -> bool:
        if self._bottom:
            return True
        if self._feasibility is None:
            self._feasibility = _infeasible(self._cons)
        return self._feasibility

    def join(self, other: "PolyhedraState") -> "PolyhedraState":
        if self.is_bottom():
            return other
        if other.is_bottom():
            return self
        # Mutual-entailment weakening over a *saturated* candidate set:
        # the syntactic constraints alone miss facts that are only
        # derivable (e.g. ``i <= n`` via a temp with ``i = t ∧ t <= n``),
        # so one round of Fourier–Motzkin resolvents is added to each
        # side's candidates before filtering by the other side.
        cand_self = self._cons + _resolvents(self._cons)
        cand_other = other._cons + _resolvents(other._cons)
        kept = [e for e in cand_self if other._entails_expr(e)]
        kept += [e for e in cand_other if self._entails_expr(e)]
        return PolyhedraState(kept)

    def widen(self, other: "PolyhedraState") -> "PolyhedraState":
        if self.is_bottom():
            return other
        if other.is_bottom():
            return self
        return PolyhedraState([e for e in self._cons if other._entails_expr(e)])

    def leq(self, other: "PolyhedraState") -> bool:
        if self.is_bottom():
            return True
        if other.is_bottom():
            return False
        return all(self._entails_expr(e) for e in other._cons)

    # -- internals ---------------------------------------------------------------------

    def _entails_expr(self, expr: LinExpr) -> bool:
        """Does the state entail ``expr <= 0``?  Exact via elimination."""
        _, hi = self.bounds_of(expr)
        return hi is not None and hi <= 0

    # -- transfer ---------------------------------------------------------------------

    def assign(self, var: str, expr: Optional[LinExpr]) -> "PolyhedraState":
        if self._bottom:
            return self
        if expr is None:
            return self.forget(var)
        primed = var + "'"
        cons = list(self._cons)
        # primed = expr
        cons.append(LinExpr.var(primed) - expr)
        cons.append(expr - LinExpr.var(primed))
        cons = _eliminate(cons, var)
        renamed = [e.rename({primed: var}) for e in cons]
        return PolyhedraState(renamed)

    def guard(self, cons: LinCons) -> "PolyhedraState":
        if self._bottom:
            return self
        return PolyhedraState(self._cons + _as_le(cons))

    def forget(self, var: str) -> "PolyhedraState":
        if self._bottom:
            return self
        return PolyhedraState(_eliminate(self._cons, var))

    # -- queries ---------------------------------------------------------------------

    def bounds_of(self, expr: LinExpr) -> Tuple[Bound, Bound]:
        if self.is_bottom():
            return Fraction(0), Fraction(-1)
        if not expr.coeffs:
            return expr.const, expr.const
        fresh = "@query"
        cons = list(self._cons)
        cons.append(LinExpr.var(fresh) - expr)
        cons.append(expr - LinExpr.var(fresh))
        for var in sorted({v for e in cons for v in e.coeffs} - {fresh}):
            cons = _eliminate(cons, var)
        lo: Bound = None
        hi: Bound = None
        for e in cons:
            coeff = e.coeff(fresh)
            if coeff > 0:  # coeff*fresh + const <= 0  =>  fresh <= -const/coeff
                bound = -e.const / coeff
                hi = bound if hi is None else min(hi, bound)
            elif coeff < 0:  # fresh >= -const/coeff
                bound = -e.const / coeff
                lo = bound if lo is None else max(lo, bound)
            elif e.const > 0:
                return Fraction(0), Fraction(-1)  # infeasible
        return lo, hi

    def constraints(self) -> List[LinCons]:
        if self.is_bottom():
            return [LinCons.le(LinExpr.constant(1), 0)]
        return [LinCons(e, RelOp.LE) for e in self._cons]

    def __str__(self) -> str:
        if self.is_bottom():
            return "⊥"
        if not self._cons:
            return "⊤"
        return " ∧ ".join("%s <= 0" % e for e in self._cons)


class PolyhedraDomain(Domain):
    name = "polyhedra"

    def top(self, variables: Sequence[str] = ()) -> PolyhedraState:
        return PolyhedraState()

    def bottom(self, variables: Sequence[str] = ()) -> PolyhedraState:
        return PolyhedraState(bottom=True)
