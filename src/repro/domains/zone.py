"""The zone abstract domain (difference-bound matrices).

Zones track constraints of the form ``x - y <= c`` and ``±x <= c``.
This is the workhorse domain of the reproduction: the seeded
transition-invariant analysis needs exactly relations like
``i - i@seed <= k`` (progress per iteration) and ``i - low <= -1``
(the loop guard), all of which zones represent exactly.

Representation: a DBM over an index set {0 = the constant zero, one
index per tracked variable}; ``m[i][j]`` is the tightest known upper
bound on ``v_i - v_j``, with ``dbm.INF`` (``float("inf")``) encoding
+∞ so the closure kernels can relax whole rows with ``map(min, ...)``
instead of testing ``is None`` per entry (see
:mod:`repro.domains.dbm`).  Closure is Floyd–Warshall for a cold
matrix and the exact O(n²) incremental tightening for the
one-constraint updates ``assign``/``guard`` produce — on *both* the
perf-on and perf-off paths: the incremental closure of a DBM equals
its re-closure (shortest paths are unique), so the digests are
unchanged while the dominant O(n³) loop disappears from the hot path.
Widening keeps stable bounds and drops unstable ones; following the
standard recipe, the result of widening is *not* closed (closing it
could un-do the widening and break termination), so closure is applied
lazily on queries.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.domains import dbm
from repro.domains.base import AbstractState, Bound, Domain
from repro.domains.dbm import INF, NEG_INF
from repro.domains.linexpr import LinCons, LinExpr, RelOp
from repro.perf import runtime
from repro.resilience import faults

Matrix = List[List[object]]


def _norm(value):
    """Store integral bounds as plain ints: Fraction arithmetic is ~20x
    slower than int arithmetic, and the closure kernels are the hot
    loop of the whole tool.  Mixed int/Fraction comparisons and sums
    are exact either way."""
    if isinstance(value, Fraction) and value.denominator == 1:
        return int(value)
    return value


_INDEX_CACHE: Dict[Tuple[str, ...], Dict[str, int]] = {}


def _index_for(variables: Sequence[str]) -> Dict[str, int]:
    """The name→DBM-index dict for a variable list, interned: sibling
    states over one variable set (every state of one fixpoint run) share
    a single read-only dict instead of rebuilding it per state."""
    key = tuple(variables)
    index = _INDEX_CACHE.get(key)
    if index is None:
        if len(_INDEX_CACHE) >= 10_000:
            _INDEX_CACHE.clear()
        index = {v: i + 1 for i, v in enumerate(key)}
        _INDEX_CACHE[key] = index
    return index


class ZoneState(AbstractState):
    def __init__(
        self,
        variables: Sequence[str] = (),
        matrix: Optional[Matrix] = None,
        bottom: bool = False,
        closed: bool = False,
    ):
        self._vars: List[str] = list(variables)
        self._index: Dict[str, int] = _index_for(self._vars)
        n = len(self._vars) + 1
        if matrix is None:
            matrix = [[INF] * n for _ in range(n)]
            for i in range(n):
                matrix[i][i] = 0
        self._m: Matrix = matrix
        self._bottom = bottom
        self._closed = closed
        # Perf layer (see docs/PERFORMANCE.md): the closed form of this
        # state, computed at most once, and the hashable content key used
        # by the closure/join/leq memo tables.  States are immutable
        # after construction, so both can be cached unconditionally.
        self._closure: Optional["ZoneState"] = None
        self._key_cache: Optional[object] = None
        # Single-slot identity memos for the lattice operations (perf
        # layer only).  The fixpoint engine re-joins / re-compares the
        # same *objects* across widening and narrowing iterations — the
        # transfer memo returns cached state objects, and a stable loop
        # head keeps its invariant object — so remembering the last
        # partner by identity (a strong ref, so ids stay valid) hits the
        # hot repeats without paying content-key construction.
        self._join_last: Optional[Tuple["ZoneState", "ZoneState"]] = None
        self._leq_last: Optional[Tuple["ZoneState", bool]] = None

    # -- plumbing ------------------------------------------------------------

    def _copy_matrix(self) -> Matrix:
        return [row[:] for row in self._m]

    def _dim(self) -> int:
        return len(self._vars) + 1

    def _with_vars(self, variables: Sequence[str]) -> "ZoneState":
        """This state re-indexed over a superset of variables."""
        index = self._index
        new_vars = list(self._vars)
        for var in variables:
            if var not in index:
                new_vars.append(var)
        if len(new_vars) == len(self._vars):
            return self  # identity: no new variables to add
        # New variables are appended, so the old DBM is exactly the
        # top-left block of the new one: copy rows by slicing instead of
        # entry-by-entry (this sits on the alignment hot path).
        n_old = len(self._vars) + 1
        extra = len(new_vars) - len(self._vars)
        n_new = n_old + extra
        tail: List[object] = [INF] * extra
        matrix: Matrix = [self._m[i] + tail for i in range(n_old)]
        for k in range(extra):
            row: List[object] = [INF] * n_new
            row[n_old + k] = 0
            matrix.append(row)
        return ZoneState(new_vars, matrix, self._bottom, self._closed)

    def _aligned(self, other: "ZoneState") -> Tuple["ZoneState", "ZoneState"]:
        if self._vars == other._vars:
            # Identity fast path: equal variable lists mean both DBMs
            # already share one index space — re-deriving (and possibly
            # re-ordering) them would rebuild two n×n matrices for
            # nothing, and alignment sits under every join/leq/widen.
            return self, other
        left = self._with_vars(other._vars)
        right = other._with_vars(left._vars)
        left = left._with_vars(right._vars)
        # After two extensions the variable lists contain the same names,
        # but possibly in different orders; re-order the right one.
        if left._vars != right._vars:
            right = right._reordered(left._vars)
        return left, right

    def _reordered(self, variables: Sequence[str]) -> "ZoneState":
        assert set(variables) == set(self._vars)
        old_pos = [0] + [self._index[v] for v in variables]
        matrix: Matrix = [
            [row[j] for j in old_pos] for row in (self._m[i] for i in old_pos)
        ]
        return ZoneState(variables, matrix, self._bottom, self._closed)

    def cache_key(self) -> object:
        """A hashable key over this state's full content.

        Two states with equal keys denote the same DBM (same variables in
        the same order, entry-wise equal bounds), so every derived value
        — closure, join, ordering, transfer results — is equal too.  The
        common all-int matrix packs into a single ``array('q')`` buffer
        (:func:`repro.domains.dbm.int_key`): a compact bytes key whose
        hash is one C-level pass.  Matrices holding ``Fraction`` bounds
        fall back to a normalized string rendering, under which
        ``str(Fraction(3))`` and ``str(3)`` coincide, so mixed integral
        representations of the same zone collapse onto one key.  Bytes
        and str keys can never collide (different types never compare
        equal).
        """
        key = self._key_cache
        if key is None:
            if self._bottom:
                key = "bot"
            else:
                packed = dbm.int_key(self._m)
                if packed is not None:
                    key = (",".join(self._vars), packed)
                else:
                    key = ",".join(self._vars) + "|" + "|".join(
                        ";".join(
                            "N" if e == INF else str(e) for e in row
                        )
                        for row in self._m
                    )
            self._key_cache = key
        return key

    def _close(self) -> "ZoneState":
        """Floyd–Warshall closure; detects emptiness.

        With the perf layer enabled the result is cached per instance and
        interned process-wide by content key, so re-closing an equal
        matrix (the common case across sibling trails of one refinement
        split) is a dictionary lookup.
        """
        if self._bottom or self._closed:
            return self
        cached = self._closure
        if cached is not None:
            return cached
        faults.maybe_fire("zone.closure")
        if runtime.enabled():
            table = runtime.memo_table("zone.close")
            key = self.cache_key()
            hit = table.get(key)
            if hit is not None:
                runtime.STATS.hit("zone.close")
                self._closure = hit
                return hit
            runtime.STATS.miss("zone.close")
            result = self._close_full()
            if not result._bottom:
                # Canonical-matrix interning: equal closures share one
                # row-list object (states never mutate their matrix).
                result._m = dbm.intern_rows(result.cache_key(), result._m)
            table[key] = result
            self._closure = result
            return result
        result = self._close_full()
        self._closure = result
        return result

    def _close_full(self) -> "ZoneState":
        n = self._dim()
        m = self._copy_matrix()
        if not dbm.fw_close_rows(m, n):
            return ZoneState(self._vars, None, bottom=True, closed=True)
        return ZoneState(self._vars, m, False, closed=True)

    def _tightened(self, updates: Sequence[Tuple[int, int, object]]) -> "ZoneState":
        """Exact closure after tightening individual entries of a closed
        matrix: O(n²) per update instead of the O(n³) Floyd–Warshall.

        For a closed matrix ``m`` and a new constraint ``v_a - v_b <= c``
        the closure of the tightened system is
        ``min(m[i][j], m[i][a] + c + m[b][j])`` — every path either avoids
        the new edge or uses it once (using it twice traverses the cycle
        ``b →* a → b`` of weight ``m[b][a] + c >= 0``, which cannot
        shorten anything once the emptiness pre-check has passed).  The
        system is empty iff ``m[b][a] + c < 0``.  Because the closure of
        a DBM is its unique shortest-path matrix, the result is
        *identical* to what a full re-closure would produce.  Updates are
        applied sequentially; after each one the matrix is closed again,
        so chaining stays exact.
        """
        if self._bottom:
            return self
        base = self if self._closed else self._close()
        if base._bottom:
            return base
        # Copy lazily: re-applying an already-satisfied constraint (the
        # common case when a loop guard is re-evaluated at a fixpoint)
        # touches nothing, so the no-op path allocates nothing.
        m: Optional[Matrix] = None
        n = base._dim()
        for a, b, c in updates:
            c = _norm(c)
            src = base._m if m is None else m
            if src[a][b] <= c:
                continue
            if src[b][a] + c < 0:
                return ZoneState(base._vars, None, bottom=True, closed=True)
            if m is None:
                m = base._copy_matrix()
            dbm.tighten_rows(m, n, a, b, c)
        if m is None:
            return base
        return ZoneState(base._vars, m, False, closed=True)

    def _assigned_eq(self, x: int, y: int, c) -> "ZoneState":
        """The exact closed result of ``v_x := v_y + c`` on this (closed,
        non-bottom) state, ``x != y``: havoc ``x``, then impose
        ``v_x - v_y = c``.

        On the havocked closed matrix the incremental closure of the two
        tightenings ``(x, y, c)`` and ``(y, x, -c)`` collapses to copying
        ``y``'s row and column shifted by ``±c`` — every shortest path
        through the fresh ``x`` must enter and leave it via the equality
        edges, and entries not involving ``x`` are already shortest
        (hacking through ``x`` adds the zero-weight cycle ``y→x→y``).
        O(n) instead of two O(n²) tightening sweeps; entry-wise identical
        to what ``forget`` + ``_tightened`` produce.
        """
        base = self if self._closed else self._close()
        if base._bottom:
            return base
        c = _norm(c)
        m = base._copy_matrix()
        row_x = [v + c for v in m[y]]
        row_x[x] = 0
        for row in m:
            row[x] = row[y] - c
        m[x] = row_x
        return ZoneState(base._vars, m, False, closed=True)

    # -- lattice ---------------------------------------------------------------

    def is_bottom(self) -> bool:
        if self._bottom:
            return True
        closed = self._close()
        return closed._bottom

    def join(self, other: "ZoneState") -> "ZoneState":
        # No content-keyed memo table here (unlike ``_close``): a join
        # on closed matrices is one C-level row-wise max, cheaper than
        # building content keys for operands the fixpoint usually never
        # joins again.  The identity slot still catches the repeats the
        # engine does produce (same invariant object joined with the
        # same transfer-memoized out-state every iteration).
        if runtime.enabled():
            memo = self._join_last
            if memo is not None and memo[0] is other:
                return memo[1]
            result = self._join(other)
            self._join_last = (other, result)
            return result
        return self._join(other)

    def _join(self, other: "ZoneState") -> "ZoneState":
        a = self._close()
        b = other._close()
        if a._bottom:
            return b
        if b._bottom:
            return a
        if a is b:
            return a  # identity fast path: join with itself
        a, b = a._aligned(b)
        a, b = a._close(), b._close()
        if a._m == b._m:
            # Identity fast path: equal closed matrices (the common case
            # at a fixpoint) — the entry-wise max IS either operand.
            return a
        matrix: Matrix = [
            row_a if row_a == row_b else list(map(max, row_a, row_b))
            for row_a, row_b in zip(a._m, b._m)
        ]
        return ZoneState(a._vars, matrix, False, closed=True)

    def widen(self, other: "ZoneState") -> "ZoneState":
        old = self._close()
        new = other._close()
        if old._bottom:
            return new
        if new._bottom:
            return old
        old, new = old._aligned(new)
        old, new = old._close(), new._close()
        n = old._dim()
        matrix: Matrix = [
            # Keep stable bounds; drop bounds the new state exceeds.
            [o if (o != INF and w <= o) else INF for o, w in zip(row_o, row_n)]
            for row_o, row_n in zip(old._m, new._m)
        ]
        for i in range(n):
            matrix[i][i] = 0
        # NOT closed: closing a widened zone can reintroduce dropped
        # bounds and break termination.
        return ZoneState(old._vars, matrix, False, closed=False)

    def leq(self, other: "ZoneState") -> bool:
        # Identity slot only, for the same reason as ``join``: the
        # early-out row comparison is cheaper than content-keying both
        # operands.
        if runtime.enabled():
            memo = self._leq_last
            if memo is not None and memo[0] is other:
                return memo[1]
            result = self._leq(other)
            self._leq_last = (other, result)
            return result
        return self._leq(other)

    def _leq(self, other: "ZoneState") -> bool:
        a = self._close()
        if a._bottom:
            return True
        b = other._close()
        if b._bottom:
            return False
        if a is b:
            return True
        a, b = a._aligned(b)
        a, b = a._close(), b._close()
        for row_a, row_b in zip(a._m, b._m):
            if row_a == row_b:
                continue  # equal rows cannot violate the ordering
            for x, y in zip(row_a, row_b):
                if x > y:
                    return False
        return True

    # -- transfer -----------------------------------------------------------------

    def assign(self, var: str, expr: Optional[LinExpr]) -> "ZoneState":
        if self._bottom:
            return self
        state = self._with_vars([var])._close()
        if state._bottom:
            return state
        if expr is None:
            return state.forget(var)
        coeffs = expr.coeffs
        x = state._index[var]
        if not coeffs:
            # var := c is var := zero + c (index 0 is the constant zero).
            return state._assigned_eq(x, 0, expr.const)
        if len(coeffs) == 1:
            (src, coeff), = coeffs.items()
            if coeff == 1 and src == var:
                # var := var + c : shift the row/column.
                c = _norm(expr.const)
                m = state._copy_matrix()
                n = state._dim()
                row_x = m[x]
                for j in range(n):
                    if j != x:
                        row_x[j] = row_x[j] + c
                        m[j][x] = m[j][x] - c
                return ZoneState(state._vars, m, False, closed=True)
            if coeff == 1 and src != var:
                # var := src + c
                state = state._with_vars([src])._close()
                return state._assigned_eq(
                    state._index[var], state._index[src], expr.const
                )
        # General affine: havoc + interval bounds of the rhs.
        lo, hi = state.bounds_of(expr)
        result = state.forget(var)
        x = result._index[var]
        updates: List[Tuple[int, int, object]] = []
        if hi is not None:
            updates.append((x, 0, hi))
        if lo is not None:
            updates.append((0, x, -lo))
        return result._tightened(updates) if updates else result

    def guard(self, cons: LinCons) -> "ZoneState":
        if self._bottom:
            return self
        if cons.op is RelOp.EQ:
            return self.guard(LinCons(cons.expr, RelOp.LE)).guard(
                LinCons(-cons.expr, RelOp.LE)
            )
        expr = cons.expr
        state = self._with_vars(list(expr.coeffs))._close()
        if state._bottom:
            return state
        coeffs = expr.coeffs
        updates: List[Tuple[int, int, object]] = []
        handled = False
        items = sorted(coeffs.items())
        if len(items) == 1:
            (x_name, coeff), = items
            x = state._index[x_name]
            if coeff == 1:
                updates.append((x, 0, -expr.const))  # x <= -c
                handled = True
            elif coeff == -1:
                updates.append((0, x, -expr.const))  # -x <= -c
                handled = True
        elif len(items) == 2:
            (a_name, ca), (b_name, cb) = items
            if ca == 1 and cb == -1:
                updates.append(
                    (state._index[a_name], state._index[b_name], -expr.const)
                )
                handled = True
            elif ca == -1 and cb == 1:
                updates.append(
                    (state._index[b_name], state._index[a_name], -expr.const)
                )
                handled = True
        if not handled:
            # Sound fallback: per-variable interval refinement.
            closed = state
            lo, _ = closed.bounds_of(expr)
            if lo is not None and lo > 0:
                return ZoneState(state._vars, None, bottom=True, closed=True)
            for var, coeff in coeffs.items():
                rest = LinExpr(
                    {v: c for v, c in coeffs.items() if v != var}, expr.const
                )
                rest_lo, _ = closed.bounds_of(rest)
                if rest_lo is None:
                    continue
                limit = -rest_lo / coeff
                x = state._index[var]
                if coeff > 0:
                    updates.append((x, 0, limit))
                else:
                    updates.append((0, x, -limit))
        return state._tightened(updates) if updates else state

    def forget(self, var: str) -> "ZoneState":
        if self._bottom:
            return self
        if var not in self._index:
            return self
        state = self._close()
        if state._bottom:
            return state
        m = state._copy_matrix()
        x = state._index[var]
        n = state._dim()
        row_x = m[x]
        for j in range(n):
            row_x[j] = INF
            m[j][x] = INF
        row_x[x] = 0
        return ZoneState(state._vars, m, False, closed=True)

    # -- queries -----------------------------------------------------------------------

    def bounds_of(self, expr: LinExpr) -> Tuple[Bound, Bound]:
        state = self._close()
        if state._bottom:
            return Fraction(0), Fraction(-1)
        for var in expr.coeffs:
            if var not in state._index:
                return (None, None)
        # Decompose the expression greedily into *difference pairs*
        # (positive-coefficient var matched with a negative one), bounded
        # by the DBM entries, then unary leftovers.  Pairs whose names
        # differ only by a suffix (x vs x@pre / x@seed) are matched first:
        # seeded transition queries like (low - i) - (low@pre - i@pre)
        # become exact this way.
        pos: Dict[str, Fraction] = {}
        neg: Dict[str, Fraction] = {}
        for var, coeff in expr.coeffs.items():
            if coeff > 0:
                pos[var] = coeff
            else:
                neg[var] = -coeff
        # Accumulate with the ±∞ encodings; convert to the None API at
        # the end.  Upper-bound terms are never -∞ and lower-bound terms
        # never +∞, so the sums cannot produce inf + (-inf).
        lo = expr.const
        hi = expr.const

        def base(name: str) -> str:
            return name.split("@", 1)[0]

        def consume_pair(a: str, b: str) -> None:
            """Account for t * (a - b) where t = min available amounts."""
            nonlocal lo, hi
            t = min(pos[a], neg[b])
            i, j = state._index[a], state._index[b]
            hi = hi + t * state._m[i][j]
            lo = lo + t * -state._m[j][i]
            pos[a] -= t
            neg[b] -= t
            if pos[a] == 0:
                del pos[a]
            if neg[b] == 0:
                del neg[b]

        # First pass: same-base pairs (x with x@pre); second: any pairs
        # with a finite difference bound; then unary leftovers.
        for a in sorted(pos):
            if a not in pos:
                continue
            for b in sorted(neg):
                if a in pos and b in neg and base(a) == base(b):
                    consume_pair(a, b)
        for a in sorted(pos):
            for b in sorted(neg):
                if a in pos and b in neg:
                    i, j = state._index[a], state._index[b]
                    if state._m[i][j] != INF or state._m[j][i] != INF:
                        consume_pair(a, b)
        for var, amount in sorted(pos.items()):
            x = state._index[var]
            hi = hi + amount * state._m[x][0]
            lo = lo + amount * -state._m[0][x]
        for var, amount in sorted(neg.items()):
            x = state._index[var]
            hi = hi + amount * state._m[0][x]
            lo = lo + amount * -state._m[x][0]
        return (None if lo == NEG_INF else lo, None if hi == INF else hi)

    def constraints(self) -> List[LinCons]:
        state = self._close()
        if state._bottom:
            return [LinCons.le(LinExpr.constant(1), 0)]
        out: List[LinCons] = []
        n = state._dim()
        names = ["0"] + state._vars
        for i in range(n):
            for j in range(n):
                bound = state._m[i][j]
                if i == j or bound == INF:
                    continue
                if i == 0:
                    expr = -LinExpr.var(names[j])
                elif j == 0:
                    expr = LinExpr.var(names[i])
                else:
                    expr = LinExpr.var(names[i]) - LinExpr.var(names[j])
                out.append(LinCons.le(expr, bound))
        return out

    def __str__(self) -> str:
        if self.is_bottom():
            return "⊥"
        cons = self.constraints()
        return " ∧ ".join(str(c) for c in cons) if cons else "⊤"


class ZoneDomain(Domain):
    name = "zone"

    def top(self, variables: Sequence[str] = ()) -> ZoneState:
        return ZoneState(variables, closed=True)

    def bottom(self, variables: Sequence[str] = ()) -> ZoneState:
        return ZoneState(variables, None, bottom=True, closed=True)
