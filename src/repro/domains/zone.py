"""The zone abstract domain (difference-bound matrices).

Zones track constraints of the form ``x - y <= c`` and ``±x <= c``.
This is the workhorse domain of the reproduction: the seeded
transition-invariant analysis needs exactly relations like
``i - i@seed <= k`` (progress per iteration) and ``i - low <= -1``
(the loop guard), all of which zones represent exactly.

Representation: a DBM over an index set {0 = the constant zero, one
index per tracked variable}; ``m[i][j]`` is the tightest known upper
bound on ``v_i - v_j`` (None = +oo).  Closure is Floyd–Warshall.
Widening keeps stable bounds and drops unstable ones; following the
standard recipe, the result of widening is *not* closed (closing it
could un-do the widening and break termination), so closure is applied
lazily on queries.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.domains.base import AbstractState, Bound, Domain
from repro.domains.linexpr import LinCons, LinExpr, RelOp
from repro.perf import runtime
from repro.resilience import faults

Matrix = List[List[Bound]]


def _norm(value):
    """Store integral bounds as plain ints: Fraction arithmetic is ~20x
    slower than int arithmetic, and the Floyd-Warshall closure is the
    hot loop of the whole tool.  Mixed int/Fraction comparisons and
    sums are exact either way."""
    if isinstance(value, Fraction) and value.denominator == 1:
        return int(value)
    return value


def _min_bound(a: Bound, b: Bound) -> Bound:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _max_bound(a: Bound, b: Bound) -> Bound:
    if a is None or b is None:
        return None
    return max(a, b)


def _add_bound(a: Bound, b: Bound) -> Bound:
    if a is None or b is None:
        return None
    return a + b


class ZoneState(AbstractState):
    def __init__(
        self,
        variables: Sequence[str] = (),
        matrix: Optional[Matrix] = None,
        bottom: bool = False,
        closed: bool = False,
    ):
        self._vars: List[str] = list(variables)
        self._index: Dict[str, int] = {v: i + 1 for i, v in enumerate(self._vars)}
        n = len(self._vars) + 1
        if matrix is None:
            matrix = [[None] * n for _ in range(n)]
            for i in range(n):
                matrix[i][i] = 0
        self._m: Matrix = matrix
        self._bottom = bottom
        self._closed = closed
        # Perf layer (see docs/PERFORMANCE.md): the closed form of this
        # state, computed at most once, and the hashable content key used
        # by the closure/join/leq memo tables.  States are immutable
        # after construction, so both can be cached unconditionally.
        self._closure: Optional["ZoneState"] = None
        self._key_cache: Optional[tuple] = None

    # -- plumbing ------------------------------------------------------------

    def _copy_matrix(self) -> Matrix:
        return [row[:] for row in self._m]

    def _dim(self) -> int:
        return len(self._vars) + 1

    def _with_vars(self, variables: Sequence[str]) -> "ZoneState":
        """This state re-indexed over a superset of variables."""
        new_vars = list(self._vars)
        for var in variables:
            if var not in self._index:
                new_vars.append(var)
        if len(new_vars) == len(self._vars):
            return self
        # New variables are appended, so the old DBM is exactly the
        # top-left block of the new one: copy rows by slicing instead of
        # entry-by-entry (this sits on the alignment hot path).
        n_old = len(self._vars) + 1
        extra = len(new_vars) - len(self._vars)
        n_new = n_old + extra
        tail: List[Optional[Bound]] = [None] * extra
        matrix: Matrix = [self._m[i] + tail for i in range(n_old)]
        for k in range(extra):
            row: List[Optional[Bound]] = [None] * n_new
            row[n_old + k] = 0
            matrix.append(row)
        return ZoneState(new_vars, matrix, self._bottom, self._closed)

    def _aligned(self, other: "ZoneState") -> Tuple["ZoneState", "ZoneState"]:
        left = self._with_vars(other._vars)
        right = other._with_vars(left._vars)
        left = left._with_vars(right._vars)
        # After two extensions the variable lists contain the same names,
        # but possibly in different orders; re-order the right one.
        if left._vars != right._vars:
            right = right._reordered(left._vars)
        return left, right

    def _reordered(self, variables: Sequence[str]) -> "ZoneState":
        assert set(variables) == set(self._vars)
        old_pos = [0] + [self._index[v] for v in variables]
        matrix: Matrix = [
            [row[j] for j in old_pos] for row in (self._m[i] for i in old_pos)
        ]
        return ZoneState(variables, matrix, self._bottom, self._closed)

    def cache_key(self) -> str:
        """A hashable key over this state's full content.

        Two states with equal keys denote the same DBM (same variables in
        the same order, entry-wise equal bounds), so every derived value
        — closure, join, ordering, transfer results — is equal too.  The
        key is a *string* on purpose: ``str`` objects cache their hash,
        whereas a nested tuple of ``Fraction`` bounds would re-run the
        (pure-Python, slow) ``Fraction.__hash__`` on every table lookup.
        ``str(Fraction(3))`` and ``str(3)`` coincide, so mixed integral
        representations of the same zone collapse onto one key.
        """
        key = self._key_cache
        if key is None:
            if self._bottom:
                key = "bot"
            else:
                # Fast path: a Fraction-free matrix (ints and None, the
                # overwhelmingly common case) keys by its C-level repr.
                # ``repr`` is injective on int/None entries, and the
                # "R!" prefix cannot collide with the slow format (no
                # variable name contains "!"), so equal keys still imply
                # equal DBMs.  Matrices holding Fractions keep the
                # normalized str() rendering so integral Fractions and
                # ints collapse onto one key.
                body = repr(self._m)
                if "Fraction" not in body:
                    key = "R!" + ",".join(self._vars) + "|" + body
                else:
                    key = ",".join(self._vars) + "|" + "|".join(
                        ";".join("N" if e is None else str(e) for e in row)
                        for row in self._m
                    )
            self._key_cache = key
        return key

    def _close(self) -> "ZoneState":
        """Floyd–Warshall closure; detects emptiness.

        With the perf layer enabled the result is cached per instance and
        interned process-wide by content key, so re-closing an equal
        matrix (the common case across sibling trails of one refinement
        split) is a dictionary lookup.
        """
        if self._bottom or self._closed:
            return self
        cached = self._closure
        if cached is not None:
            return cached
        faults.maybe_fire("zone.closure")
        if runtime.enabled():
            table = runtime.memo_table("zone.close")
            key = self.cache_key()
            hit = table.get(key)
            if hit is not None:
                runtime.STATS.hit("zone.close")
                self._closure = hit
                return hit
            runtime.STATS.miss("zone.close")
            result = self._close_full()
            table[key] = result
            self._closure = result
            return result
        result = self._close_full()
        self._closure = result
        return result

    def _close_full(self) -> "ZoneState":
        n = self._dim()
        m = self._copy_matrix()
        for k in range(n):
            row_k = m[k]
            for i in range(n):
                mik = m[i][k]
                if mik is None:
                    continue
                row_i = m[i]
                for j in range(n):
                    mkj = row_k[j]
                    if mkj is None:
                        continue
                    candidate = mik + mkj
                    if row_i[j] is None or candidate < row_i[j]:
                        row_i[j] = candidate
        for i in range(n):
            if m[i][i] is not None and m[i][i] < 0:
                return ZoneState(self._vars, None, bottom=True, closed=True)
            m[i][i] = 0
        return ZoneState(self._vars, m, False, closed=True)

    def _tightened(self, updates: Sequence[Tuple[int, int, Bound]]) -> "ZoneState":
        """Exact closure after tightening individual entries of a closed
        matrix: O(n²) per update instead of the O(n³) Floyd–Warshall.

        For a closed matrix ``m`` and a new constraint ``v_a - v_b <= c``
        the closure of the tightened system is
        ``min(m[i][j], m[i][a] + c + m[b][j])`` — every path either avoids
        the new edge or uses it once (using it twice traverses the cycle
        ``b →* a → b`` of weight ``m[b][a] + c >= 0``, which cannot
        shorten anything once the emptiness pre-check has passed).  The
        system is empty iff ``m[b][a] + c < 0``.  Because the closure of
        a DBM is its unique shortest-path matrix, the result is
        *identical* to what a full re-closure would produce.  Updates are
        applied sequentially; after each one the matrix is closed again,
        so chaining stays exact.
        """
        if self._bottom:
            return self
        base = self if self._closed else self._close()
        if base._bottom:
            return base
        m = base._copy_matrix()
        n = base._dim()
        # Normalize the diagonal to plain int 0 (``forget`` leaves
        # ``Fraction(0)`` there); otherwise every sum through a diagonal
        # entry silently promotes the whole matrix to Fraction
        # arithmetic, which is ~20x slower than int arithmetic.
        for i in range(n):
            m[i][i] = 0
        for a, b, c in updates:
            c = _norm(c)
            cur = m[a][b]
            if cur is not None and cur <= c:
                continue
            back = m[b][a]
            if back is not None and back + c < 0:
                return ZoneState(base._vars, None, bottom=True, closed=True)
            row_b = m[b]
            for i in range(n):
                mia = m[i][a]
                if mia is None:
                    continue
                head = mia + c
                row_i = m[i]
                for j in range(n):
                    mbj = row_b[j]
                    if mbj is None:
                        continue
                    cand = head + mbj
                    if row_i[j] is None or cand < row_i[j]:
                        row_i[j] = cand
        return ZoneState(base._vars, m, False, closed=True)

    # -- lattice ---------------------------------------------------------------

    def is_bottom(self) -> bool:
        if self._bottom:
            return True
        closed = self._close()
        return closed._bottom

    def join(self, other: "ZoneState") -> "ZoneState":
        if runtime.enabled():
            table = runtime.memo_table("zone.join")
            key = (self.cache_key(), other.cache_key())
            hit = table.get(key)
            if hit is not None:
                runtime.STATS.hit("zone.join")
                return hit
            runtime.STATS.miss("zone.join")
            result = self._join(other)
            table[key] = result
            return result
        return self._join(other)

    def _join(self, other: "ZoneState") -> "ZoneState":
        a = self._close()
        b = other._close()
        if a._bottom:
            return b
        if b._bottom:
            return a
        a, b = a._aligned(b)
        a, b = a._close(), b._close()
        matrix: Matrix = [
            list(map(_max_bound, row_a, row_b)) for row_a, row_b in zip(a._m, b._m)
        ]
        return ZoneState(a._vars, matrix, False, closed=True)

    def widen(self, other: "ZoneState") -> "ZoneState":
        old = self._close()
        new = other._close()
        if old._bottom:
            return new
        if new._bottom:
            return old
        old, new = old._aligned(new)
        old, new = old._close(), new._close()
        n = old._dim()
        matrix: Matrix = [[None] * n for _ in range(n)]
        for i in range(n):
            for j in range(n):
                o, w = old._m[i][j], new._m[i][j]
                # Keep stable bounds; drop bounds the new state exceeds.
                if o is not None and w is not None and w <= o:
                    matrix[i][j] = o
                else:
                    matrix[i][j] = None
        for i in range(n):
            matrix[i][i] = 0
        # NOT closed: closing a widened zone can reintroduce dropped
        # bounds and break termination.
        return ZoneState(old._vars, matrix, False, closed=False)

    def leq(self, other: "ZoneState") -> bool:
        if runtime.enabled():
            table = runtime.memo_table("zone.leq")
            key = (self.cache_key(), other.cache_key())
            hit = table.get(key)
            if hit is not None:
                runtime.STATS.hit("zone.leq")
                return hit
            runtime.STATS.miss("zone.leq")
            result = self._leq(other)
            table[key] = result
            return result
        return self._leq(other)

    def _leq(self, other: "ZoneState") -> bool:
        a = self._close()
        if a._bottom:
            return True
        b = other._close()
        if b._bottom:
            return False
        a, b = a._aligned(b)
        a, b = a._close(), b._close()
        n = a._dim()
        for i in range(n):
            for j in range(n):
                bound_b = b._m[i][j]
                if bound_b is None:
                    continue
                bound_a = a._m[i][j]
                if bound_a is None or bound_a > bound_b:
                    return False
        return True

    # -- transfer -----------------------------------------------------------------

    def assign(self, var: str, expr: Optional[LinExpr]) -> "ZoneState":
        if self._bottom:
            return self
        state = self._with_vars([var])._close()
        if state._bottom:
            return state
        if expr is None:
            return state.forget(var)
        coeffs = expr.coeffs
        x = state._index[var]
        if not coeffs:
            # var := c
            if runtime.enabled():
                # Havoc keeps the matrix closed; then two incremental
                # tightenings replace the full re-closure.
                havoc = state.forget(var)
                x = havoc._index[var]
                return havoc._tightened(
                    [(x, 0, expr.const), (0, x, -expr.const)]
                )
            m = state._copy_matrix()
            n = state._dim()
            for j in range(n):
                m[x][j] = None
                m[j][x] = None
            m[x][x] = 0
            m[x][0] = _norm(expr.const)
            m[0][x] = _norm(-expr.const)
            return ZoneState(state._vars, m, False, closed=False)._close()
        if len(coeffs) == 1:
            (src, coeff), = coeffs.items()
            if coeff == 1 and src == var:
                # var := var + c : shift the row/column.
                c = _norm(expr.const)
                m = state._copy_matrix()
                n = state._dim()
                for j in range(n):
                    if j != x:
                        m[x][j] = _add_bound(m[x][j], c)
                        m[j][x] = _add_bound(m[j][x], -c)
                return ZoneState(state._vars, m, False, closed=True)
            if coeff == 1 and src != var:
                state = state._with_vars([src])._close()
                x = state._index[var]
                y = state._index[src]
                if runtime.enabled():
                    havoc = state.forget(var)
                    x = havoc._index[var]
                    y = havoc._index[src]
                    return havoc._tightened(
                        [(x, y, expr.const), (y, x, -expr.const)]
                    )
                m = state._copy_matrix()
                n = state._dim()
                for j in range(n):
                    m[x][j] = None
                    m[j][x] = None
                m[x][x] = 0
                m[x][y] = _norm(expr.const)
                m[y][x] = _norm(-expr.const)
                return ZoneState(state._vars, m, False, closed=False)._close()
        # General affine: havoc + interval bounds of the rhs.
        lo, hi = state.bounds_of(expr)
        result = state.forget(var)
        x = result._index[var]
        if runtime.enabled():
            updates: List[Tuple[int, int, Bound]] = []
            if hi is not None:
                updates.append((x, 0, hi))
            if lo is not None:
                updates.append((0, x, -lo))
            return result._tightened(updates) if updates else result
        m = result._copy_matrix()
        m[x][0] = _norm(hi) if hi is not None else None
        m[0][x] = None if lo is None else _norm(-lo)
        return ZoneState(result._vars, m, False, closed=False)._close()

    def guard(self, cons: LinCons) -> "ZoneState":
        if self._bottom:
            return self
        if cons.op is RelOp.EQ:
            return self.guard(LinCons(cons.expr, RelOp.LE)).guard(
                LinCons(-cons.expr, RelOp.LE)
            )
        expr = cons.expr
        state = self._with_vars(list(expr.coeffs))._close()
        if state._bottom:
            return state
        coeffs = expr.coeffs
        updates: List[Tuple[int, int, Bound]] = []
        handled = False
        items = sorted(coeffs.items())
        if len(items) == 1:
            (x_name, coeff), = items
            x = state._index[x_name]
            if coeff == 1:
                updates.append((x, 0, -expr.const))  # x <= -c
                handled = True
            elif coeff == -1:
                updates.append((0, x, -expr.const))  # -x <= -c
                handled = True
        elif len(items) == 2:
            (a_name, ca), (b_name, cb) = items
            if ca == 1 and cb == -1:
                updates.append(
                    (state._index[a_name], state._index[b_name], -expr.const)
                )
                handled = True
            elif ca == -1 and cb == 1:
                updates.append(
                    (state._index[b_name], state._index[a_name], -expr.const)
                )
                handled = True
        if not handled:
            # Sound fallback: per-variable interval refinement.
            closed = state
            lo, _ = closed.bounds_of(expr)
            if lo is not None and lo > 0:
                return ZoneState(state._vars, None, bottom=True, closed=True)
            for var, coeff in coeffs.items():
                rest = LinExpr(
                    {v: c for v, c in coeffs.items() if v != var}, expr.const
                )
                rest_lo, _ = closed.bounds_of(rest)
                if rest_lo is None:
                    continue
                limit = -rest_lo / coeff
                x = state._index[var]
                if coeff > 0:
                    updates.append((x, 0, limit))
                else:
                    updates.append((0, x, -limit))
        if runtime.enabled():
            return state._tightened(updates) if updates else state
        m = state._copy_matrix()
        for i, j, bound in updates:
            bound = _norm(bound)
            if m[i][j] is None or bound < m[i][j]:
                m[i][j] = bound
        return ZoneState(state._vars, m, False, closed=False)._close()

    def forget(self, var: str) -> "ZoneState":
        if self._bottom:
            return self
        if var not in self._index:
            return self
        state = self._close()
        if state._bottom:
            return state
        m = state._copy_matrix()
        x = state._index[var]
        n = state._dim()
        for j in range(n):
            m[x][j] = None
            m[j][x] = None
        m[x][x] = 0 if runtime.enabled() else Fraction(0)
        return ZoneState(state._vars, m, False, closed=True)

    # -- queries -----------------------------------------------------------------------

    def bounds_of(self, expr: LinExpr) -> Tuple[Bound, Bound]:
        state = self._close()
        if state._bottom:
            return Fraction(0), Fraction(-1)
        for var in expr.coeffs:
            if var not in state._index:
                return (None, None)
        # Decompose the expression greedily into *difference pairs*
        # (positive-coefficient var matched with a negative one), bounded
        # by the DBM entries, then unary leftovers.  Pairs whose names
        # differ only by a suffix (x vs x@pre / x@seed) are matched first:
        # seeded transition queries like (low - i) - (low@pre - i@pre)
        # become exact this way.
        pos: Dict[str, Fraction] = {}
        neg: Dict[str, Fraction] = {}
        for var, coeff in expr.coeffs.items():
            if coeff > 0:
                pos[var] = coeff
            else:
                neg[var] = -coeff
        lo: Bound = expr.const
        hi: Bound = expr.const

        def base(name: str) -> str:
            return name.split("@", 1)[0]

        def consume_pair(a: str, b: str) -> None:
            """Account for t * (a - b) where t = min available amounts."""
            nonlocal lo, hi
            t = min(pos[a], neg[b])
            i, j = state._index[a], state._index[b]
            hi_ab = state._m[i][j]
            lo_ab = None if state._m[j][i] is None else -state._m[j][i]
            hi = _add_bound(hi, None if hi_ab is None else t * hi_ab)
            lo = _add_bound(lo, None if lo_ab is None else t * lo_ab)
            pos[a] -= t
            neg[b] -= t
            if pos[a] == 0:
                del pos[a]
            if neg[b] == 0:
                del neg[b]

        # First pass: same-base pairs (x with x@pre); second: any pairs
        # with a finite difference bound; then unary leftovers.
        for a in sorted(pos):
            if a not in pos:
                continue
            for b in sorted(neg):
                if a in pos and b in neg and base(a) == base(b):
                    consume_pair(a, b)
        for a in sorted(pos):
            for b in sorted(neg):
                if a in pos and b in neg:
                    i, j = state._index[a], state._index[b]
                    if state._m[i][j] is not None or state._m[j][i] is not None:
                        consume_pair(a, b)
        for var, amount in sorted(pos.items()):
            x = state._index[var]
            var_hi = state._m[x][0]
            var_lo = None if state._m[0][x] is None else -state._m[0][x]
            hi = _add_bound(hi, None if var_hi is None else amount * var_hi)
            lo = _add_bound(lo, None if var_lo is None else amount * var_lo)
        for var, amount in sorted(neg.items()):
            x = state._index[var]
            var_hi = state._m[x][0]
            var_lo = None if state._m[0][x] is None else -state._m[0][x]
            hi = _add_bound(hi, None if var_lo is None else amount * -var_lo)
            lo = _add_bound(lo, None if var_hi is None else amount * -var_hi)
        return lo, hi

    def constraints(self) -> List[LinCons]:
        state = self._close()
        if state._bottom:
            return [LinCons.le(LinExpr.constant(1), 0)]
        out: List[LinCons] = []
        n = state._dim()
        names = ["0"] + state._vars
        for i in range(n):
            for j in range(n):
                if i == j or state._m[i][j] is None:
                    continue
                bound = state._m[i][j]
                if i == 0:
                    expr = -LinExpr.var(names[j])
                elif j == 0:
                    expr = LinExpr.var(names[i])
                else:
                    expr = LinExpr.var(names[i]) - LinExpr.var(names[j])
                out.append(LinCons.le(expr, bound))
        return out

    def __str__(self) -> str:
        if self.is_bottom():
            return "⊥"
        cons = self.constraints()
        return " ∧ ".join(str(c) for c in cons) if cons else "⊤"


class ZoneDomain(Domain):
    name = "zone"

    def top(self, variables: Sequence[str] = ()) -> ZoneState:
        return ZoneState(variables, closed=True)

    def bottom(self, variables: Sequence[str] = ()) -> ZoneState:
        return ZoneState(variables, None, bottom=True, closed=True)
