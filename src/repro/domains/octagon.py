"""The octagon abstract domain (Miné).

Octagons track constraints of the form ``±x ± y <= c``, strictly more
precise than zones (which lack the ``x + y <= c`` forms).  Used as the
default "PPL-grade" relational domain of the reproduction and compared
against zones in the domain-ablation benchmark.

Representation: a DBM over 2n indices; variable ``v`` with index ``k``
contributes ``V[2k] = +v`` and ``V[2k+1] = -v``.  ``m[i][j]`` bounds
``V_i - V_j``.  The *coherence* invariant ``m[i][j] == m[bar(j)][bar(i)]``
(where ``bar`` flips the low bit) is maintained by all operations.
Strong closure = shortest paths + the strengthening step
``m[i][j] = min(m[i][j], (m[i][bar(i)] + m[bar(j)][j]) / 2)``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.domains import dbm
from repro.domains.base import AbstractState, Bound, Domain
from repro.domains.linexpr import LinCons, LinExpr, RelOp

Matrix = List[List[Bound]]


def _norm(value):
    """Integral bounds as plain ints (see the zone domain's rationale)."""
    if isinstance(value, Fraction) and value.denominator == 1:
        return int(value)
    return value


def _bar(i: int) -> int:
    return i ^ 1


def _add(a: Bound, b: Bound) -> Bound:
    if a is None or b is None:
        return None
    return a + b


def _minb(a: Bound, b: Bound) -> Bound:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _maxb(a: Bound, b: Bound) -> Bound:
    if a is None or b is None:
        return None
    return max(a, b)


class OctagonState(AbstractState):
    def __init__(
        self,
        variables: Sequence[str] = (),
        matrix: Optional[Matrix] = None,
        bottom: bool = False,
        closed: bool = False,
    ):
        self._vars: List[str] = list(variables)
        self._index: Dict[str, int] = {v: 2 * i for i, v in enumerate(self._vars)}
        n = 2 * len(self._vars)
        if matrix is None:
            matrix = [[None] * n for _ in range(n)]
            for i in range(n):
                matrix[i][i] = 0
        self._m = matrix
        self._bottom = bottom
        self._closed = closed

    # -- plumbing -------------------------------------------------------------

    def _dim(self) -> int:
        return 2 * len(self._vars)

    def _copy_matrix(self) -> Matrix:
        return [row[:] for row in self._m]

    def _with_vars(self, variables: Sequence[str]) -> "OctagonState":
        new_vars = list(self._vars)
        for var in variables:
            if var not in self._index:
                new_vars.append(var)
        if len(new_vars) == len(self._vars):
            return self
        n_new = 2 * len(new_vars)
        matrix: Matrix = [[None] * n_new for _ in range(n_new)]
        for i in range(n_new):
            matrix[i][i] = 0
        n_old = self._dim()
        for i in range(n_old):
            for j in range(n_old):
                matrix[i][j] = self._m[i][j]
        return OctagonState(new_vars, matrix, self._bottom, self._closed)

    def _reordered(self, variables: Sequence[str]) -> "OctagonState":
        assert set(variables) == set(self._vars)
        n = 2 * len(variables)
        matrix: Matrix = [[None] * n for _ in range(n)]
        pos: List[int] = []
        for var in variables:
            pos.append(self._index[var])
            pos.append(self._index[var] + 1)
        for i in range(n):
            for j in range(n):
                matrix[i][j] = self._m[pos[i]][pos[j]]
        return OctagonState(variables, matrix, self._bottom, self._closed)

    def _aligned(self, other: "OctagonState") -> Tuple["OctagonState", "OctagonState"]:
        if self._vars == other._vars:
            # Identity fast path: same index space already (see the zone
            # domain) — alignment sits under every join/leq/widen.
            return self, other
        left = self._with_vars(other._vars)
        right = other._with_vars(left._vars)
        left = left._with_vars(right._vars)
        if left._vars != right._vars:
            right = right._reordered(left._vars)
        return left, right

    def _close(self) -> "OctagonState":
        if self._bottom or self._closed:
            return self
        n = self._dim()
        # Strong closure runs on the flat INF-encoded kernel
        # (repro.domains.dbm): alternating shortest-path and
        # strengthening rounds, identical entry-wise to the reference
        # triple loop.  Division stays exact: even ints halve to ints,
        # odd ones become Fractions.
        m = dbm.rows_from_opt(self._m)
        if not dbm.octagon_close_rows(m, n):
            return OctagonState(self._vars, None, bottom=True, closed=True)
        return OctagonState(self._vars, dbm.rows_to_opt(m), False, closed=True)

    def _set(self, m: Matrix, i: int, j: int, bound) -> None:
        """Tighten m[i][j] (and its coherent mirror) to ``bound``."""
        bound = _norm(bound)
        if m[i][j] is None or bound < m[i][j]:
            m[i][j] = bound
        bi, bj = _bar(j), _bar(i)
        if m[bi][bj] is None or bound < m[bi][bj]:
            m[bi][bj] = bound

    # -- lattice -----------------------------------------------------------------

    def is_bottom(self) -> bool:
        return self._close()._bottom

    def join(self, other: "OctagonState") -> "OctagonState":
        a, b = self._close(), other._close()
        if a._bottom:
            return b
        if b._bottom:
            return a
        a, b = a._aligned(b)
        a, b = a._close(), b._close()
        n = a._dim()
        matrix = [[_maxb(a._m[i][j], b._m[i][j]) for j in range(n)] for i in range(n)]
        return OctagonState(a._vars, matrix, False, closed=True)

    def widen(self, other: "OctagonState") -> "OctagonState":
        old, new = self._close(), other._close()
        if old._bottom:
            return new
        if new._bottom:
            return old
        old, new = old._aligned(new)
        old, new = old._close(), new._close()
        n = old._dim()
        matrix: Matrix = [[None] * n for _ in range(n)]
        for i in range(n):
            for j in range(n):
                o, w = old._m[i][j], new._m[i][j]
                matrix[i][j] = o if (o is not None and w is not None and w <= o) else None
        for i in range(n):
            matrix[i][i] = 0
        return OctagonState(old._vars, matrix, False, closed=False)

    def leq(self, other: "OctagonState") -> bool:
        a = self._close()
        if a._bottom:
            return True
        b = other._close()
        if b._bottom:
            return False
        a, b = a._aligned(b)
        a, b = a._close(), b._close()
        n = a._dim()
        for i in range(n):
            for j in range(n):
                if b._m[i][j] is None:
                    continue
                if a._m[i][j] is None or a._m[i][j] > b._m[i][j]:
                    return False
        return True

    # -- transfer --------------------------------------------------------------------

    def assign(self, var: str, expr: Optional[LinExpr]) -> "OctagonState":
        if self._bottom:
            return self
        state = self._with_vars([var])._close()
        if state._bottom:
            return state
        if expr is None:
            return state.forget(var)
        x = state._index[var]
        coeffs = expr.coeffs
        if not coeffs:
            result = state.forget(var)
            m = result._copy_matrix()
            self._set(m, x, x + 1, 2 * expr.const)
            self._set(m, x + 1, x, -2 * expr.const)
            return OctagonState(result._vars, m, False, closed=False)._close()
        if len(coeffs) == 1:
            (src, coeff), = coeffs.items()
            if src == var and coeff == 1:
                # var := var + c : translate.
                c = expr.const
                m = state._copy_matrix()
                n = state._dim()

                def shift(i: int) -> Fraction:
                    if i == x:
                        return c
                    if i == x + 1:
                        return -c
                    return Fraction(0)

                for i in range(n):
                    for j in range(n):
                        if i != j and m[i][j] is not None:
                            m[i][j] = m[i][j] + shift(i) - shift(j)
                return OctagonState(state._vars, m, False, closed=True)
            if src == var and coeff == -1:
                # var := -var + c : swap the ± rows/cols, then translate.
                m = state._copy_matrix()
                n = state._dim()
                perm = list(range(n))
                perm[x], perm[x + 1] = perm[x + 1], perm[x]
                m = [[m[perm[i]][perm[j]] for j in range(n)] for i in range(n)]
                swapped = OctagonState(state._vars, m, False, closed=True)
                return swapped.assign(var, LinExpr.var(var) + expr.const)
            if src != var and coeff in (1, -1):
                state = state._with_vars([src])._close()
                x = state._index[var]
                y = state._index[src]
                result = state.forget(var)
                m = result._copy_matrix()
                c = expr.const
                if coeff == 1:
                    # x - y <= c and y - x <= -c
                    self._set(m, x, y, c)
                    self._set(m, y, x, -c)
                else:
                    # x + y <= c  (x - (-y) <= c) and -(x + y) <= -c
                    self._set(m, x, y + 1, c)
                    self._set(m, y + 1, x, -c)
                return OctagonState(result._vars, m, False, closed=False)._close()
        lo, hi = state.bounds_of(expr)
        result = state.forget(var)
        m = result._copy_matrix()
        if hi is not None:
            self._set(m, x, x + 1, 2 * hi)
        if lo is not None:
            self._set(m, x + 1, x, -2 * lo)
        return OctagonState(result._vars, m, False, closed=False)._close()

    def guard(self, cons: LinCons) -> "OctagonState":
        if self._bottom:
            return self
        if cons.op is RelOp.EQ:
            return self.guard(LinCons(cons.expr, RelOp.LE)).guard(
                LinCons(-cons.expr, RelOp.LE)
            )
        expr = cons.expr
        state = self._with_vars(list(expr.coeffs))._close()
        if state._bottom:
            return state
        m = state._copy_matrix()
        items = sorted(expr.coeffs.items())
        handled = False
        if len(items) == 1:
            (name, coeff), = items
            x = state._index[name]
            if coeff == 1:  # x <= -c
                self._set(m, x, x + 1, -2 * expr.const)
                handled = True
            elif coeff == -1:  # -x <= -c
                self._set(m, x + 1, x, -2 * expr.const)
                handled = True
        elif len(items) == 2:
            (na, ca), (nb, cb) = items
            if abs(ca) == 1 and abs(cb) == 1:
                a = state._index[na]
                b = state._index[nb]
                c = -expr.const
                if ca == 1 and cb == -1:
                    self._set(m, a, b, c)  # a - b <= c
                elif ca == -1 and cb == 1:
                    self._set(m, b, a, c)
                elif ca == 1 and cb == 1:
                    self._set(m, a, b + 1, c)  # a + b <= c
                else:
                    self._set(m, a + 1, b, c)  # -a - b <= c
                handled = True
        if not handled:
            closed = OctagonState(state._vars, m, False, closed=False)._close()
            if closed._bottom:
                return closed
            lo, _ = closed.bounds_of(expr)
            if lo is not None and lo > 0:
                return OctagonState(state._vars, None, bottom=True, closed=True)
            m = closed._copy_matrix()
            for var, coeff in expr.coeffs.items():
                rest = LinExpr(
                    {v: c for v, c in expr.coeffs.items() if v != var}, expr.const
                )
                rest_lo, _ = closed.bounds_of(rest)
                if rest_lo is None:
                    continue
                limit = -rest_lo / coeff
                x = state._index[var]
                if coeff > 0:
                    self._set(m, x, x + 1, 2 * limit)
                else:
                    self._set(m, x + 1, x, -2 * limit)
        return OctagonState(state._vars, m, False, closed=False)._close()

    def forget(self, var: str) -> "OctagonState":
        if self._bottom or var not in self._index:
            return self
        state = self._close()
        if state._bottom:
            return state
        m = state._copy_matrix()
        x = state._index[var]
        n = state._dim()
        for j in range(n):
            m[x][j] = None
            m[j][x] = None
            m[x + 1][j] = None
            m[j][x + 1] = None
        m[x][x] = 0
        m[x + 1][x + 1] = 0
        return OctagonState(state._vars, m, False, closed=True)

    # -- queries ------------------------------------------------------------------------

    @staticmethod
    def _half(bound):
        if isinstance(bound, int):
            return bound // 2 if bound % 2 == 0 else Fraction(bound, 2)
        return bound / 2

    def _var_hi(self, state: "OctagonState", x: int) -> Bound:
        bound = state._m[x][x + 1]
        return None if bound is None else self._half(bound)

    def _var_lo(self, state: "OctagonState", x: int) -> Bound:
        bound = state._m[x + 1][x]
        return None if bound is None else -self._half(bound)

    def bounds_of(self, expr: LinExpr) -> Tuple[Bound, Bound]:
        state = self._close()
        if state._bottom:
            return Fraction(0), Fraction(-1)
        for var in expr.coeffs:
            if var not in state._index:
                return None, None
        items = sorted(expr.coeffs.items())
        if len(items) == 2 and abs(items[0][1]) == 1 and abs(items[1][1]) == 1:
            (na, ca), (nb, cb) = items
            a = state._index[na]
            b = state._index[nb]
            ia = a if ca == 1 else a + 1
            ib = b if cb == 1 else b + 1
            # expr - const = V_ia + V_ib = V_ia - V_{bar(ib)}
            hi = state._m[ia][_bar(ib)]
            lo = state._m[_bar(ia)][ib]
            hi_val = None if hi is None else hi + expr.const
            lo_val = None if lo is None else -lo + expr.const
            return lo_val, hi_val
        # Greedy difference-pairing (as in the zone domain): match
        # positive-coefficient variables against negative ones — same
        # base name first, so seeded queries like
        # (low - i) - (low@pre - i@pre) stay exact — then unary
        # leftovers from the ±x bounds.
        pos: Dict[str, Fraction] = {}
        neg: Dict[str, Fraction] = {}
        for var, coeff in expr.coeffs.items():
            if coeff > 0:
                pos[var] = coeff
            else:
                neg[var] = -coeff
        lo: Bound = expr.const
        hi: Bound = expr.const

        def base(name: str) -> str:
            return name.split("@", 1)[0]

        def consume_pair(a_name: str, b_name: str) -> None:
            nonlocal lo, hi
            t = min(pos[a_name], neg[b_name])
            i = state._index[a_name]
            j = state._index[b_name]
            hi_ab = state._m[i][j]
            lo_ab = None if state._m[j][i] is None else -state._m[j][i]
            hi = _add(hi, None if hi_ab is None else t * hi_ab)
            lo = _add(lo, None if lo_ab is None else t * lo_ab)
            pos[a_name] -= t
            neg[b_name] -= t
            if pos[a_name] == 0:
                del pos[a_name]
            if neg[b_name] == 0:
                del neg[b_name]

        for a_name in sorted(pos):
            for b_name in sorted(neg):
                if a_name in pos and b_name in neg and base(a_name) == base(b_name):
                    consume_pair(a_name, b_name)
        for a_name in sorted(pos):
            for b_name in sorted(neg):
                if a_name in pos and b_name in neg:
                    i = state._index[a_name]
                    j = state._index[b_name]
                    if state._m[i][j] is not None or state._m[j][i] is not None:
                        consume_pair(a_name, b_name)
        for var, amount in sorted(pos.items()):
            x = state._index[var]
            vlo, vhi = self._var_lo(state, x), self._var_hi(state, x)
            hi = _add(hi, None if vhi is None else amount * vhi)
            lo = _add(lo, None if vlo is None else amount * vlo)
        for var, amount in sorted(neg.items()):
            x = state._index[var]
            vlo, vhi = self._var_lo(state, x), self._var_hi(state, x)
            hi = _add(hi, None if vlo is None else amount * -vlo)
            lo = _add(lo, None if vhi is None else amount * -vhi)
        return lo, hi

    def constraints(self) -> List[LinCons]:
        state = self._close()
        if state._bottom:
            return [LinCons.le(LinExpr.constant(1), 0)]
        out: List[LinCons] = []
        n = state._dim()

        def term(i: int) -> LinExpr:
            var = state._vars[i // 2]
            return LinExpr.var(var) if i % 2 == 0 else -LinExpr.var(var)

        seen = set()
        for i in range(n):
            for j in range(n):
                if i == j or state._m[i][j] is None:
                    continue
                if i == _bar(j):
                    # Unary: V_i - V_bar(i) = 2 * (±var)
                    expr = term(i)
                    cons = LinCons.le(expr, self._half(state._m[i][j]))
                else:
                    cons = LinCons.le(term(i) - term(j), state._m[i][j])
                if cons not in seen:
                    seen.add(cons)
                    out.append(cons)
        return out

    def __str__(self) -> str:
        if self.is_bottom():
            return "⊥"
        cons = self.constraints()
        return " ∧ ".join(str(c) for c in cons) if cons else "⊤"


class OctagonDomain(Domain):
    name = "octagon"

    def top(self, variables: Sequence[str] = ()) -> OctagonState:
        return OctagonState(variables, closed=True)

    def bottom(self, variables: Sequence[str] = ()) -> OctagonState:
        return OctagonState(variables, None, bottom=True, closed=True)
