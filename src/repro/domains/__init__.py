"""Numeric abstract domains: intervals, zones, octagons, polyhedra."""

from repro.domains.base import AbstractState, Domain
from repro.domains.interval import IntervalDomain, IntervalState
from repro.domains.linexpr import LinCons, LinExpr, RelOp
from repro.domains.octagon import OctagonDomain, OctagonState
from repro.domains.polyhedra import PolyhedraDomain, PolyhedraState
from repro.domains.zone import ZoneDomain, ZoneState

DOMAINS = {
    "interval": IntervalDomain(),
    "zone": ZoneDomain(),
    "octagon": OctagonDomain(),
    "polyhedra": PolyhedraDomain(),
}

__all__ = [
    "AbstractState",
    "Domain",
    "LinExpr",
    "LinCons",
    "RelOp",
    "IntervalDomain",
    "IntervalState",
    "ZoneDomain",
    "ZoneState",
    "OctagonDomain",
    "OctagonState",
    "PolyhedraDomain",
    "PolyhedraState",
    "DOMAINS",
]
