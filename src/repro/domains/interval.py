"""The interval (box) abstract domain.

The cheapest domain in the hierarchy.  Non-relational: it cannot express
``i <= low``, so the seeded transition-invariant analysis normally runs
on zones or better; intervals serve as a fast pre-pass, a baseline for
the domain ablation benchmark, and a reference implementation for the
domain laws in the property tests.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.domains.base import AbstractState, Bound, Domain
from repro.domains.linexpr import LinCons, LinExpr, RelOp


class Interval:
    """A single interval value [lo, hi]; None endpoints mean unbounded."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Bound = None, hi: Bound = None):
        self.lo = lo
        self.hi = hi

    TOP: "Interval"

    @property
    def is_empty(self) -> bool:
        return self.lo is not None and self.hi is not None and self.lo > self.hi

    def join(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)

    def meet(self, other: "Interval") -> "Interval":
        if self.lo is None:
            lo = other.lo
        elif other.lo is None:
            lo = self.lo
        else:
            lo = max(self.lo, other.lo)
        if self.hi is None:
            hi = other.hi
        elif other.hi is None:
            hi = self.hi
        else:
            hi = min(self.hi, other.hi)
        return Interval(lo, hi)

    def widen(self, newer: "Interval") -> "Interval":
        """Standard interval widening: unstable bounds jump to infinity."""
        if self.lo is None or newer.lo is None or newer.lo < self.lo:
            lo: Bound = None
        else:
            lo = self.lo
        if self.hi is None or newer.hi is None or newer.hi > self.hi:
            hi: Bound = None
        else:
            hi = self.hi
        return Interval(lo, hi)

    def leq(self, other: "Interval") -> bool:
        lo_ok = other.lo is None or (self.lo is not None and self.lo >= other.lo)
        hi_ok = other.hi is None or (self.hi is not None and self.hi <= other.hi)
        return self.is_empty or (lo_ok and hi_ok)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Interval) and self.lo == other.lo and self.hi == other.hi

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __str__(self) -> str:
        lo = "-oo" if self.lo is None else str(self.lo)
        hi = "+oo" if self.hi is None else str(self.hi)
        return "[%s, %s]" % (lo, hi)


Interval.TOP = Interval(None, None)


def _add(a: Bound, b: Bound) -> Bound:
    return None if a is None or b is None else a + b


def _mul_bound(a: Bound, factor: Fraction) -> Bound:
    if factor == 0:
        return Fraction(0)
    return None if a is None else a * factor


class IntervalState(AbstractState):
    """A box: every tracked variable has an interval; others are top."""

    def __init__(self, boxes: Optional[Dict[str, Interval]] = None, bottom: bool = False):
        self._boxes: Dict[str, Interval] = dict(boxes or {})
        self._bottom = bottom

    # -- lattice ----------------------------------------------------------------

    def is_bottom(self) -> bool:
        return self._bottom

    def _normalized(self) -> "IntervalState":
        for box in self._boxes.values():
            if box.is_empty:
                return IntervalState(bottom=True)
        return self

    def join(self, other: "IntervalState") -> "IntervalState":
        if self._bottom:
            return other
        if other._bottom:
            return self
        keys = set(self._boxes) & set(other._boxes)
        joined = {k: self._boxes[k].join(other._boxes[k]) for k in keys}
        # A variable tracked on only one side is top on the other: drop it.
        return IntervalState(joined)

    def widen(self, other: "IntervalState") -> "IntervalState":
        if self._bottom:
            return other
        if other._bottom:
            return self
        keys = set(self._boxes) & set(other._boxes)
        return IntervalState({k: self._boxes[k].widen(other._boxes[k]) for k in keys})

    def leq(self, other: "IntervalState") -> bool:
        if self._bottom:
            return True
        if other._bottom:
            return False
        for var, box in other._boxes.items():
            if not self._box(var).leq(box):
                return False
        return True

    # -- internals --------------------------------------------------------------------

    def _box(self, var: str) -> Interval:
        return self._boxes.get(var, Interval.TOP)

    def _eval(self, expr: LinExpr) -> Interval:
        lo: Bound = expr.const
        hi: Bound = expr.const
        for var, coeff in expr.coeffs.items():
            box = self._box(var)
            a = _mul_bound(box.lo if coeff > 0 else box.hi, coeff)
            b = _mul_bound(box.hi if coeff > 0 else box.lo, coeff)
            lo = _add(lo, a)
            hi = _add(hi, b)
        return Interval(lo, hi)

    # -- transfer ----------------------------------------------------------------------

    def assign(self, var: str, expr: Optional[LinExpr]) -> "IntervalState":
        if self._bottom:
            return self
        boxes = dict(self._boxes)
        if expr is None:
            boxes.pop(var, None)
        else:
            boxes[var] = self._eval(expr)
        return IntervalState(boxes)._normalized()

    def guard(self, cons: LinCons) -> "IntervalState":
        if self._bottom:
            return self
        value = self._eval(cons.expr)
        if cons.op is RelOp.LE:
            if value.lo is not None and value.lo > 0:
                return IntervalState(bottom=True)
        else:
            if (value.lo is not None and value.lo > 0) or (
                value.hi is not None and value.hi < 0
            ):
                return IntervalState(bottom=True)
        state = self._refine(cons)
        if cons.op is RelOp.EQ:
            # e == 0 also implies -e <= 0.
            state = state._refine(LinCons(-cons.expr, RelOp.LE))
        return state._normalized()

    def _refine(self, cons: LinCons) -> "IntervalState":
        """Tighten each variable of ``expr <= 0`` (or == 0, one side)."""
        boxes = dict(self._boxes)
        expr = cons.expr
        for var, coeff in expr.coeffs.items():
            # coeff*var <= -(rest)  where rest = expr - coeff*var
            rest = LinExpr(
                {v: c for v, c in expr.coeffs.items() if v != var}, expr.const
            )
            rest_iv = self._eval(rest)
            # coeff*var <= -rest; bound uses the smallest possible rest.
            limit = rest_iv.lo
            if limit is None:
                continue
            bound = -limit / coeff
            box = boxes.get(var, Interval.TOP)
            if coeff > 0:
                new_box = box.meet(Interval(None, bound))
            else:
                new_box = box.meet(Interval(bound, None))
            boxes[var] = new_box
        return IntervalState(boxes)

    def forget(self, var: str) -> "IntervalState":
        if self._bottom:
            return self
        boxes = dict(self._boxes)
        boxes.pop(var, None)
        return IntervalState(boxes)

    # -- queries --------------------------------------------------------------------------

    def bounds_of(self, expr: LinExpr) -> Tuple[Bound, Bound]:
        if self._bottom:
            return Fraction(0), Fraction(-1)  # empty
        value = self._eval(expr)
        return value.lo, value.hi

    def constraints(self) -> List[LinCons]:
        out: List[LinCons] = []
        for var in sorted(self._boxes):
            box = self._boxes[var]
            v = LinExpr.var(var)
            if box.lo is not None:
                out.append(LinCons.ge(v, box.lo))
            if box.hi is not None:
                out.append(LinCons.le(v, box.hi))
        return out

    def __str__(self) -> str:
        if self._bottom:
            return "⊥"
        if not self._boxes:
            return "⊤"
        return ", ".join("%s ∈ %s" % (v, self._boxes[v]) for v in sorted(self._boxes))


class IntervalDomain(Domain):
    name = "interval"

    def top(self, variables: Sequence[str] = ()) -> IntervalState:
        return IntervalState()

    def bottom(self, variables: Sequence[str] = ()) -> IntervalState:
        return IntervalState(bottom=True)
