"""Information-flow (taint) analysis: the JOANA stand-in.

Blazer consumed JOANA's output as "which CFG branching blocks depend on
low (attacker-controlled) data, which on high (secret) data".  This
module computes the same classification:

* every variable carries a taint set ⊆ {LOW, HIGH}: public parameters
  seed LOW, secret parameters seed HIGH, constants carry neither;
* explicit flows propagate through assignments, arithmetic, array
  loads/stores (arrays are summarized as a whole: contents, length and
  reference share one taint) and calls (conservatively: result and any
  mutable array argument absorb all argument taints);
* implicit flows: an assignment control-dependent on a branch absorbs
  the branch condition's taint (computed with the post-dominance-frontier
  characterization of control dependence).

The analysis is *flow-sensitive* (per-block taint environments joined by
pointwise union) — necessary precision: a loop guarded purely by low data
must not absorb the taint of a high-guarded assignment on a disjoint
path, or Example 1/2 of the paper would misclassify.  Branch taints feed
back into implicit-flow contexts, so the fixpoint iterates over both.
On the paper's benchmark shapes this matches the PDG-based
classification JOANA would produce.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from repro.cfg.dominance import control_dependence
from repro.cfg.graph import ControlFlowGraph
from repro.ir import instr as ir
from repro.lang import ast


class Taint(enum.Enum):
    LOW = "l"  # depends on public (attacker-controlled) input
    HIGH = "h"  # depends on secret input


TaintSet = FrozenSet[Taint]
NO_TAINT: TaintSet = frozenset()
LOW_ONLY: TaintSet = frozenset({Taint.LOW})
HIGH_ONLY: TaintSet = frozenset({Taint.HIGH})
BOTH: TaintSet = frozenset({Taint.LOW, Taint.HIGH})


@dataclass
class TaintResult:
    """Per-variable and per-branch-block taint classification."""

    cfg: ControlFlowGraph
    var_taint: Dict[str, TaintSet] = field(default_factory=dict)
    branch_taint: Dict[int, TaintSet] = field(default_factory=dict)

    def taint_of_var(self, name: str) -> TaintSet:
        return self.var_taint.get(name, NO_TAINT)

    def taint_of_branch(self, block_id: int) -> TaintSet:
        return self.branch_taint.get(block_id, NO_TAINT)

    def low_branches(self) -> List[int]:
        """Branch blocks influenced by low data only — legal split points
        for safety partitions (ψ-quotient preserving)."""
        return [
            b
            for b, t in sorted(self.branch_taint.items())
            if Taint.LOW in t and Taint.HIGH not in t
        ]

    def high_branches(self) -> List[int]:
        """Branch blocks influenced by high data (possibly also low) —
        split points for attack-synthesis partitions."""
        return [b for b, t in sorted(self.branch_taint.items()) if Taint.HIGH in t]

    def untainted_branches(self) -> List[int]:
        """Branch blocks with no input dependence at all (constant
        conditions); these never appear in ``branch_taint``."""
        return [
            b
            for b in self.cfg.branch_blocks()
            if not self.branch_taint.get(b, NO_TAINT)
        ]

    def annotation(self, block_id: int) -> str:
        """The paper's α annotation for a branch: 'l', 'h', 'l,h' or ''."""
        taint = self.taint_of_branch(block_id)
        parts = []
        if Taint.LOW in taint:
            parts.append("l")
        if Taint.HIGH in taint:
            parts.append("h")
        return ",".join(parts)

    def __str__(self) -> str:
        lines = ["taint(%s):" % self.cfg.name]
        for block in sorted(self.branch_taint):
            lines.append(
                "  b%d: |%s" % (block, self.annotation(block) or "-")
            )
        return "\n".join(lines)


# The fixpoint below runs on a bitset encoding of taint sets: LOW is
# bit 0, HIGH is bit 1, a whole taint set is an int in 0..3 and an
# environment is ``Dict[str, int]``.  Set union is ``|`` on ints and
# the subset test is one mask-and-compare — no frozenset hashing or
# allocation anywhere in the propagation loop.  The public
# :class:`TaintResult` keeps the frozenset vocabulary: ``_SET_OF``
# translates exactly once, at the end of :meth:`TaintAnalysis.run`.
_LOW_BIT = 1
_HIGH_BIT = 2
_SET_OF: tuple = (NO_TAINT, LOW_ONLY, HIGH_ONLY, BOTH)

BitEnv = Dict[str, int]


def _operand_bits(operand: ir.Operand, env: BitEnv) -> int:
    if isinstance(operand, ir.Reg):
        return env.get(operand.name, 0)
    return 0


def _join_env(a: BitEnv, b: BitEnv) -> BitEnv:
    out = dict(a)
    for var, t in b.items():
        prior = out.get(var, 0)
        if t | prior != prior:
            out[var] = prior | t
    return out


def _env_leq(a: BitEnv, b: BitEnv) -> bool:
    return all(t | b.get(var, 0) == b.get(var, 0) for var, t in a.items())


class TaintAnalysis:
    def __init__(self, cfg: ControlFlowGraph):
        self._cfg = cfg

    def run(self) -> TaintResult:
        cfg = self._cfg
        ctrl_dep = control_dependence(cfg)
        # Reverse dependence: branch -> blocks control-dependent on it,
        # for re-queuing when a branch's taint grows.
        dependents: Dict[int, Set[int]] = {}
        for block, deps in ctrl_dep.items():
            for dep in deps:
                dependents.setdefault(dep, set()).add(block)

        entry_env: BitEnv = {
            p.name: (_HIGH_BIT if p.is_secret else _LOW_BIT) for p in cfg.params
        }
        in_envs: Dict[int, BitEnv] = {cfg.entry: entry_env}
        branch_bits: Dict[int, int] = {}
        reachable = set(cfg.reverse_postorder())
        worklist: List[int] = [b for b in cfg.reverse_postorder()]

        while worklist:
            bid = worklist.pop(0)
            if bid not in in_envs or bid not in reachable:
                continue
            env = dict(in_envs[bid])
            context = 0
            for dep in ctrl_dep.get(bid, ()):
                context |= branch_bits.get(dep, 0)
            for instr in cfg.blocks[bid].instrs:
                self._transfer(instr, env, context)
            block = cfg.blocks[bid]
            if isinstance(block.term, ir.Branch):
                cond_bits = _operand_bits(block.term.cond, env)
                old = branch_bits.get(bid, 0)
                if cond_bits | old != old:
                    branch_bits[bid] = old | cond_bits
                    worklist.extend(sorted(dependents.get(bid, ())))
            for succ in cfg.successors(bid):
                old_in = in_envs.get(succ)
                if old_in is None:
                    in_envs[succ] = dict(env)
                    worklist.append(succ)
                elif not _env_leq(env, old_in):
                    in_envs[succ] = _join_env(old_in, env)
                    worklist.append(succ)

        # Final per-variable summary: union over all points (for display
        # and for the trail annotator's variable queries), translated
        # back from bits to the public frozenset vocabulary.
        var_bits: Dict[str, int] = {}
        for env in in_envs.values():
            for var, t in env.items():
                var_bits[var] = var_bits.get(var, 0) | t
        return TaintResult(
            cfg=cfg,
            var_taint={var: _SET_OF[t] for var, t in var_bits.items()},
            branch_taint={bid: _SET_OF[t] for bid, t in branch_bits.items()},
        )

    # -- transfer ----------------------------------------------------------------

    def _transfer(self, instr: ir.Instr, env: BitEnv, context: int) -> None:
        new_taint: Optional[int] = None
        targets: List[str] = []

        if isinstance(instr, ir.Assign):
            new_taint = _operand_bits(instr.src, env)
            targets = [instr.dst.name]
        elif isinstance(instr, (ir.BinInstr, ir.CmpInstr)):
            new_taint = _operand_bits(instr.a, env) | _operand_bits(instr.b, env)
            targets = [instr.dst.name]
        elif isinstance(instr, ir.UnInstr):
            new_taint = _operand_bits(instr.a, env)
            targets = [instr.dst.name]
        elif isinstance(instr, ir.ALoad):
            new_taint = _operand_bits(instr.arr, env) | _operand_bits(instr.idx, env)
            targets = [instr.dst.name]
        elif isinstance(instr, ir.AStore):
            # The array absorbs the stored value's and the index's taint.
            # Weak update: arrays keep their old taint too.
            extra = (
                _operand_bits(instr.arr, env)
                | _operand_bits(instr.idx, env)
                | _operand_bits(instr.val, env)
                | context
            )
            if isinstance(instr.arr, ir.Reg):
                env[instr.arr.name] = env.get(instr.arr.name, 0) | extra
            return
        elif isinstance(instr, ir.NewArr):
            new_taint = _operand_bits(instr.size, env)
            targets = [instr.dst.name]
        elif isinstance(instr, ir.ArrLen):
            new_taint = _operand_bits(instr.arr, env)
            targets = [instr.dst.name]
        elif isinstance(instr, ir.CallInstr):
            gathered = 0
            for arg in instr.args:
                gathered |= _operand_bits(arg, env)
            new_taint = gathered
            if instr.dst is not None:
                targets = [instr.dst.name]
            # Mutable (array) arguments may absorb every argument's taint
            # (weak update).
            for arg in instr.args:
                if isinstance(arg, ir.Reg) and self._is_array(arg.name):
                    env[arg.name] = env.get(arg.name, 0) | gathered | context
        else:
            return

        if new_taint is None:
            return
        result = new_taint | context
        for target in targets:
            env[target] = result  # strong update for scalars/temps

    def _is_array(self, reg_name: str) -> bool:
        return self._cfg.reg_kinds.get(reg_name) == "arr"


def analyze_taint(cfg: ControlFlowGraph) -> TaintResult:
    """Run the taint analysis on one procedure CFG."""
    return TaintAnalysis(cfg).run()
