"""Taint / information-flow analysis (the JOANA analogue)."""

from repro.taint.analysis import (
    BOTH,
    HIGH_ONLY,
    LOW_ONLY,
    NO_TAINT,
    Taint,
    TaintResult,
    analyze_taint,
)

__all__ = [
    "Taint",
    "TaintResult",
    "analyze_taint",
    "NO_TAINT",
    "LOW_ONLY",
    "HIGH_ONLY",
    "BOTH",
]
