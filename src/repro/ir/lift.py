"""Bytecode-to-IR lifter (the WALA analogue of the pipeline).

Lifts stack bytecode into the register IR by abstract interpretation of
the operand stack: each basic block is entered with a stack of *stack
registers* ``s0..s(h-1)`` (``h`` from a stack-height fixpoint), pushes are
tracked symbolically, and values still on the stack at a block boundary
are materialized back into the stack registers so that merge points agree.

Correctness subtleties handled here:

* a ``STORE x`` while ``x`` is still referenced by pending stack operands
  first materializes those operands into temporaries (otherwise the stale
  stack value would observe the new ``x``);
* boundary materialization pre-copies any stack register that is both
  overwritten and read by the pending writes;
* every bytecode instruction's unit cost is absorbed into the ``weight``
  of exactly one emitted IR instruction inside the same basic block, so
  path costs in the IR equal bytecode instruction counts exactly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.bytecode.instructions import CodeObject, Instr as BInstr, Module, Opcode
from repro.cfg.graph import Block, ControlFlowGraph, ParamInfo
from repro.ir import instr as ir
from repro.lang import ast
from repro.util.errors import LiftError

_ARITH = {
    Opcode.ADD: ir.ArithOp.ADD,
    Opcode.SUB: ir.ArithOp.SUB,
    Opcode.MUL: ir.ArithOp.MUL,
    Opcode.DIV: ir.ArithOp.DIV,
    Opcode.MOD: ir.ArithOp.MOD,
}
_CMP = {
    Opcode.CMPLT: ir.CmpOp.LT,
    Opcode.CMPLE: ir.CmpOp.LE,
    Opcode.CMPGT: ir.CmpOp.GT,
    Opcode.CMPGE: ir.CmpOp.GE,
    Opcode.CMPEQ: ir.CmpOp.EQ,
    Opcode.CMPNE: ir.CmpOp.NE,
}


def _find_leaders(code: CodeObject) -> List[int]:
    leaders: Set[int] = {0}
    for pc, instr in enumerate(code.instrs):
        if instr.op in (Opcode.GOTO, Opcode.IFNZ, Opcode.IFZ):
            leaders.add(int(instr.arg))  # type: ignore[arg-type]
        if instr.is_terminator and pc + 1 < len(code.instrs):
            leaders.add(pc + 1)
    return sorted(leaders)


def _entry_heights(code: CodeObject, leaders: List[int]) -> Dict[int, int]:
    """Stack height at each pc (the verifier guarantees consistency)."""
    heights: Dict[int, int] = {0: 0}
    worklist = [0]
    n = len(code.instrs)
    while worklist:
        pc = worklist.pop()
        h = heights[pc]
        instr = code.instrs[pc]
        out = h + instr.stack_delta()
        if out < 0:
            raise LiftError("%s: stack underflow at pc %d" % (code.name, pc))
        if instr.op is Opcode.GOTO:
            succs = [int(instr.arg)]  # type: ignore[list-item]
        elif instr.op in (Opcode.IFNZ, Opcode.IFZ):
            succs = [pc + 1, int(instr.arg)]  # type: ignore[list-item]
        elif instr.op in (Opcode.RET, Opcode.RETVAL):
            succs = []
        else:
            succs = [pc + 1] if pc + 1 < n else []
        for succ in succs:
            if succ in heights:
                if heights[succ] != out:
                    raise LiftError(
                        "%s: inconsistent stack heights at pc %d (%d vs %d)"
                        % (code.name, succ, heights[succ], out)
                    )
            else:
                heights[succ] = out
                worklist.append(succ)
    return {pc: h for pc, h in heights.items() if pc in leaders}


class _Lifter:
    def __init__(self, code: CodeObject, module: Optional[Module] = None):
        self._code = code
        self._module = module
        self._temp_counter = 0
        self._reg_kinds: Dict[str, str] = {}
        for var in code.all_locals():
            self._reg_kinds[var.name] = "arr" if var.declared.is_array else "int"

    # -- helpers ---------------------------------------------------------------

    def _fresh_temp(self, kind: str) -> ir.Reg:
        name = "t%d" % self._temp_counter
        self._temp_counter += 1
        self._reg_kinds[name] = kind
        return ir.Reg(name)

    def _sreg(self, depth: int, kind: str = "int") -> ir.Reg:
        name = "s%d" % depth
        if name not in self._reg_kinds:
            self._reg_kinds[name] = kind
        return ir.Reg(name)

    def _operand_kind(self, operand: ir.Operand) -> str:
        if isinstance(operand, ir.Reg):
            return self._reg_kinds.get(operand.name, "int")
        if isinstance(operand, (ir.ConstNull, ir.ConstArr)):
            return "arr"
        return "int"

    def _callee_kind(self, callee: str) -> str:
        if self._module is not None:
            if callee in self._module.codes:
                return "arr" if self._module.codes[callee].ret.is_array else "int"
            decl = self._module.externs.get(callee)
            if decl is not None:
                return "arr" if decl.ret.is_array else "int"
        return "int"

    # -- the main lifting loop ---------------------------------------------------

    def lift(self) -> ControlFlowGraph:
        code = self._code
        leaders = _find_leaders(code)
        heights = _entry_heights(code, leaders)
        block_of_pc = {pc: i for i, pc in enumerate(leaders)}
        blocks: Dict[int, Block] = {}
        exit_id = len(leaders)

        for index, leader in enumerate(leaders):
            end = leaders[index + 1] if index + 1 < len(leaders) else len(code.instrs)
            if leader not in heights:
                # Unreachable block (e.g. the dead trailing RET the compiler
                # appends after a fully-returning body): keep the CFG total
                # by emitting an empty block that falls through nowhere.
                blocks[index] = Block(index, [], ir.Return(value=None, weight=0))
                continue
            blocks[index] = self._lift_block(
                index, leader, end, heights[leader], block_of_pc
            )

        blocks[exit_id] = Block(exit_id, [], None)
        params = [
            ParamInfo(p.name, p.declared, p.level or ast.SecLevel.PUBLIC)
            for p in code.params
        ]
        cfg = ControlFlowGraph(
            name=code.name,
            params=params,
            ret=code.ret,
            blocks=blocks,
            entry=0,
            exit_id=exit_id,
        )
        cfg.reg_kinds = dict(self._reg_kinds)
        return cfg

    def _lift_block(
        self,
        block_id: int,
        leader: int,
        end: int,
        entry_height: int,
        block_of_pc: Dict[int, int],
    ) -> Block:
        code = self._code
        out: List[ir.Instr] = []
        stack: List[ir.Operand] = [self._sreg(d) for d in range(entry_height)]
        pending = 0  # bytecode instructions absorbed by the next IR instruction

        def emit(instr: ir.Instr, extra_cost: int = 1) -> None:
            nonlocal pending
            instr.weight = pending + extra_cost
            pending = 0
            out.append(instr)

        def pop() -> ir.Operand:
            if not stack:
                raise LiftError("%s: pc underflow in b%d" % (code.name, block_id))
            return stack.pop()

        def flush_boundary() -> None:
            """Materialize remaining stack values into s-registers."""
            writes: List[Tuple[int, ir.Operand]] = []
            for depth, operand in enumerate(stack):
                sreg = self._sreg(depth, self._operand_kind(operand))
                self._reg_kinds[sreg.name] = self._operand_kind(operand)
                if operand != sreg:
                    writes.append((depth, operand))
            overwritten = {"s%d" % d for d, _ in writes}
            # Pre-copy any s-register that is both read and overwritten.
            precopies: Dict[str, ir.Reg] = {}
            for depth, operand in writes:
                if (
                    isinstance(operand, ir.Reg)
                    and operand.name in overwritten
                    and operand.name != "s%d" % depth
                    and operand.name not in precopies
                ):
                    temp = self._fresh_temp(self._operand_kind(operand))
                    out_instr = ir.Assign(dst=temp, src=operand)
                    out_instr.weight = 0
                    out.append(out_instr)
                    precopies[operand.name] = temp
            for depth, operand in writes:
                if isinstance(operand, ir.Reg) and operand.name in precopies:
                    operand = precopies[operand.name]
                assign = ir.Assign(dst=self._sreg(depth), src=operand)
                assign.weight = 0
                out.append(assign)

        def materialize_uses_of(reg_name: str) -> None:
            """Copy stack operands reading ``reg_name`` into temporaries."""
            for depth, operand in enumerate(stack):
                if isinstance(operand, ir.Reg) and operand.name == reg_name:
                    temp = self._fresh_temp(self._operand_kind(operand))
                    copy = ir.Assign(dst=temp, src=operand)
                    copy.weight = 0
                    out.append(copy)
                    stack[depth] = temp

        term: Optional[ir.Terminator] = None
        for pc in range(leader, end):
            binstr: BInstr = code.instrs[pc]
            line = code.source_lines.get(pc, 0)
            op = binstr.op
            if op is Opcode.PUSH:
                if isinstance(binstr.arg, tuple):
                    stack.append(ir.ConstArr(binstr.arg))
                else:
                    stack.append(ir.ConstInt(int(binstr.arg)))  # type: ignore[arg-type]
                pending += 1
            elif op is Opcode.PUSH_NULL:
                stack.append(ir.ConstNull())
                pending += 1
            elif op is Opcode.LOAD:
                stack.append(ir.Reg(code.slot_name(int(binstr.arg))))  # type: ignore[arg-type]
                pending += 1
            elif op is Opcode.STORE:
                value = pop()
                name = code.slot_name(int(binstr.arg))  # type: ignore[arg-type]
                materialize_uses_of(name)
                emit(ir.Assign(dst=ir.Reg(name), src=value, line=line))
            elif op is Opcode.ALOAD:
                idx = pop()
                arr = pop()
                dst = self._fresh_temp("int")
                emit(ir.ALoad(dst=dst, arr=arr, idx=idx, line=line))
                stack.append(dst)
            elif op is Opcode.ASTORE:
                value = pop()
                idx = pop()
                arr = pop()
                emit(ir.AStore(arr=arr, idx=idx, val=value, line=line))
            elif op is Opcode.NEWARRAY:
                size = pop()
                dst = self._fresh_temp("arr")
                emit(ir.NewArr(dst=dst, size=size, elem=binstr.arg, line=line))  # type: ignore[arg-type]
                stack.append(dst)
            elif op is Opcode.ARRAYLEN:
                arr = pop()
                dst = self._fresh_temp("int")
                emit(ir.ArrLen(dst=dst, arr=arr, line=line))
                stack.append(dst)
            elif op in _ARITH:
                b = pop()
                a = pop()
                dst = self._fresh_temp("int")
                emit(ir.BinInstr(dst=dst, op=_ARITH[op], a=a, b=b, line=line))
                stack.append(dst)
            elif op in _CMP:
                b = pop()
                a = pop()
                dst = self._fresh_temp("int")
                emit(ir.CmpInstr(dst=dst, op=_CMP[op], a=a, b=b, line=line))
                stack.append(dst)
            elif op is Opcode.NEG:
                a = pop()
                dst = self._fresh_temp("int")
                emit(ir.UnInstr(dst=dst, op="neg", a=a, line=line))
                stack.append(dst)
            elif op is Opcode.NOT:
                a = pop()
                dst = self._fresh_temp("int")
                emit(ir.UnInstr(dst=dst, op="not", a=a, line=line))
                stack.append(dst)
            elif op is Opcode.POP:
                pop()
                pending += 1
            elif op is Opcode.DUP:
                top = pop()
                if not isinstance(top, ir.Reg):
                    stack.append(top)
                    stack.append(top)
                else:
                    stack.append(top)
                    stack.append(top)
                pending += 1
            elif op is Opcode.NOP:
                pending += 1
            elif op is Opcode.INVOKE:
                args = [pop() for _ in range(binstr.argc)][::-1]
                dst = (
                    self._fresh_temp(self._callee_kind(binstr.callee))
                    if binstr.has_result
                    else None
                )
                emit(
                    ir.CallInstr(dst=dst, callee=binstr.callee, args=tuple(args), line=line)
                )
                if dst is not None:
                    stack.append(dst)
            elif op is Opcode.GOTO:
                flush_boundary()
                term = ir.Jump(target=block_of_pc[int(binstr.arg)], weight=pending + 1, line=line)  # type: ignore[arg-type]
                pending = 0
            elif op in (Opcode.IFNZ, Opcode.IFZ):
                cond = pop()
                if isinstance(cond, ir.Reg) and cond.name.startswith("s"):
                    # Boundary materialization below may overwrite stack
                    # registers; keep the condition in a safe temporary.
                    safe = self._fresh_temp(self._operand_kind(cond))
                    copy = ir.Assign(dst=safe, src=cond)
                    copy.weight = 0
                    out.append(copy)
                    cond = safe
                flush_boundary()
                target = block_of_pc[int(binstr.arg)]  # type: ignore[arg-type]
                fall = block_of_pc[end] if end in block_of_pc else -1
                if fall < 0:
                    raise LiftError("%s: branch at pc %d has no fallthrough" % (code.name, pc))
                if op is Opcode.IFNZ:
                    term = ir.Branch(
                        cond=cond, on_true=target, on_false=fall, weight=pending + 1, line=line
                    )
                else:
                    term = ir.Branch(
                        cond=cond, on_true=fall, on_false=target, weight=pending + 1, line=line
                    )
                pending = 0
            elif op is Opcode.RET:
                term = ir.Return(value=None, weight=pending + 1, line=line)
                pending = 0
            elif op is Opcode.RETVAL:
                value = pop()
                term = ir.Return(value=value, weight=pending + 1, line=line)
                pending = 0
            else:  # pragma: no cover
                raise LiftError("%s: cannot lift opcode %s" % (code.name, op))

        if term is None:
            # Fallthrough into the next block.
            flush_boundary()
            if end not in block_of_pc:
                raise LiftError("%s: block b%d falls off the end" % (code.name, block_id))
            term = ir.Jump(target=block_of_pc[end], weight=pending)
        return Block(block_id, out, term)


def lift_code(code: CodeObject, module: Optional[Module] = None) -> ControlFlowGraph:
    """Lift one verified code object into a CFG of register IR."""
    return _Lifter(code, module).lift()


def lift_module(module: Module) -> Dict[str, ControlFlowGraph]:
    """Lift every code object of a verified module."""
    return {name: lift_code(code, module) for name, code in module.codes.items()}
