"""Register-based intermediate representation.

This IR plays the role WALA's SSA IR plays for Blazer: a register-machine
view of the bytecode that the static analyses (taint, abstract
interpretation, bound analysis) and the concrete interpreter consume.

Every instruction carries a ``weight``: the number of *bytecode*
instructions it absorbs.  The paper's machine model charges one time unit
per bytecode instruction; summing weights along an execution path yields
exactly the bytecode instruction count, so the static bound analysis and
the concrete interpreter agree on the cost semantics to the unit.

Operands are registers or constants.  Register names are meaningful:
source-level locals keep their names, stack temporaries are ``t<n>``, and
cross-block stack slots are ``s<depth>``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.lang import ast


# ---------------------------------------------------------------------------
# Operands
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Reg:
    """A virtual register."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ConstInt:
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class ConstNull:
    def __str__(self) -> str:
        return "null"


@dataclass(frozen=True)
class ConstArr:
    """A constant byte array (from a string literal)."""

    values: Tuple[int, ...]

    def __str__(self) -> str:
        return "arr%s" % (list(self.values),)


Operand = Union[Reg, ConstInt, ConstNull, ConstArr]


def operand_regs(operand: Operand) -> List[Reg]:
    return [operand] if isinstance(operand, Reg) else []


# ---------------------------------------------------------------------------
# Straight-line instructions
# ---------------------------------------------------------------------------


class ArithOp(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"


class CmpOp(enum.Enum):
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "=="
    NE = "!="

    def negate(self) -> "CmpOp":
        return _CMP_NEGATE[self]

    def swap(self) -> "CmpOp":
        """The comparison with operands swapped: ``a < b`` iff ``b > a``."""
        return _CMP_SWAP[self]


_CMP_NEGATE = {
    CmpOp.LT: CmpOp.GE,
    CmpOp.LE: CmpOp.GT,
    CmpOp.GT: CmpOp.LE,
    CmpOp.GE: CmpOp.LT,
    CmpOp.EQ: CmpOp.NE,
    CmpOp.NE: CmpOp.EQ,
}
_CMP_SWAP = {
    CmpOp.LT: CmpOp.GT,
    CmpOp.LE: CmpOp.GE,
    CmpOp.GT: CmpOp.LT,
    CmpOp.GE: CmpOp.LE,
    CmpOp.EQ: CmpOp.EQ,
    CmpOp.NE: CmpOp.NE,
}


@dataclass
class Instr:
    """Base class for straight-line IR instructions."""

    weight: int = field(default=1, kw_only=True)
    line: int = field(default=0, kw_only=True)

    def defs(self) -> List[Reg]:
        return []

    def uses(self) -> List[Reg]:
        return []


@dataclass
class Assign(Instr):
    """``dst = src`` (a move or constant load)."""

    dst: Reg = None  # type: ignore[assignment]
    src: Operand = None  # type: ignore[assignment]

    def defs(self) -> List[Reg]:
        return [self.dst]

    def uses(self) -> List[Reg]:
        return operand_regs(self.src)

    def __str__(self) -> str:
        return "%s = %s" % (self.dst, self.src)


@dataclass
class BinInstr(Instr):
    """``dst = a op b`` for arithmetic ops."""

    dst: Reg = None  # type: ignore[assignment]
    op: ArithOp = ArithOp.ADD
    a: Operand = None  # type: ignore[assignment]
    b: Operand = None  # type: ignore[assignment]

    def defs(self) -> List[Reg]:
        return [self.dst]

    def uses(self) -> List[Reg]:
        return operand_regs(self.a) + operand_regs(self.b)

    def __str__(self) -> str:
        return "%s = %s %s %s" % (self.dst, self.a, self.op.value, self.b)


@dataclass
class CmpInstr(Instr):
    """``dst = a cmp b`` producing 0/1."""

    dst: Reg = None  # type: ignore[assignment]
    op: CmpOp = CmpOp.EQ
    a: Operand = None  # type: ignore[assignment]
    b: Operand = None  # type: ignore[assignment]

    def defs(self) -> List[Reg]:
        return [self.dst]

    def uses(self) -> List[Reg]:
        return operand_regs(self.a) + operand_regs(self.b)

    def __str__(self) -> str:
        return "%s = %s %s %s" % (self.dst, self.a, self.op.value, self.b)


@dataclass
class UnInstr(Instr):
    """``dst = op a`` for ``-`` (neg) and ``!`` (not)."""

    dst: Reg = None  # type: ignore[assignment]
    op: str = "neg"
    a: Operand = None  # type: ignore[assignment]

    def defs(self) -> List[Reg]:
        return [self.dst]

    def uses(self) -> List[Reg]:
        return operand_regs(self.a)

    def __str__(self) -> str:
        sym = "-" if self.op == "neg" else "!"
        return "%s = %s%s" % (self.dst, sym, self.a)


@dataclass
class ALoad(Instr):
    """``dst = arr[idx]``."""

    dst: Reg = None  # type: ignore[assignment]
    arr: Operand = None  # type: ignore[assignment]
    idx: Operand = None  # type: ignore[assignment]

    def defs(self) -> List[Reg]:
        return [self.dst]

    def uses(self) -> List[Reg]:
        return operand_regs(self.arr) + operand_regs(self.idx)

    def __str__(self) -> str:
        return "%s = %s[%s]" % (self.dst, self.arr, self.idx)


@dataclass
class AStore(Instr):
    """``arr[idx] = val``."""

    arr: Operand = None  # type: ignore[assignment]
    idx: Operand = None  # type: ignore[assignment]
    val: Operand = None  # type: ignore[assignment]

    def uses(self) -> List[Reg]:
        return operand_regs(self.arr) + operand_regs(self.idx) + operand_regs(self.val)

    def __str__(self) -> str:
        return "%s[%s] = %s" % (self.arr, self.idx, self.val)


@dataclass
class NewArr(Instr):
    """``dst = new <elem>[size]`` zero-initialized."""

    dst: Reg = None  # type: ignore[assignment]
    size: Operand = None  # type: ignore[assignment]
    elem: ast.BaseType = ast.BaseType.INT

    def defs(self) -> List[Reg]:
        return [self.dst]

    def uses(self) -> List[Reg]:
        return operand_regs(self.size)

    def __str__(self) -> str:
        return "%s = new %s[%s]" % (self.dst, self.elem.value, self.size)


@dataclass
class ArrLen(Instr):
    """``dst = len(arr)``."""

    dst: Reg = None  # type: ignore[assignment]
    arr: Operand = None  # type: ignore[assignment]

    def defs(self) -> List[Reg]:
        return [self.dst]

    def uses(self) -> List[Reg]:
        return operand_regs(self.arr)

    def __str__(self) -> str:
        return "%s = len(%s)" % (self.dst, self.arr)


@dataclass
class CallInstr(Instr):
    """``dst = callee(args)``; ``dst`` is None for void calls."""

    dst: Optional[Reg] = None
    callee: str = ""
    args: Sequence[Operand] = field(default_factory=tuple)

    def defs(self) -> List[Reg]:
        return [self.dst] if self.dst is not None else []

    def uses(self) -> List[Reg]:
        out: List[Reg] = []
        for arg in self.args:
            out.extend(operand_regs(arg))
        return out

    def __str__(self) -> str:
        call = "%s(%s)" % (self.callee, ", ".join(str(a) for a in self.args))
        return call if self.dst is None else "%s = %s" % (self.dst, call)


# ---------------------------------------------------------------------------
# Terminators
# ---------------------------------------------------------------------------


@dataclass
class Terminator:
    weight: int = field(default=1, kw_only=True)
    line: int = field(default=0, kw_only=True)

    def uses(self) -> List[Reg]:
        return []

    def successors(self) -> List[int]:
        return []


@dataclass
class Jump(Terminator):
    target: int = 0

    def successors(self) -> List[int]:
        return [self.target]

    def __str__(self) -> str:
        return "jump b%d" % self.target


@dataclass
class Branch(Terminator):
    """``if cond != 0 goto on_true else on_false``."""

    cond: Operand = None  # type: ignore[assignment]
    on_true: int = 0
    on_false: int = 0

    def uses(self) -> List[Reg]:
        return operand_regs(self.cond)

    def successors(self) -> List[int]:
        return [self.on_true, self.on_false]

    def __str__(self) -> str:
        return "branch %s ? b%d : b%d" % (self.cond, self.on_true, self.on_false)


@dataclass
class Return(Terminator):
    value: Optional[Operand] = None

    def uses(self) -> List[Reg]:
        return operand_regs(self.value) if self.value is not None else []

    def __str__(self) -> str:
        return "return" if self.value is None else "return %s" % self.value
