"""Register IR and the bytecode-to-IR lifter.

The lift functions are re-exported lazily: ``repro.cfg.graph`` imports
``repro.ir.instr`` while ``repro.ir.lift`` imports ``repro.cfg.graph``,
so an eager import here would close an import cycle.
"""

from repro.ir import instr

__all__ = ["instr", "lift_code", "lift_module"]


def lift_code(code, module=None):
    """Lift one verified code object into a CFG of register IR."""
    from repro.ir.lift import lift_code as _lift_code

    return _lift_code(code, module)


def lift_module(module):
    """Lift every code object of a verified module."""
    from repro.ir.lift import lift_module as _lift_module

    return _lift_module(module)
