"""Shared ``argparse`` value parsers.

Flags that mean "how many workers" appear on several subcommands
(``table1 --jobs``, ``serve --workers``) and must reject garbage the
same way everywhere.  :func:`count_arg` builds the ``type=`` callable
once, parameterized by what is being counted and whether zero (meaning
"one per CPU", :func:`repro.perf.parallel.resolve_jobs`) is allowed.
"""

from __future__ import annotations

import argparse
from typing import Callable


def count_arg(what: str, allow_zero: bool = True) -> Callable[[str], int]:
    """An ``argparse`` type for a non-negative (or strictly positive)
    worker count named ``what``.

    With ``allow_zero`` (the default), 0 is accepted and documented as
    "one per CPU"; without it, only counts >= 1 pass.
    """

    def parse(value: str) -> int:
        try:
            count = int(value)
        except ValueError:
            raise argparse.ArgumentTypeError(
                "%s must be an integer, got %r" % (what, value)
            )
        if allow_zero:
            if count < 0:
                raise argparse.ArgumentTypeError(
                    "%s must be >= 0 (0 = one per CPU), got %d" % (what, count)
                )
        elif count < 1:
            raise argparse.ArgumentTypeError(
                "%s must be >= 1, got %d" % (what, count)
            )
        return count

    parse.__name__ = "%s_count" % what
    return parse
