"""Source positions and spans used by the lexer, parser and diagnostics."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Pos:
    """A 1-based (line, column) position in a source text."""

    line: int
    column: int

    def __str__(self) -> str:
        return "%d:%d" % (self.line, self.column)


UNKNOWN_POS = Pos(0, 0)


@dataclass(frozen=True)
class Span:
    """A half-open region of source text, used to attribute AST nodes."""

    start: Pos
    end: Pos

    def __str__(self) -> str:
        return "%s-%s" % (self.start, self.end)

    @staticmethod
    def at(pos: Pos) -> "Span":
        return Span(pos, pos)


UNKNOWN_SPAN = Span(UNKNOWN_POS, UNKNOWN_POS)
