"""Exception hierarchy shared by every repro subsystem.

Each pipeline stage raises its own subclass of :class:`ReproError` so that
callers can distinguish, e.g., a parse error in a benchmark source from a
failure of the bound analysis, while still being able to catch everything
from the toolchain with a single ``except ReproError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro toolchain."""


class SourceError(ReproError):
    """An error tied to a position in a source program."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = "%d:%d: %s" % (line, column, message)
        super().__init__(message)


class LexError(SourceError):
    """The lexer met a character sequence it cannot tokenize."""


class ParseError(SourceError):
    """The parser met an unexpected token."""


class TypeError_(SourceError):
    """The type checker rejected the program.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class CompileError(ReproError):
    """AST-to-bytecode compilation failed (an internal invariant broke)."""


class VerifyError(ReproError):
    """The bytecode verifier rejected a code object."""


class LiftError(ReproError):
    """The bytecode-to-IR lifter failed (e.g. inconsistent stack heights)."""


class InterpError(ReproError):
    """The concrete interpreter hit a runtime fault (bad index, div by 0)."""


class FuelExhausted(InterpError):
    """The concrete interpreter ran out of fuel (possible nontermination)."""


class AnalysisError(ReproError):
    """A static analysis (taint, abstract interpretation, bounds) failed."""


class ResilienceError(ReproError):
    """Base class for the resilience layer (docs/RESILIENCE.md)."""


class ResourceExhausted(ResilienceError):
    """A cooperative :class:`~repro.resilience.budget.Budget` tripped.

    Raised at a named checkpoint site when the wall-clock deadline, the
    refinement-iteration limit, or the fixpoint-step limit is exceeded.
    Callers that can degrade soundly (the Blazer driver) catch this and
    substitute a ⊤ bound; everyone else lets it propagate.
    """

    def __init__(
        self,
        message: str,
        kind: str = "wall",
        site: str = "",
        elapsed: float = 0.0,
    ):
        super().__init__(message)
        self.kind = kind
        self.site = site
        self.elapsed = elapsed

    def __reduce__(self):
        return (
            self.__class__,
            (str(self), self.kind, self.site, self.elapsed),
        )


class WorkerCrashed(ResilienceError):
    """A pool worker died or kept failing past the retry budget.

    Covers both hard crashes (``BrokenProcessPool``: the worker process
    was killed) and tasks whose every attempt — including the serial
    fallback retries — raised.
    """

    def __init__(self, message: str, task: str = "", attempts: int = 0):
        super().__init__(message)
        self.task = task
        self.attempts = attempts

    def __reduce__(self):
        return (self.__class__, (str(self), self.task, self.attempts))


class CacheCorruption(ResilienceError):
    """A cache entry's stored checksum no longer matches its content.

    Raised internally by the cache read path and converted into a
    quarantine (evict + recompute + counter); it only propagates when
    self-healing is impossible.
    """

    def __init__(self, message: str, key: str = "", category: str = ""):
        super().__init__(message)
        self.key = key
        self.category = category

    def __reduce__(self):
        return (self.__class__, (str(self), self.key, self.category))


class InjectedFault(ResilienceError):
    """An error deliberately raised by the fault-injection harness.

    Only ever raised when a :class:`~repro.resilience.faults.FaultPlan`
    is active (tests, chaos drills) — production runs never see it.
    """

    def __init__(self, message: str, site: str = ""):
        super().__init__(message)
        self.site = site

    def __reduce__(self):
        return (self.__class__, (str(self), self.site))


class SuiteInterrupted(ResilienceError):
    """A benchmark-suite run was interrupted (SIGINT/KeyboardInterrupt).

    Carries the results completed before the interrupt; the journal (if
    any) has already been flushed when this is raised, so a later
    ``--resume`` run picks up where this one stopped.
    """

    def __init__(self, message: str, completed=None):
        super().__init__(message)
        self.completed = list(completed) if completed is not None else []


class ServiceError(ReproError):
    """The analysis service (docs/SERVICE.md) failed on the client side.

    Raised by :class:`~repro.service.client.ServiceClient` for
    connection failures and for requests the daemon rejected
    (``{"ok": false}`` responses).  Job *failures* are not errors at
    this level: a submitted job that crashed comes back as a normal
    response with ``state == "failed"``.
    """


class ProtocolError(ServiceError):
    """A malformed message on the service's NDJSON wire protocol."""


class ServiceOverloaded(ServiceError):
    """The daemon shed this request (admission control or rate limit).

    Raised by the clients once their bounded retry budget is exhausted;
    ``retry_after`` is the daemon's latest backoff hint in seconds.
    Overload is an explicit, *sound* degradation — the daemon said
    "not now", it never answered wrongly.
    """

    def __init__(self, message: str, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = retry_after

    def __reduce__(self):
        return (self.__class__, (str(self), self.retry_after))


class AutomatonError(ReproError):
    """An automata-library operation was used incorrectly."""


class TrailError(ReproError):
    """A trail expression or refinement operation was ill-formed."""
