"""Exception hierarchy shared by every repro subsystem.

Each pipeline stage raises its own subclass of :class:`ReproError` so that
callers can distinguish, e.g., a parse error in a benchmark source from a
failure of the bound analysis, while still being able to catch everything
from the toolchain with a single ``except ReproError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro toolchain."""


class SourceError(ReproError):
    """An error tied to a position in a source program."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = "%d:%d: %s" % (line, column, message)
        super().__init__(message)


class LexError(SourceError):
    """The lexer met a character sequence it cannot tokenize."""


class ParseError(SourceError):
    """The parser met an unexpected token."""


class TypeError_(SourceError):
    """The type checker rejected the program.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class CompileError(ReproError):
    """AST-to-bytecode compilation failed (an internal invariant broke)."""


class VerifyError(ReproError):
    """The bytecode verifier rejected a code object."""


class LiftError(ReproError):
    """The bytecode-to-IR lifter failed (e.g. inconsistent stack heights)."""


class InterpError(ReproError):
    """The concrete interpreter hit a runtime fault (bad index, div by 0)."""


class FuelExhausted(InterpError):
    """The concrete interpreter ran out of fuel (possible nontermination)."""


class AnalysisError(ReproError):
    """A static analysis (taint, abstract interpretation, bounds) failed."""


class AutomatonError(ReproError):
    """An automata-library operation was used incorrectly."""


class TrailError(ReproError):
    """A trail expression or refinement operation was ill-formed."""
