"""Shared utilities: errors, source positions, text tables."""

from repro.util.errors import (
    AnalysisError,
    AutomatonError,
    CompileError,
    FuelExhausted,
    InterpError,
    LexError,
    LiftError,
    ParseError,
    ReproError,
    SourceError,
    TrailError,
    TypeError_,
    VerifyError,
)
from repro.util.source import UNKNOWN_POS, UNKNOWN_SPAN, Pos, Span
from repro.util.table import render_table, render_tree

__all__ = [
    "AnalysisError",
    "AutomatonError",
    "CompileError",
    "FuelExhausted",
    "InterpError",
    "LexError",
    "LiftError",
    "ParseError",
    "ReproError",
    "SourceError",
    "TrailError",
    "TypeError_",
    "VerifyError",
    "Pos",
    "Span",
    "UNKNOWN_POS",
    "UNKNOWN_SPAN",
    "render_table",
    "render_tree",
]
