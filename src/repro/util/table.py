"""Plain-text table rendering for the benchmark harnesses.

The evaluation harness reproduces Table 1 of the paper as monospace text;
this module renders aligned columns without any third-party dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    aligns: Sequence[str] = (),
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table.

    ``aligns`` holds ``"l"`` or ``"r"`` per column; missing entries
    default to left alignment.  Cells are stringified with ``str``.
    """
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    ncols = len(headers)
    for row in str_rows:
        if len(row) != ncols:
            raise ValueError("row width %d != header width %d" % (len(row), ncols))
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            align = aligns[i] if i < len(aligns) else "l"
            if align == "r":
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = [fmt_row(list(headers))]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def render_tree(label: str, children: Sequence[str]) -> str:
    """Render a one-level tree: a label plus indented child strings.

    Children may themselves be multi-line renderings; every line of a
    child is indented consistently, which lets callers nest calls to
    build arbitrarily deep trees (used for trail-tree output a la Fig. 1).
    """
    lines = [label]
    for i, child in enumerate(children):
        last = i == len(children) - 1
        head = "`-- " if last else "|-- "
        cont = "    " if last else "|   "
        child_lines = child.splitlines() or [""]
        lines.append(head + child_lines[0])
        lines.extend(cont + rest for rest in child_lines[1:])
    return "\n".join(lines)
