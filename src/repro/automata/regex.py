"""Regular expressions over an arbitrary (hashable) symbol alphabet.

Trails are regular expressions whose symbols are CFG edges; the test
suite also uses character regexes.  This module provides the regex AST,
smart constructors that keep expressions small, a Thompson construction
(:func:`to_nfa` lives in :mod:`repro.automata.nfa` to avoid a cycle), and
a parser for character-symbol regexes used by tests and examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Hashable, Iterator, Tuple

Symbol = Hashable


class Regex:
    """Base class; use the smart constructors below to build instances."""

    def symbols(self) -> FrozenSet[Symbol]:
        """All symbols occurring syntactically in the expression."""
        raise NotImplementedError

    def nullable(self) -> bool:
        """Does the language contain the empty string?"""
        raise NotImplementedError

    def is_empty_language(self) -> bool:
        """Syntactic emptiness (exact thanks to the smart constructors)."""
        return isinstance(self, Empty)


@dataclass(frozen=True)
class Empty(Regex):
    """The empty language."""

    def symbols(self) -> FrozenSet[Symbol]:
        return frozenset()

    def nullable(self) -> bool:
        return False

    def __str__(self) -> str:
        return "∅"


@dataclass(frozen=True)
class Eps(Regex):
    """The language containing exactly the empty string."""

    def symbols(self) -> FrozenSet[Symbol]:
        return frozenset()

    def nullable(self) -> bool:
        return True

    def __str__(self) -> str:
        return "ε"


@dataclass(frozen=True)
class Sym(Regex):
    """A single-symbol language."""

    symbol: Symbol

    def symbols(self) -> FrozenSet[Symbol]:
        return frozenset({self.symbol})

    def nullable(self) -> bool:
        return False

    def __str__(self) -> str:
        if isinstance(self.symbol, tuple) and len(self.symbol) == 2:
            return "%s%s" % self.symbol  # CFG edge (i, j) prints as "ij"
        return str(self.symbol)


@dataclass(frozen=True)
class Concat(Regex):
    left: Regex
    right: Regex

    def symbols(self) -> FrozenSet[Symbol]:
        return self.left.symbols() | self.right.symbols()

    def nullable(self) -> bool:
        return self.left.nullable() and self.right.nullable()

    def __str__(self) -> str:
        def wrap(r: Regex) -> str:
            return "(%s)" % r if isinstance(r, Union) else str(r)

        return "%s.%s" % (wrap(self.left), wrap(self.right))


@dataclass(frozen=True)
class Union(Regex):
    left: Regex
    right: Regex

    def symbols(self) -> FrozenSet[Symbol]:
        return self.left.symbols() | self.right.symbols()

    def nullable(self) -> bool:
        return self.left.nullable() or self.right.nullable()

    def __str__(self) -> str:
        return "%s|%s" % (self.left, self.right)


@dataclass(frozen=True)
class Star(Regex):
    inner: Regex

    def symbols(self) -> FrozenSet[Symbol]:
        return self.inner.symbols()

    def nullable(self) -> bool:
        return True

    def __str__(self) -> str:
        inner = str(self.inner)
        if isinstance(self.inner, (Sym, Eps, Empty)):
            return "%s*" % inner
        return "(%s)*" % inner


# ---------------------------------------------------------------------------
# Smart constructors (normalize the obvious identities)
# ---------------------------------------------------------------------------

EMPTY = Empty()
EPSILON = Eps()


def sym(symbol: Symbol) -> Regex:
    return Sym(symbol)


def concat(left: Regex, right: Regex) -> Regex:
    if isinstance(left, Empty) or isinstance(right, Empty):
        return EMPTY
    if isinstance(left, Eps):
        return right
    if isinstance(right, Eps):
        return left
    return Concat(left, right)


def union(left: Regex, right: Regex) -> Regex:
    if isinstance(left, Empty):
        return right
    if isinstance(right, Empty):
        return left
    if left == right:
        return left
    return Union(left, right)


def star(inner: Regex) -> Regex:
    if isinstance(inner, (Empty, Eps)):
        return EPSILON
    if isinstance(inner, Star):
        return inner
    return Star(inner)


def seq(*parts: Regex) -> Regex:
    out: Regex = EPSILON
    for part in parts:
        out = concat(out, part)
    return out


def alt(*parts: Regex) -> Regex:
    out: Regex = EMPTY
    for part in parts:
        out = union(out, part)
    return out


def iter_subexprs(regex: Regex) -> Iterator[Regex]:
    """Pre-order traversal of all subexpressions (regex itself first)."""
    stack = [regex]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (Concat, Union)):
            stack.append(node.right)
            stack.append(node.left)
        elif isinstance(node, Star):
            stack.append(node.inner)


# ---------------------------------------------------------------------------
# Character-regex parser (tests/examples only)
# ---------------------------------------------------------------------------


def parse(text: str) -> Regex:
    """Parse a character regex: literals, ``|``, ``*``, ``()``, ``&`` = ε.

    Symbols are single characters.  Juxtaposition concatenates.  This is a
    convenience for unit tests, not part of the trail machinery.
    """

    pos = 0

    def peek() -> str:
        return text[pos] if pos < len(text) else ""

    def parse_union() -> Regex:
        nonlocal pos
        left = parse_concat()
        while peek() == "|":
            pos += 1
            left = union(left, parse_concat())
        return left

    def parse_concat() -> Regex:
        nonlocal pos
        out: Regex = EPSILON
        while peek() and peek() not in "|)":
            out = concat(out, parse_star())
        return out

    def parse_star() -> Regex:
        nonlocal pos
        atom = parse_atom()
        while peek() == "*":
            pos += 1
            atom = star(atom)
        return atom

    def parse_atom() -> Regex:
        nonlocal pos
        ch = peek()
        if ch == "(":
            pos += 1
            inner = parse_union()
            if peek() != ")":
                raise ValueError("unbalanced parentheses in regex %r" % text)
            pos += 1
            return inner
        if ch == "&":
            pos += 1
            return EPSILON
        if not ch or ch in "|*)":
            raise ValueError("unexpected %r in regex %r" % (ch, text))
        pos += 1
        return Sym(ch)

    result = parse_union()
    if pos != len(text):
        raise ValueError("trailing input in regex %r" % text)
    return result


def matches_brute(regex: Regex, word: Tuple[Symbol, ...]) -> bool:
    """Direct (derivative-based) matcher, used as a test oracle."""

    def derive(r: Regex, a: Symbol) -> Regex:
        if isinstance(r, (Empty, Eps)):
            return EMPTY
        if isinstance(r, Sym):
            return EPSILON if r.symbol == a else EMPTY
        if isinstance(r, Concat):
            d = concat(derive(r.left, a), r.right)
            if r.left.nullable():
                d = union(d, derive(r.right, a))
            return d
        if isinstance(r, Union):
            return union(derive(r.left, a), derive(r.right, a))
        if isinstance(r, Star):
            return concat(derive(r.inner, a), r)
        raise TypeError(type(r))

    cur = regex
    for symbol in word:
        cur = derive(cur, symbol)
        if isinstance(cur, Empty):
            return False
    return cur.nullable()
