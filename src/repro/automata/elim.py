"""Automaton-to-regex conversion by state elimination.

Used to present trails (which internally live as DFAs during refinement)
back to the user as annotated regular expressions, the form in which the
paper describes them (Section 4.1), and to build the most-general trail
regex from the CFG automaton.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.automata import regex as rx
from repro.automata.dfa import DFA
from repro.automata.nfa import NFA


def dfa_to_regex(dfa: DFA) -> rx.Regex:
    """Regex for L(dfa) via the generalized-NFA elimination algorithm."""
    trimmed = dfa.trimmed()
    if not trimmed.accepting:
        return rx.EMPTY
    # Generalized NFA: fresh initial and final states, regex-labelled arcs.
    start = trimmed.num_states
    final = trimmed.num_states + 1
    arcs: Dict[Tuple[int, int], rx.Regex] = {}

    def add(src: int, dst: int, label: rx.Regex) -> None:
        if (src, dst) in arcs:
            arcs[(src, dst)] = rx.union(arcs[(src, dst)], label)
        else:
            arcs[(src, dst)] = label

    add(start, trimmed.initial, rx.EPSILON)
    for state in trimmed.accepting:
        add(state, final, rx.EPSILON)
    for (src, symbol), dst in trimmed.transitions.items():
        add(src, dst, rx.sym(symbol))

    # Eliminate original states one by one.  Order heuristic: fewest
    # incident arcs first, which keeps intermediate regexes smaller.
    remaining = set(range(trimmed.num_states))
    while remaining:
        def degree(state: int) -> int:
            return sum(1 for (a, b) in arcs if a == state or b == state)

        victim = min(remaining, key=degree)
        remaining.discard(victim)
        self_loop: Optional[rx.Regex] = arcs.pop((victim, victim), None)
        loop_star = rx.star(self_loop) if self_loop is not None else rx.EPSILON
        incoming = [(a, r) for (a, b), r in arcs.items() if b == victim]
        outgoing = [(b, r) for (a, b), r in arcs.items() if a == victim]
        for (a, _) in incoming:
            arcs.pop((a, victim))
        for (b, _) in outgoing:
            arcs.pop((victim, b))
        for a, rin in incoming:
            for b, rout in outgoing:
                add(a, b, rx.seq(rin, loop_star, rout))

    return arcs.get((start, final), rx.EMPTY)


def regex_to_dfa(regex: rx.Regex, alphabet=None) -> DFA:
    """Compile a regex to a (minimized) DFA."""
    from repro.automata.nfa import from_regex

    nfa: NFA = from_regex(regex)
    dfa = nfa.determinize(alphabet)
    return dfa.minimized()
