"""Deterministic finite automata and the boolean algebra of languages.

This is the working core of the brics-automaton replacement: trails are
compiled to DFAs, and REFINEPARTITION manipulates them with intersection,
union, complement, inclusion and emptiness.

Transitions are *partial*: a missing ``(state, symbol)`` entry means the
word is rejected.  Operations that require totality (complement) complete
the automaton with a sink over an explicit alphabet first.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.util.errors import AutomatonError

Symbol = Hashable


@dataclass
class DFA:
    num_states: int = 0
    initial: int = 0
    accepting: Set[int] = field(default_factory=set)
    transitions: Dict[Tuple[int, Symbol], int] = field(default_factory=dict)
    alphabet: FrozenSet[Symbol] = frozenset()

    # -- basics ------------------------------------------------------------------

    def step(self, state: int, symbol: Symbol) -> Optional[int]:
        return self.transitions.get((state, symbol))

    def accepts(self, word: Tuple[Symbol, ...]) -> bool:
        state: Optional[int] = self.initial
        for symbol in word:
            state = self.step(state, symbol)  # type: ignore[arg-type]
            if state is None:
                return False
        return state in self.accepting

    def successors(self, state: int) -> List[Tuple[Symbol, int]]:
        return [(sym, dst) for (src, sym), dst in self.transitions.items() if src == state]

    def with_alphabet(self, alphabet: FrozenSet[Symbol]) -> "DFA":
        """The same automaton declared over a (super-)alphabet."""
        missing = self._used_symbols() - set(alphabet)
        if missing:
            raise AutomatonError("alphabet misses used symbols: %r" % (missing,))
        return DFA(self.num_states, self.initial, set(self.accepting), dict(self.transitions), frozenset(alphabet))

    def _used_symbols(self) -> Set[Symbol]:
        return {sym for (_, sym) in self.transitions}

    # -- language queries ----------------------------------------------------------

    def is_empty(self) -> bool:
        """Is the accepted language empty?"""
        return self.shortest_word() is None

    def shortest_word(self) -> Optional[Tuple[Symbol, ...]]:
        """A shortest accepted word, or None if the language is empty."""
        if self.initial in self.accepting:
            return ()
        parent: Dict[int, Tuple[int, Symbol]] = {}
        seen = {self.initial}
        queue = deque([self.initial])
        # Deterministic exploration order for reproducible witnesses.
        outgoing: Dict[int, List[Tuple[Symbol, int]]] = {}
        for (src, symbol), dst in self.transitions.items():
            outgoing.setdefault(src, []).append((symbol, dst))
        for src in outgoing:
            outgoing[src].sort(key=lambda pair: repr(pair[0]))
        while queue:
            state = queue.popleft()
            for symbol, dst in outgoing.get(state, []):
                if dst in seen:
                    continue
                seen.add(dst)
                parent[dst] = (state, symbol)
                if dst in self.accepting:
                    word: List[Symbol] = []
                    cur = dst
                    while cur != self.initial:
                        prev, sym = parent[cur]
                        word.append(sym)
                        cur = prev
                    return tuple(reversed(word))
                queue.append(dst)
        return None

    def is_finite(self) -> bool:
        """Is the accepted language finite?

        True iff the subgraph of *useful* states (reachable from the
        initial state and co-reachable to an accepting state) is acyclic,
        checked with Kahn's algorithm.
        """
        useful = self._useful_states()
        edges = [
            (src, dst)
            for (src, _), dst in self.transitions.items()
            if src in useful and dst in useful
        ]
        indegree = {state: 0 for state in useful}
        for _, dst in edges:
            indegree[dst] += 1
        queue = deque(state for state, deg in indegree.items() if deg == 0)
        removed = 0
        while queue:
            node = queue.popleft()
            removed += 1
            for src, dst in edges:
                if src == node:
                    indegree[dst] -= 1
                    if indegree[dst] == 0:
                        queue.append(dst)
        return removed == len(useful)

    def _useful_states(self) -> Set[int]:
        # Index successors/predecessors once: scanning the transition
        # dict per visited state is quadratic on product automata.
        fwd: Dict[int, List[int]] = {}
        rev: Dict[int, List[int]] = {}
        for (src, _), dst in self.transitions.items():
            fwd.setdefault(src, []).append(dst)
            rev.setdefault(dst, []).append(src)
        reachable: Set[int] = set()
        stack = [self.initial]
        while stack:
            state = stack.pop()
            if state in reachable:
                continue
            reachable.add(state)
            stack.extend(dst for dst in fwd.get(state, ()) if dst not in reachable)
        coreachable: Set[int] = set()
        stack = list(self.accepting)
        while stack:
            state = stack.pop()
            if state in coreachable:
                continue
            coreachable.add(state)
            stack.extend(src for src in rev.get(state, ()) if src not in coreachable)
        return reachable & coreachable

    # -- constructions -----------------------------------------------------------

    def completed(self, alphabet: Optional[FrozenSet[Symbol]] = None) -> "DFA":
        """Total version over ``alphabet`` (default: own alphabet ∪ used)."""
        symbols = set(self.alphabet) | self._used_symbols()
        if alphabet is not None:
            symbols |= set(alphabet)
        sink = self.num_states
        transitions = dict(self.transitions)
        need_sink = False
        for state in range(self.num_states):
            for symbol in symbols:
                if (state, symbol) not in transitions:
                    transitions[(state, symbol)] = sink
                    need_sink = True
        num_states = self.num_states
        if need_sink:
            num_states += 1
            for symbol in symbols:
                transitions[(sink, symbol)] = sink
        return DFA(num_states, self.initial, set(self.accepting), transitions, frozenset(symbols))

    def complement(self, alphabet: Optional[FrozenSet[Symbol]] = None) -> "DFA":
        total = self.completed(alphabet)
        accepting = {s for s in range(total.num_states) if s not in total.accepting}
        return DFA(total.num_states, total.initial, accepting, dict(total.transitions), total.alphabet)

    def _product(self, other: "DFA", accept_both: bool, accept_either: bool) -> "DFA":
        symbols = (
            set(self.alphabet)
            | self._used_symbols()
            | set(other.alphabet)
            | other._used_symbols()
        )
        left = self.completed(frozenset(symbols))
        right = other.completed(frozenset(symbols))
        index: Dict[Tuple[int, int], int] = {(left.initial, right.initial): 0}
        worklist = [(left.initial, right.initial)]
        transitions: Dict[Tuple[int, Symbol], int] = {}
        accepting: Set[int] = set()
        while worklist:
            pair = worklist.pop()
            src = index[pair]
            a_acc = pair[0] in left.accepting
            b_acc = pair[1] in right.accepting
            if (accept_both and a_acc and b_acc) or (accept_either and (a_acc or b_acc)):
                accepting.add(src)
            for symbol in symbols:
                nxt = (left.transitions[(pair[0], symbol)], right.transitions[(pair[1], symbol)])
                if nxt not in index:
                    index[nxt] = len(index)
                    worklist.append(nxt)
                transitions[(src, symbol)] = index[nxt]
        return DFA(len(index), 0, accepting, transitions, frozenset(symbols))

    def intersect(self, other: "DFA") -> "DFA":
        return self._product(other, accept_both=True, accept_either=False)

    def union(self, other: "DFA") -> "DFA":
        return self._product(other, accept_both=False, accept_either=True)

    def difference(self, other: "DFA") -> "DFA":
        symbols = (
            set(self.alphabet)
            | self._used_symbols()
            | set(other.alphabet)
            | other._used_symbols()
        )
        return self.intersect(other.complement(frozenset(symbols)))

    def includes(self, other: "DFA") -> bool:
        """Language inclusion: L(other) ⊆ L(self)."""
        return other.difference(self).is_empty()

    def equivalent(self, other: "DFA") -> bool:
        return self.includes(other) and other.includes(self)

    # -- minimization --------------------------------------------------------------

    def trimmed(self) -> "DFA":
        """Restrict to useful states (keeps at least the initial state)."""
        useful = self._useful_states()
        useful.add(self.initial)
        index = {old: new for new, old in enumerate(sorted(useful))}
        transitions = {
            (index[src], symbol): index[dst]
            for (src, symbol), dst in self.transitions.items()
            if src in useful and dst in useful
        }
        accepting = {index[s] for s in self.accepting if s in useful}
        return DFA(len(index), index[self.initial], accepting, transitions, self.alphabet)

    def minimized(self) -> "DFA":
        """Moore partition-refinement minimization of the trimmed DFA."""
        trimmed = self.trimmed().completed()
        symbols = sorted(trimmed.alphabet, key=repr)
        # Initial partition: accepting vs non-accepting.
        block_of = {
            state: (1 if state in trimmed.accepting else 0)
            for state in range(trimmed.num_states)
        }
        num_blocks = 2 if trimmed.accepting and len(trimmed.accepting) < trimmed.num_states else 1
        if not trimmed.accepting:
            block_of = {s: 0 for s in block_of}
            num_blocks = 1
        elif len(trimmed.accepting) == trimmed.num_states:
            block_of = {s: 0 for s in block_of}
            num_blocks = 1
        changed = True
        while changed:
            changed = False
            signature: Dict[int, Tuple] = {}
            for state in range(trimmed.num_states):
                signature[state] = (
                    block_of[state],
                    tuple(block_of[trimmed.transitions[(state, sym)]] for sym in symbols),
                )
            new_index: Dict[Tuple, int] = {}
            new_block_of: Dict[int, int] = {}
            for state in range(trimmed.num_states):
                sig = signature[state]
                if sig not in new_index:
                    new_index[sig] = len(new_index)
                new_block_of[state] = new_index[sig]
            if len(new_index) != num_blocks:
                changed = True
                num_blocks = len(new_index)
            block_of = new_block_of
        transitions: Dict[Tuple[int, Symbol], int] = {}
        for (src, symbol), dst in trimmed.transitions.items():
            transitions[(block_of[src], symbol)] = block_of[dst]
        accepting = {block_of[s] for s in trimmed.accepting}
        dfa = DFA(num_blocks, block_of[trimmed.initial], accepting, transitions, trimmed.alphabet)
        return dfa.trimmed()

    # -- enumeration (tests) ----------------------------------------------------------

    def enumerate_words(self, max_length: int) -> List[Tuple[Symbol, ...]]:
        """All accepted words up to ``max_length``, in length-lex order."""
        symbols = sorted(set(self.alphabet) | self._used_symbols(), key=repr)
        out: List[Tuple[Symbol, ...]] = []
        frontier: List[Tuple[Tuple[Symbol, ...], int]] = [((), self.initial)]
        for _ in range(max_length + 1):
            next_frontier: List[Tuple[Tuple[Symbol, ...], int]] = []
            for word, state in frontier:
                if state in self.accepting:
                    out.append(word)
                for symbol in symbols:
                    dst = self.step(state, symbol)
                    if dst is not None:
                        next_frontier.append((word + (symbol,), dst))
            frontier = next_frontier
        return out


def literal(word: Tuple[Symbol, ...]) -> DFA:
    """The DFA accepting exactly ``word``."""
    transitions = {(i, symbol): i + 1 for i, symbol in enumerate(word)}
    return DFA(len(word) + 1, 0, {len(word)}, transitions, frozenset(word))


def universal(alphabet: FrozenSet[Symbol]) -> DFA:
    """The DFA accepting every word over ``alphabet``."""
    return DFA(1, 0, {0}, {(0, s): 0 for s in alphabet}, frozenset(alphabet))


def empty(alphabet: FrozenSet[Symbol] = frozenset()) -> DFA:
    return DFA(1, 0, set(), {}, frozenset(alphabet))


def containing_symbol(alphabet: FrozenSet[Symbol], symbol: Symbol) -> DFA:
    """The DFA for Σ* symbol Σ*: words with at least one occurrence."""
    if symbol not in alphabet:
        raise AutomatonError("symbol %r not in alphabet" % (symbol,))
    transitions: Dict[Tuple[int, Symbol], int] = {}
    for s in alphabet:
        transitions[(0, s)] = 1 if s == symbol else 0
        transitions[(1, s)] = 1
    return DFA(2, 0, {1}, transitions, frozenset(alphabet))
