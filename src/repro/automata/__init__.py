"""Finite automata and regular expressions (the brics-automaton analogue)."""

from repro.automata import regex
from repro.automata.dfa import DFA, containing_symbol, empty, literal, universal
from repro.automata.elim import dfa_to_regex, regex_to_dfa
from repro.automata.nfa import NFA, from_regex

__all__ = [
    "regex",
    "DFA",
    "NFA",
    "from_regex",
    "dfa_to_regex",
    "regex_to_dfa",
    "literal",
    "universal",
    "empty",
    "containing_symbol",
]
