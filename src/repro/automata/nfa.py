"""Nondeterministic finite automata with epsilon transitions.

States are integers; symbols are arbitrary hashable values (CFG edges for
trails, characters in tests).  Provides the Thompson construction from
regexes and the subset construction to DFAs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.automata import regex as rx
from repro.util.errors import AutomatonError

Symbol = Hashable


@dataclass
class NFA:
    """An NFA: ``transitions[state][symbol] -> set of states``.

    ``None`` as a symbol key denotes an epsilon transition.
    """

    num_states: int = 0
    initial: int = 0
    accepting: Set[int] = field(default_factory=set)
    transitions: Dict[int, Dict[Optional[Symbol], Set[int]]] = field(default_factory=dict)

    def new_state(self) -> int:
        state = self.num_states
        self.num_states += 1
        return state

    def add_transition(self, src: int, symbol: Optional[Symbol], dst: int) -> None:
        if not (0 <= src < self.num_states and 0 <= dst < self.num_states):
            raise AutomatonError("transition between unknown states")
        self.transitions.setdefault(src, {}).setdefault(symbol, set()).add(dst)

    def alphabet(self) -> FrozenSet[Symbol]:
        symbols: Set[Symbol] = set()
        for edges in self.transitions.values():
            for symbol in edges:
                if symbol is not None:
                    symbols.add(symbol)
        return frozenset(symbols)

    # -- semantics -------------------------------------------------------------

    def epsilon_closure(self, states: Set[int]) -> FrozenSet[int]:
        closure = set(states)
        stack = list(states)
        while stack:
            state = stack.pop()
            for nxt in self.transitions.get(state, {}).get(None, ()):
                if nxt not in closure:
                    closure.add(nxt)
                    stack.append(nxt)
        return frozenset(closure)

    def accepts(self, word: Tuple[Symbol, ...]) -> bool:
        current = self.epsilon_closure({self.initial})
        for symbol in word:
            nxt: Set[int] = set()
            for state in current:
                nxt |= self.transitions.get(state, {}).get(symbol, set())
            if not nxt:
                return False
            current = self.epsilon_closure(nxt)
        return bool(current & self.accepting)

    # -- conversions -------------------------------------------------------------

    def determinize(self, alphabet: Optional[FrozenSet[Symbol]] = None) -> "DFA":
        """Subset construction.  ``alphabet`` may extend the used symbols."""
        from repro.automata.dfa import DFA

        symbols = set(self.alphabet())
        if alphabet is not None:
            symbols |= set(alphabet)
        start = self.epsilon_closure({self.initial})
        index: Dict[FrozenSet[int], int] = {start: 0}
        worklist: List[FrozenSet[int]] = [start]
        transitions: Dict[Tuple[int, Symbol], int] = {}
        accepting: Set[int] = set()
        if start & self.accepting:
            accepting.add(0)
        while worklist:
            subset = worklist.pop()
            src = index[subset]
            for symbol in symbols:
                targets: Set[int] = set()
                for state in subset:
                    targets |= self.transitions.get(state, {}).get(symbol, set())
                if not targets:
                    continue
                closure = self.epsilon_closure(targets)
                if closure not in index:
                    index[closure] = len(index)
                    worklist.append(closure)
                    if closure & self.accepting:
                        accepting.add(index[closure])
                transitions[(src, symbol)] = index[closure]
        return DFA(
            num_states=len(index),
            initial=0,
            accepting=accepting,
            transitions=transitions,
            alphabet=frozenset(symbols),
        )


def from_regex(regex: rx.Regex) -> NFA:
    """Thompson construction: one (start, end) state pair per subexpression."""
    nfa = NFA()

    def build(node: rx.Regex) -> Tuple[int, int]:
        start, end = nfa.new_state(), nfa.new_state()
        if isinstance(node, rx.Empty):
            pass  # no connection
        elif isinstance(node, rx.Eps):
            nfa.add_transition(start, None, end)
        elif isinstance(node, rx.Sym):
            nfa.add_transition(start, node.symbol, end)
        elif isinstance(node, rx.Concat):
            ls, le = build(node.left)
            rs, re_ = build(node.right)
            nfa.add_transition(start, None, ls)
            nfa.add_transition(le, None, rs)
            nfa.add_transition(re_, None, end)
        elif isinstance(node, rx.Union):
            ls, le = build(node.left)
            rs, re_ = build(node.right)
            nfa.add_transition(start, None, ls)
            nfa.add_transition(start, None, rs)
            nfa.add_transition(le, None, end)
            nfa.add_transition(re_, None, end)
        elif isinstance(node, rx.Star):
            is_, ie = build(node.inner)
            nfa.add_transition(start, None, is_)
            nfa.add_transition(start, None, end)
            nfa.add_transition(ie, None, is_)
            nfa.add_transition(ie, None, end)
        else:  # pragma: no cover
            raise AutomatonError("unknown regex node %r" % type(node).__name__)
        return start, end

    start, end = build(regex)
    nfa.initial = start
    nfa.accepting = {end}
    return nfa
