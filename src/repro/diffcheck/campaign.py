"""Fuzz-campaign runner: generate, check, shrink, journal, report.

``repro diffcheck --seed S --count N`` runs N differential checks on
the worker pool of :class:`~repro.benchsuite.runner.ParallelSuiteRunner`
(custom ``worker``/``codec``, same crash isolation, retry, JSONL
journal and ``--resume`` machinery the benchmark suite uses).

Determinism contract: the campaign *report* is a pure function of
``(seed, count, config)`` — program ``pNNNNNN`` is replayable from its
coordinates, results are emitted in index order whatever the completion
order, and no wall-clock timing, job count, or host detail enters the
report.  ``--seed S`` twice, and serial vs ``--jobs 4``, produce
byte-identical JSON; the determinism test enforces this.

Worker errors never kill a campaign: the worker catches its own
exceptions into error outcomes (counted as *degraded*, exit 4), so the
pool-level retry path only ever sees genuine crashes/timeouts.

Exit-code contract (shared with the rest of the CLI): 0 clean /
1 soundness bug / 4 degraded / 130 interrupted.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Dict, List, Optional

from repro.benchsuite.runner import ParallelSuiteRunner
from repro.diffcheck.differ import FATAL_KIND, DiffConfig, check_program
from repro.diffcheck.generator import GeneratorConfig, generate_program
from repro.diffcheck.shrink import shrink_source
from repro.obs.metrics import REGISTRY
from repro.obs.trace import span
from repro.resilience.retry import RetryPolicy

PROGRAMS_TOTAL = REGISTRY.counter(
    "repro_diffcheck_programs_total",
    "Differentially checked programs by result",
    labelnames=("result",),
)
DISAGREEMENTS_TOTAL = REGISTRY.counter(
    "repro_diffcheck_disagreements_total",
    "Differential disagreements by kind",
    labelnames=("kind",),
)

# Disagreement kinds worth a shrunk reproducer.  Precision gaps are
# routine (the self-composition baseline is *supposed* to be weak) and
# would swamp the corpus.
SHRINK_KINDS = (FATAL_KIND, "attack_spec_mismatch")


@dataclass
class ProgramOutcome:
    """One program's campaign row — slim, picklable, JSON-stable.

    ``retries``/``resumed`` are runner bookkeeping and deliberately
    excluded from :meth:`to_dict`, so journal rows and reports stay
    byte-identical across job counts and resume boundaries.
    """

    name: str
    index: int
    seed: int
    oracle_leaky: bool = False
    oracle_max_gap: int = 0
    oracle_errors: int = 0
    blazer: str = ""
    selfcomp: str = ""
    constant_time: Optional[bool] = False  # None = subject skipped
    pdsc: str = ""
    leakage: str = ""  # exact | upper-bound | unknown | skipped
    leakage_cells: Optional[int] = None
    oracle_cells: Optional[int] = None
    disagreements: List[Dict[str, str]] = field(default_factory=list)
    source: str = ""  # kept only for shrink-worthy rows
    shrunk_source: str = ""
    domains: Dict[str, List[int]] = field(default_factory=dict)  # ditto
    error: str = ""  # worker-side failure (degrades the campaign)
    retries: int = 0
    resumed: bool = False
    # Per-subject wall clock — volatile, for the bench harness only;
    # excluded from to_dict like the runner bookkeeping below it.
    subject_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def fatal(self) -> bool:
        return any(d["kind"] == FATAL_KIND for d in self.disagreements)

    @property
    def clean(self) -> bool:
        return not self.disagreements and not self.error

    def to_dict(self) -> Dict[str, Any]:
        record = dataclasses.asdict(self)
        del record["retries"]
        del record["resumed"]
        del record["subject_seconds"]
        return record

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "ProgramOutcome":
        known = {f.name for f in dataclasses.fields(ProgramOutcome)}
        return ProgramOutcome(**{k: v for k, v in data.items() if k in known})


@dataclass(frozen=True)
class CampaignConfig:
    """Everything one campaign needs — picklable for the worker pool."""

    seed: int = 0
    count: int = 200
    diff: DiffConfig = DiffConfig()
    generator: GeneratorConfig = GeneratorConfig()
    shrink: bool = True
    max_shrink_checks: int = 200


def run_program(name: str, config: CampaignConfig) -> ProgramOutcome:
    """The pool worker: regenerate program ``name`` and check it.

    Never raises on analysis trouble: any exception becomes an error
    outcome so one pathological program cannot sink the campaign.
    """
    index = int(name.lstrip("p"))
    outcome = ProgramOutcome(name=name, index=index, seed=config.seed)
    with span("diffcheck.program", program=name, seed=config.seed):
        try:
            program = generate_program(config.seed, index, config.generator)
            report = check_program(program, config.diff)
            outcome.oracle_leaky = report.oracle.leaky
            outcome.oracle_max_gap = report.oracle.max_gap
            outcome.oracle_errors = report.oracle.errors
            outcome.blazer = report.blazer_status
            outcome.selfcomp = report.selfcomp_outcome
            outcome.constant_time = report.constant_time
            outcome.pdsc = report.pdsc_outcome
            outcome.leakage = report.leakage_status
            outcome.leakage_cells = report.leakage_cells
            outcome.oracle_cells = report.oracle_cells
            outcome.subject_seconds = dict(report.subject_seconds)
            outcome.disagreements = [d.to_dict() for d in report.disagreements]
            worth_shrinking = {
                (d.kind, d.engine)
                for d in report.disagreements
                if d.kind in SHRINK_KINDS
            }
            if worth_shrinking:
                outcome.source = program.source
                outcome.domains = {
                    name: list(values) for name, values in program.domains
                }
                if config.shrink:
                    shrunk = shrink_source(
                        program.source,
                        program.domain_map,
                        config.diff,
                        target=frozenset(worth_shrinking),
                        name=name,
                        max_checks=config.max_shrink_checks,
                    )
                    outcome.shrunk_source = shrunk.source
        except Exception as exc:  # noqa: BLE001 - campaign fault isolation
            outcome.error = "%s: %s" % (type(exc).__name__, exc)
    return outcome


@dataclass
class CampaignReport:
    """The deterministic end-of-campaign artifact."""

    seed: int
    count: int
    threshold: int
    domain: str
    outcomes: List[ProgramOutcome]
    subjects: tuple = ()

    def subject_seconds(self) -> Dict[str, float]:
        """Aggregate wall clock per subject (volatile — bench only)."""
        totals: Dict[str, float] = {}
        for outcome in self.outcomes:
            for subject, seconds in outcome.subject_seconds.items():
                totals[subject] = totals.get(subject, 0.0) + seconds
        return totals

    @property
    def soundness_bugs(self) -> List[ProgramOutcome]:
        return [o for o in self.outcomes if o.fatal]

    @property
    def errors(self) -> List[ProgramOutcome]:
        return [o for o in self.outcomes if o.error]

    @property
    def degraded(self) -> bool:
        return bool(self.errors)

    @property
    def exit_code(self) -> int:
        if self.soundness_bugs:
            return 1
        if self.degraded:
            return 4
        return 0

    def kind_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            for d in outcome.disagreements:
                counts[d["kind"]] = counts.get(d["kind"], 0) + 1
        return counts

    def to_dict(self) -> Dict[str, Any]:
        return {
            "campaign": {
                "seed": self.seed,
                "count": self.count,
                "threshold": self.threshold,
                "domain": self.domain,
                "subjects": list(self.subjects),
            },
            "summary": {
                "programs": len(self.outcomes),
                "clean": sum(1 for o in self.outcomes if o.clean),
                "oracle_leaky": sum(1 for o in self.outcomes if o.oracle_leaky),
                "blazer_safe": sum(1 for o in self.outcomes if o.blazer == "safe"),
                "blazer_attack": sum(1 for o in self.outcomes if o.blazer == "attack"),
                "selfcomp_verified": sum(
                    1 for o in self.outcomes if o.selfcomp == "verified"
                ),
                "pdsc_verified": sum(1 for o in self.outcomes if o.pdsc == "verified"),
                "pdsc_exhausted": sum(
                    1 for o in self.outcomes if o.pdsc == "exhausted"
                ),
                "leakage_exact": sum(
                    1 for o in self.outcomes if o.leakage == "exact"
                ),
                "leakage_upper_bound": sum(
                    1 for o in self.outcomes if o.leakage == "upper-bound"
                ),
                "leakage_unknown": sum(
                    1 for o in self.outcomes if o.leakage == "unknown"
                ),
                "soundness_bugs": len(self.soundness_bugs),
                "errors": len(self.errors),
                "disagreements": self.kind_counts(),
            },
            "programs": [o.to_dict() for o in self.outcomes],
        }

    def to_json(self) -> str:
        """Canonical rendering — the byte-identical determinism surface."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"


def write_corpus(report: CampaignReport, corpus_dir: str) -> List[str]:
    """Write every shrunk reproducer as a corpus JSON file.

    Files are keyed by campaign coordinates (``sSEED-pNNNNNN.json``) so
    re-running the same campaign overwrites rather than duplicates.
    """
    written: List[str] = []
    os.makedirs(corpus_dir, exist_ok=True)
    for outcome in report.outcomes:
        if not outcome.shrunk_source and not outcome.source:
            continue
        entry = {
            "name": "s%d-%s" % (outcome.seed, outcome.name),
            "seed": outcome.seed,
            "index": outcome.index,
            "threshold": report.threshold,
            "domain": report.domain,
            "source": outcome.shrunk_source or outcome.source,
            "domains": outcome.domains,
            "expect": sorted(
                {
                    (d["kind"], d["engine"])
                    for d in outcome.disagreements
                    if d["kind"] in SHRINK_KINDS
                }
            ),
        }
        path = os.path.join(corpus_dir, entry["name"] + ".json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(entry, handle, sort_keys=True, indent=2)
            handle.write("\n")
        written.append(path)
    return written


def run_campaign(
    config: CampaignConfig,
    jobs: Optional[int] = 1,
    backend: str = "auto",
    journal: Optional[str] = None,
    resume: bool = False,
    retries: int = 1,
    task_timeout: Optional[float] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> CampaignReport:
    """Run one campaign on the suite runner's pool machinery.

    Raises :class:`~repro.util.errors.SuiteInterrupted` on SIGINT with
    the completed prefix journaled (the CLI maps that to exit 130).
    """
    names = ["p%06d" % index for index in range(config.count)]
    with span("diffcheck.campaign", seed=config.seed, count=config.count):
        runner = ParallelSuiteRunner(
            benchmarks=names,
            jobs=jobs,
            backend=backend,
            retries=retries,
            task_timeout=task_timeout,
            journal=journal,
            resume=resume,
            retry_policy=retry_policy,
            worker=partial(run_program, config=config),
            codec=ProgramOutcome,
        )
        outcomes = runner.run()
    for outcome in outcomes:
        result = "error" if outcome.error else ("dirty" if not outcome.clean else "clean")
        PROGRAMS_TOTAL.labels(result=result).inc()
        for d in outcome.disagreements:
            DISAGREEMENTS_TOTAL.labels(kind=d["kind"]).inc()
    return CampaignReport(
        seed=config.seed,
        count=config.count,
        threshold=config.diff.threshold,
        domain=config.diff.domain,
        outcomes=outcomes,
        subjects=tuple(config.diff.subjects),
    )
