"""Greedy counterexample shrinker.

When the differential checker flags a program, the raw generated source
is rarely the story — half its statements are noise.  The shrinker
repeatedly tries structural deletions and keeps any candidate on which
the *same disagreement signature* (the set of ``(kind, engine)`` pairs
originally observed) still shows up, until no single mutation helps.

Mutations, all strictly size-decreasing (so the greedy loop terminates
without a fuel counter of its own):

* delete one statement — except a procedure's trailing ``return`` and
  the trailing increment of a counted loop body (deleting that would
  manufacture an infinite loop, not a smaller reproducer; candidates
  that loop anyway are rejected because the oracle aborts on fuel
  exhaustion);
* splice an ``if`` into its then- or else-branch statements;
* replace a ``return e`` value with ``0``.

Candidates that fail the front end (orphaned uses after a deletion,
missing return) are simply rejected — the type checker is the validity
filter, the differ is the interestingness filter.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.diffcheck.differ import DiffConfig, ProgramReport, check_source
from repro.lang import ast, parse_program
from repro.lang.pretty import format_program
from repro.util.errors import ReproError

Signature = FrozenSet[Tuple[str, str]]


def signature_of(report: ProgramReport) -> Signature:
    """The shrink-invariant: which engines disagreed, and how."""
    return frozenset((d.kind, d.engine) for d in report.disagreements)


@dataclass
class ShrinkResult:
    source: str
    report: ProgramReport
    checks: int  # differ invocations spent
    removed: int  # statements removed from the original


def _blocks(program: ast.Program) -> Iterator[Tuple[ast.Block, bool]]:
    """Every block in deterministic order, flagged when it is a loop body."""

    def walk(block: ast.Block, loop_body: bool) -> Iterator[Tuple[ast.Block, bool]]:
        yield block, loop_body
        for stmt in block.stmts:
            if isinstance(stmt, ast.If):
                yield from walk(stmt.then, loop_body)
                if stmt.orelse is not None:
                    yield from walk(stmt.orelse, loop_body)
            elif isinstance(stmt, (ast.While, ast.For)):
                yield from walk(stmt.body, True)

    for proc in program.defined_procs():
        assert proc.body is not None
        yield from walk(proc.body, False)


def _stmt_count(program: ast.Program) -> int:
    count = 0
    for block, _ in _blocks(program):
        count += len(block.stmts)
    return count


def _candidates(program: ast.Program) -> Iterator[Tuple[int, int, str]]:
    """(block index, statement index, action) triples on the current AST."""
    for bi, (block, loop_body) in enumerate(_blocks(program)):
        last = len(block.stmts) - 1
        for si, stmt in enumerate(block.stmts):
            deletable = True
            if isinstance(stmt, ast.Return):
                deletable = False
            if loop_body and si == last:
                deletable = False  # the counted loop's increment
            if deletable:
                yield bi, si, "delete"
            if isinstance(stmt, ast.If):
                yield bi, si, "then"
                if stmt.orelse is not None:
                    yield bi, si, "else"
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                if not isinstance(stmt.value, ast.IntLit):
                    yield bi, si, "zero"


def _apply(program: ast.Program, bi: int, si: int, action: str) -> Optional[ast.Program]:
    mutated = copy.deepcopy(program)
    block = [b for b, _ in _blocks(mutated)][bi]
    stmt = block.stmts[si]
    if action == "delete":
        del block.stmts[si]
    elif action == "then":
        assert isinstance(stmt, ast.If)
        block.stmts[si : si + 1] = list(stmt.then.stmts)
    elif action == "else":
        assert isinstance(stmt, ast.If) and stmt.orelse is not None
        block.stmts[si : si + 1] = list(stmt.orelse.stmts)
    elif action == "zero":
        assert isinstance(stmt, ast.Return)
        stmt.value = ast.IntLit(0)
    else:  # pragma: no cover - defensive
        return None
    return mutated


def shrink_source(
    source: str,
    domains: Mapping[str, Sequence[int]],
    config: DiffConfig = DiffConfig(),
    target: Optional[Signature] = None,
    name: str = "shrunk",
    max_checks: int = 400,
) -> ShrinkResult:
    """Greedily minimize ``source`` while its disagreements persist.

    ``target`` defaults to the signature of the initial check; shrinking
    keeps a candidate iff its signature is a superset (mutations may
    surface *extra* disagreements — they never launder the original
    away).
    """
    report = check_source(source, domains, config, name=name)
    if target is None:
        target = signature_of(report)
    checks = 1
    if not target:
        return ShrinkResult(source, report, checks, 0)

    program = parse_program(source)
    before = _stmt_count(program)
    progress = True
    while progress and checks < max_checks:
        progress = False
        for bi, si, action in list(_candidates(program)):
            if checks >= max_checks:
                break
            mutated = _apply(program, bi, si, action)
            if mutated is None:
                continue
            text = format_program(mutated)
            try:
                candidate = check_source(text, domains, config, name=name)
            except ReproError:
                continue
            finally:
                checks += 1
            if candidate.oracle.errors:
                continue  # fuel abort or faulting inputs: not a reproducer
            if not target <= signature_of(candidate):
                continue
            program = mutated
            report = candidate
            progress = True
            break  # restart candidate enumeration on the smaller AST
    return ShrinkResult(
        source=format_program(program),
        report=report,
        checks=checks,
        removed=before - _stmt_count(program),
    )
