"""Ground-truth timing oracle: exact TCF by exhaustive interpretation.

On the tiny domains the generator emits, timing-channel freedom is
*decidable by brute force*: run the interpreter on every input tuple,
group traces by their public projection, and compare running times
within each low-equivalence class.  The program leaks — in exactly the
paper's 2-safety sense, Definition 1 instantiated with the observer's
concrete slack — iff some class contains two traces whose cost gap
reaches the slack.

The slack is the same number the static side uses to call a bound
"narrow" (:func:`observer_slack` mirrors how the empirical tests read
it off an :class:`~repro.core.observer.ObserverModel`), so oracle and
engine answer the *same question* and disagreements are meaningful:

* oracle says leaky + engine says safe  ->  soundness bug;
* oracle says safe + engine says leaky/unknown  ->  precision gap.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cfg.graph import ControlFlowGraph
from repro.core.observer import effective_slack
from repro.interp.interp import Interpreter
from repro.interp.trace import Trace
from repro.util.errors import FuelExhausted, InterpError


def observer_slack(observer: object) -> int:
    """The concrete gap at which an observer distinguishes two times.

    ``ConcreteThresholdObserver`` exposes ``threshold``; the polynomial
    observer falls back to its ``epsilon``.  The clamp is
    :func:`repro.core.observer.effective_slack` — the one endpoint
    convention the observers themselves now apply, so ε=0 and ε>0 agree
    with this oracle on boundary costs.
    """
    slack = getattr(observer, "threshold", None)
    if slack is None:
        slack = getattr(observer, "epsilon", 1)
    return effective_slack(slack)


def cluster_count(times: Sequence[int], slack: int) -> int:
    """Distinguishable observations among concrete ``times``.

    Greedy gap clustering: sort, break a cluster at every consecutive
    gap ``>= slack``.  Two times land in different clusters iff some
    pair along the way is attacker-distinguishable, so the cluster
    count is exactly the number of observations an ε-observer can tell
    apart within this set.
    """
    if not times:
        return 0
    slack = effective_slack(slack)
    ordered = sorted(times)
    clusters = 1
    previous = ordered[0]
    for value in ordered[1:]:
        if value - previous >= slack:
            clusters += 1
        previous = value
    return clusters


def exact_leakage(traces: Sequence[Trace], slack: int) -> Tuple[int, float]:
    """Ground-truth leakage ``(classes, bits)`` from a trace pool.

    The attacker fixes the public inputs and observes time, so the true
    channel is *per low class*: the number of distinguishable timing
    clusters among the executions of one low class, maximized over low
    classes (min-entropy leakage of a deterministic channel under a
    uniform prior = log2 of that count).  Any sound static bound on
    distinguishable observations must dominate this number.
    """
    by_low: Dict[Tuple, List[int]] = {}
    for trace in traces:
        by_low.setdefault(trace.low_inputs, []).append(trace.time)
    classes = max(
        (cluster_count(times, slack) for times in by_low.values()),
        default=0,
    )
    return classes, math.log2(classes) if classes > 0 else 0.0


@dataclass(frozen=True)
class OracleWitness:
    """A concrete low-equivalent pair realizing the maximal gap."""

    low: Tuple[Tuple[str, object], ...]
    high_a: Tuple[Tuple[str, object], ...]
    high_b: Tuple[Tuple[str, object], ...]
    time_a: int
    time_b: int

    @property
    def gap(self) -> int:
        return abs(self.time_a - self.time_b)

    def to_dict(self) -> Dict[str, object]:
        return {
            "low": dict(self.low),
            "high_a": dict(self.high_a),
            "high_b": dict(self.high_b),
            "time_a": self.time_a,
            "time_b": self.time_b,
            "gap": self.gap,
        }


@dataclass(frozen=True)
class OracleVerdict:
    """The ground truth for one program under one slack."""

    leaky: bool
    max_gap: int
    slack: int
    traces: int
    classes: int
    errors: int  # inputs where the interpreter faulted (skipped)
    witness: Optional[OracleWitness] = None

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "leaky": self.leaky,
            "max_gap": self.max_gap,
            "slack": self.slack,
            "traces": self.traces,
            "classes": self.classes,
            "errors": self.errors,
        }
        if self.witness is not None:
            record["witness"] = self.witness.to_dict()
        return record


@dataclass
class TimingOracle:
    """Exhaustively decides TCF for one procedure on finite domains.

    ``domains`` maps every parameter name to the values it ranges over;
    enumeration order is the deterministic ``itertools.product`` order
    of those sequences, truncated at ``limit`` (stratification for the
    rare oversized space — the cut is deterministic, so campaign
    replays see the same truncation).
    """

    interpreter: Interpreter
    cfg: ControlFlowGraph
    domains: Mapping[str, Sequence[object]]
    slack: int = 1
    limit: int = 8192
    _traces: List[Trace] = field(default_factory=list, repr=False)

    def run(self) -> OracleVerdict:
        traces, errors = self._execute()
        by_low: Dict[Tuple, List[Trace]] = {}
        for trace in traces:
            by_low.setdefault(trace.low_inputs, []).append(trace)
        max_gap = 0
        witness: Optional[OracleWitness] = None
        for group in by_low.values():
            fastest = min(group, key=lambda t: t.time)
            slowest = max(group, key=lambda t: t.time)
            gap = slowest.time - fastest.time
            if gap > max_gap:
                max_gap = gap
                witness = OracleWitness(
                    low=fastest.low_inputs,
                    high_a=fastest.high_inputs,
                    high_b=slowest.high_inputs,
                    time_a=fastest.time,
                    time_b=slowest.time,
                )
        return OracleVerdict(
            leaky=max_gap >= self.slack,
            max_gap=max_gap,
            slack=self.slack,
            traces=len(traces),
            classes=len(by_low),
            errors=errors,
            witness=witness,
        )

    @property
    def trace_pool(self) -> List[Trace]:
        """The traces of the last :meth:`run` (for attack-spec replay)."""
        return self._traces

    def _execute(self) -> Tuple[List[Trace], int]:
        params = [p.name for p in self.cfg.params]
        spaces = [list(self.domains[name]) for name in params]
        traces: List[Trace] = []
        errors = 0
        count = 0
        for combo in itertools.product(*spaces):
            if count >= self.limit:
                break
            count += 1
            args = dict(zip(params, combo))
            try:
                traces.append(self.interpreter.run(self.cfg.name, args))
            except FuelExhausted:
                # A nontermination candidate (the shrinker creates these
                # by deleting loop increments): one fuel burn is enough
                # evidence — abort instead of burning fuel per input.
                errors += 1
                break
            except InterpError:
                errors += 1
        self._traces = traces
        return traces, errors
