"""Incremental-vs-scratch equivalence sweep over generated programs.

This is the differential battery of the incremental re-analysis plane
(docs/PERFORMANCE.md): every generated program is analyzed twice by the
Blazer driver — once with the ``REPRO_PERF_INCREMENTAL`` sub-flag
forced on, once forced off (the exact pre-incremental engine) — and the
two runs must agree *byte-for-byte*:

* same verdict status;
* same :func:`~repro.core.report.verdict_digest` (the digest hashes the
  full recursive partition tree, so equal digests mean equal bounds,
  statuses and notes at **every refinement round**, not just the final
  leaves);
* same per-node bound dictionaries, compared node-for-node so a
  divergence names the exact trail that differed instead of just "the
  digest changed".

The sweep rides the same pool machinery as the diffcheck campaign
(:class:`~repro.benchsuite.runner.ParallelSuiteRunner` with a custom
worker/codec), so ``--jobs 4`` exercises the incremental plane inside
real pool workers whose process-global memo tables accumulate across
programs — the deployment configuration, not a sanitized one.

Sabotage mode (the proof the battery has teeth): under a
``refine.delta:corrupt`` fault plan (:mod:`repro.resilience.faults`)
exactly one reused parent artifact is replaced with a zero-iteration
claim, and the sweep must flag **exactly one** divergent program.  Run
sabotage sweeps serially: fault hit counters are per process, so a
``@1`` spec would fire once per pool worker.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Dict, List, Optional, Tuple

from repro.benchsuite.runner import ParallelSuiteRunner
from repro.core.blazer import Blazer, BlazerConfig, BlazerVerdict
from repro.core.observer import DomainThresholdObserver
from repro.core.report import _bound_dict, verdict_digest
from repro.diffcheck.generator import (
    PROC_NAME,
    GeneratorConfig,
    generate_program,
)
from repro.leakage.model import extern_env
from repro.resilience.retry import RetryPolicy


@dataclass(frozen=True)
class EquivalenceConfig:
    """One sweep's knobs — picklable for the worker pool.

    ``scratch_perf`` selects the reference engine: True (default)
    compares against today's committed engine — perf layer on,
    incremental sub-flag off — which isolates exactly what this plane
    added (``bench_perf.py`` already gates perf-on against the seed
    engine); False compares against the perf-off seed engine itself,
    the strongest (and slowest) oracle.
    """

    seed: int = 0
    count: int = 300
    threshold: int = 24
    domain: str = "zone"
    scratch_perf: bool = True
    generator: GeneratorConfig = GeneratorConfig()


@dataclass
class EquivalenceOutcome:
    """One program's sweep row — slim, picklable, JSON-stable.

    ``retries``/``resumed`` are runner bookkeeping, excluded from
    :meth:`to_dict` so journal rows stay identical across job counts.
    """

    name: str
    index: int
    seed: int
    status_incremental: str = ""
    status_scratch: str = ""
    digest_incremental: str = ""
    digest_scratch: str = ""
    nodes: int = 0  # partition-tree nodes compared (all rounds)
    divergent_nodes: List[str] = field(default_factory=list)
    reuse_hits: int = 0  # refine.reuse during the incremental analyze()
    reuse_misses: int = 0
    dirty_loops: int = 0  # loops skipped as touched by the split
    error: str = ""
    retries: int = 0
    resumed: bool = False

    @property
    def diverged(self) -> bool:
        return bool(
            self.divergent_nodes
            or self.status_incremental != self.status_scratch
            or self.digest_incremental != self.digest_scratch
        )

    @property
    def clean(self) -> bool:
        return not self.diverged and not self.error

    def to_dict(self) -> Dict[str, Any]:
        record = dataclasses.asdict(self)
        del record["retries"]
        del record["resumed"]
        return record

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "EquivalenceOutcome":
        known = {f.name for f in dataclasses.fields(EquivalenceOutcome)}
        return EquivalenceOutcome(
            **{k: v for k, v in data.items() if k in known}
        )


def _tree_rows(verdict: BlazerVerdict) -> List[Tuple[str, Dict[str, Any]]]:
    """Every partition node (root, internal rounds, leaves) as a
    (path-label, comparable-content) row in deterministic pre-order."""
    rows: List[Tuple[str, Dict[str, Any]]] = []

    def visit(node, path: str) -> None:
        rows.append(
            (
                path,
                {
                    "description": node.trail.description,
                    "splits": [str(s) for s in node.trail.splits],
                    "status": node.status,
                    "note": node.note,
                    "bound": _bound_dict(node.bound),
                },
            )
        )
        for i, child in enumerate(node.children):
            visit(child, "%s.%d" % (path, i))

    visit(verdict.tree.root, "root")
    return rows


def _divergent_nodes(
    incremental: BlazerVerdict, scratch: BlazerVerdict
) -> List[str]:
    """Node-for-node comparison of the two partition trees.

    Because internal nodes are earlier rounds' leaves (their bounds and
    statuses are never recomputed once split), comparing every node
    compares every refinement round.
    """
    inc_rows = dict(_tree_rows(incremental))
    scr_rows = dict(_tree_rows(scratch))
    divergent = []
    for path in sorted(set(inc_rows) | set(scr_rows)):
        if inc_rows.get(path) != scr_rows.get(path):
            divergent.append(path)
    return divergent


def check_equivalence(
    name: str, config: EquivalenceConfig
) -> EquivalenceOutcome:
    """The pool worker: regenerate program ``name``, analyze it with the
    incremental plane on and off, and compare everything.

    The incremental run goes *first* so its lineage probes see only the
    state earlier programs left behind, never a bound the scratch run
    of the same program just stored.
    """
    index = int(name.lstrip("p"))
    outcome = EquivalenceOutcome(name=name, index=index, seed=config.seed)
    try:
        program = generate_program(config.seed, index, config.generator)
        model = extern_env(program.source)
        observer = DomainThresholdObserver(
            threshold=config.threshold,
            domains={
                key: tuple(values)
                for key, values in program.domain_map.items()
            },
        )

        def run(cache: Optional[bool], incremental: Optional[bool]):
            blazer = Blazer.from_source(
                program.source,
                BlazerConfig(
                    domain=config.domain,
                    observer=observer,
                    summaries=model.summaries,
                    cache=cache,
                    incremental=incremental,
                ),
            )
            return blazer.analyze(PROC_NAME)

        inc = run(cache=True, incremental=True)
        scr = (
            run(cache=True, incremental=False)
            if config.scratch_perf
            else run(cache=False, incremental=None)
        )

        outcome.status_incremental = inc.status
        outcome.status_scratch = scr.status
        outcome.digest_incremental = verdict_digest(inc)
        outcome.digest_scratch = verdict_digest(scr)
        outcome.nodes = len(inc.tree.all_nodes())
        outcome.divergent_nodes = _divergent_nodes(inc, scr)
        hits, misses = inc.cache_stats.get("refine.reuse", (0, 0))
        outcome.reuse_hits, outcome.reuse_misses = hits, misses
        events = getattr(inc, "cache_events", None)
        if isinstance(events, dict):
            outcome.dirty_loops = events.get("refine.dirty", 0)
    except Exception as exc:  # noqa: BLE001 - sweep fault isolation
        outcome.error = "%s: %s" % (type(exc).__name__, exc)
    return outcome


@dataclass
class SweepReport:
    """The deterministic end-of-sweep artifact."""

    config: EquivalenceConfig
    outcomes: List[EquivalenceOutcome]

    @property
    def divergences(self) -> List[EquivalenceOutcome]:
        return [o for o in self.outcomes if o.diverged]

    @property
    def errors(self) -> List[EquivalenceOutcome]:
        return [o for o in self.outcomes if o.error]

    @property
    def reuse_hits(self) -> int:
        return sum(o.reuse_hits for o in self.outcomes)

    @property
    def reuse_misses(self) -> int:
        return sum(o.reuse_misses for o in self.outcomes)

    def reuse_hit_rate(self) -> float:
        total = self.reuse_hits + self.reuse_misses
        return self.reuse_hits / total if total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sweep": {
                "seed": self.config.seed,
                "count": self.config.count,
                "threshold": self.config.threshold,
                "domain": self.config.domain,
                "scratch_perf": self.config.scratch_perf,
            },
            "summary": {
                "programs": len(self.outcomes),
                "divergences": len(self.divergences),
                "errors": len(self.errors),
                "reuse_hits": self.reuse_hits,
                "reuse_misses": self.reuse_misses,
                "reuse_hit_rate": round(self.reuse_hit_rate(), 4),
            },
            "programs": [o.to_dict() for o in self.outcomes],
        }


def run_sweep(
    config: EquivalenceConfig,
    jobs: Optional[int] = 1,
    backend: str = "auto",
    retries: int = 1,
    retry_policy: Optional[RetryPolicy] = None,
) -> SweepReport:
    """Run one equivalence sweep on the suite runner's pool machinery."""
    names = ["p%06d" % index for index in range(config.count)]
    runner = ParallelSuiteRunner(
        benchmarks=names,
        jobs=jobs,
        backend=backend,
        retries=retries,
        retry_policy=retry_policy,
        worker=partial(check_equivalence, config=config),
        codec=EquivalenceOutcome,
    )
    return SweepReport(config=config, outcomes=runner.run())
