"""Differential verification harness (docs/DIFFCHECK.md).

The repo's strongest correctness tool: generate thousands of small
random programs, compute ground-truth timing-channel freedom with the
concrete interpreter, and cross-check it against the two static
analyses we ship — the Blazer driver (:mod:`repro.core.blazer`) and the
self-composition baseline (:mod:`repro.core.selfcomp`).  Disagreements
are classified (soundness bug / precision gap / attack-spec mismatch /
missed attack), shrunk to minimal reproducers, and journaled into a
regression corpus.

Pieces:

* :mod:`repro.diffcheck.generator` — seeded, deterministic program
  generator over the :mod:`repro.lang` AST;
* :mod:`repro.diffcheck.oracle` — exhaustive (or stratified) concrete
  timing oracle deciding exact TCF against an observer's slack;
* :mod:`repro.diffcheck.differ` — the three-way differential check of
  one program;
* :mod:`repro.diffcheck.shrink` — greedy statement-deleting shrinker;
* :mod:`repro.diffcheck.campaign` — the fuzz-campaign runner behind
  ``repro diffcheck`` (crash-safe journal, ``--resume``, worker pool).
"""

from repro.diffcheck.generator import GeneratedProgram, GeneratorConfig, generate_program
from repro.diffcheck.oracle import OracleVerdict, TimingOracle, observer_slack
from repro.diffcheck.differ import (
    DiffConfig,
    Disagreement,
    ProgramReport,
    check_program,
    check_source,
)
from repro.diffcheck.shrink import shrink_source
from repro.diffcheck.campaign import (
    CampaignConfig,
    CampaignReport,
    ProgramOutcome,
    run_campaign,
)

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "DiffConfig",
    "Disagreement",
    "GeneratedProgram",
    "GeneratorConfig",
    "OracleVerdict",
    "ProgramOutcome",
    "ProgramReport",
    "TimingOracle",
    "check_program",
    "check_source",
    "generate_program",
    "observer_slack",
    "run_campaign",
    "shrink_source",
]
