"""Three-way differential check: oracle vs Blazer vs self-composition.

One program, four verdicts:

* the **ground-truth oracle** (exhaustive interpretation, exact TCF at
  the observer's slack);
* the **Blazer driver** — safe / attack / unknown, run with the
  interval-sound :class:`~repro.core.observer.DomainThresholdObserver`
  over the exact generated domains so its "safe" claims and the
  oracle's leak criterion answer the same question;
* the **self-composition baseline** — verified / unverified /
  exhausted, with ``epsilon = threshold - 1`` (``gap < T`` iff
  ``gap <= T-1``);
* the **constant-time checker** — a free cross-check: a scalar,
  extern-free program whose control flow is public-determined executes
  the same instruction sequence on every member of a low class, so
  control-flow constant-time implies a concrete gap of exactly zero.

Disagreement taxonomy (docs/DIFFCHECK.md):

=====================  =====  ==========================================
kind                   fatal  meaning
=====================  =====  ==========================================
``soundness_bug``      yes    an engine claimed safety the oracle refutes
``precision_gap``      no     engine failed to prove a truly safe program
``attack_spec_mismatch`` no   CHECKATTACK's trail pair does not replay
``missed_attack``      no     program leaks but CHECKATTACK found nothing
=====================  =====  ==========================================

The ``break_engine`` hook exists purely so the test suite can prove the
harness has teeth: ``"narrow"`` wraps the observer to call *every*
bound narrow (a deliberately unsound CHECKSAFE), which must surface as
``soundness_bug`` on any leaky program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.blazer import Blazer, BlazerConfig
from repro.core.consttime import verify_constant_time
from repro.core.observer import DomainThresholdObserver, ObserverModel
from repro.core.selfcomp import SelfComposition
from repro.core.witness import find_witness
from repro.diffcheck.generator import PROC_NAME, GeneratedProgram
from repro.diffcheck.oracle import OracleVerdict, TimingOracle
from repro.domains import DOMAINS
from repro.interp.interp import Interpreter

FATAL_KIND = "soundness_bug"
KINDS = (FATAL_KIND, "precision_gap", "attack_spec_mismatch", "missed_attack")


@dataclass(frozen=True)
class DiffConfig:
    """Shared knobs of one differential check / campaign."""

    threshold: int = 24  # observer slack T: a gap >= T is a leak
    domain: str = "zone"
    max_pairs: int = 2500  # self-composition pair-space budget
    oracle_limit: int = 8192
    fuel: int = 50_000  # far above any generated program's real cost
    # Test-only sabotage hook ("narrow"): see module docstring.
    break_engine: Optional[str] = None

    def observer(self, domains: Mapping[str, Sequence[int]]) -> ObserverModel:
        observer: ObserverModel = DomainThresholdObserver(
            threshold=self.threshold,
            domains={name: tuple(values) for name, values in domains.items()},
        )
        if self.break_engine == "narrow":
            observer = _NarrowEverything(observer)
        return observer


class _NarrowEverything(ObserverModel):
    """Deliberately unsound wrapper: every bound is 'narrow'."""

    name = "broken-narrow"

    def __init__(self, inner: ObserverModel):
        self._inner = inner

    def is_narrow(self, bound) -> bool:
        return True

    def distinguishable(self, a, b) -> bool:
        return self._inner.distinguishable(a, b)


@dataclass(frozen=True)
class Disagreement:
    """One classified divergence between an engine and the oracle."""

    kind: str  # one of KINDS
    engine: str  # "blazer" | "selfcomp" | "consttime"
    detail: str

    @property
    def fatal(self) -> bool:
        return self.kind == FATAL_KIND

    def to_dict(self) -> Dict[str, str]:
        return {"kind": self.kind, "engine": self.engine, "detail": self.detail}


@dataclass
class ProgramReport:
    """Everything the campaign records about one checked program."""

    name: str
    source: str
    oracle: OracleVerdict
    blazer_status: str
    selfcomp_outcome: str
    constant_time: bool
    disagreements: List[Disagreement] = field(default_factory=list)

    @property
    def fatal(self) -> bool:
        return any(d.fatal for d in self.disagreements)

    @property
    def clean(self) -> bool:
        return not self.disagreements

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "oracle": self.oracle.to_dict(),
            "blazer": self.blazer_status,
            "selfcomp": self.selfcomp_outcome,
            "constant_time": self.constant_time,
            "disagreements": [d.to_dict() for d in self.disagreements],
        }


def check_source(
    source: str,
    domains: Mapping[str, Sequence[int]],
    config: DiffConfig = DiffConfig(),
    name: str = "program",
    proc: str = PROC_NAME,
) -> ProgramReport:
    """Run the full three-way differential check on one program."""
    blazer = Blazer.from_source(
        source,
        BlazerConfig(domain=config.domain, observer=config.observer(domains)),
    )
    cfg = blazer.cfgs[proc]
    verdict = blazer.analyze(proc)
    consttime = verify_constant_time(blazer, proc)
    selfcomp = SelfComposition(
        cfg,
        DOMAINS[config.domain],
        epsilon=config.threshold - 1,
        max_pairs=config.max_pairs,
    ).verify()

    interpreter = Interpreter(blazer.cfgs, fuel=config.fuel)
    oracle = TimingOracle(
        interpreter,
        cfg,
        domains,
        slack=config.threshold,
        limit=config.oracle_limit,
    ).run()

    disagreements: List[Disagreement] = []

    # -- soundness: a safety claim the concrete semantics refute ----------
    if verdict.status == "safe" and oracle.leaky:
        disagreements.append(
            Disagreement(
                FATAL_KIND,
                "blazer",
                "CHECKSAFE verdict but oracle found low-equal gap %d >= %d"
                % (oracle.max_gap, oracle.slack),
            )
        )
    if selfcomp.verified and oracle.leaky:
        disagreements.append(
            Disagreement(
                FATAL_KIND,
                "selfcomp",
                "pair analysis proved |gap| <= %d but oracle found gap %d"
                % (config.threshold - 1, oracle.max_gap),
            )
        )
    if consttime.constant_time and oracle.max_gap > 0:
        disagreements.append(
            Disagreement(
                FATAL_KIND,
                "consttime",
                "control flow called constant-time but oracle gap is %d"
                % oracle.max_gap,
            )
        )

    # -- precision: a truly safe program the engines could not prove ------
    if not oracle.leaky:
        if verdict.status != "safe":
            disagreements.append(
                Disagreement(
                    "precision_gap",
                    "blazer",
                    "status %r on program with max gap %d < %d"
                    % (verdict.status, oracle.max_gap, oracle.slack),
                )
            )
        if not selfcomp.verified:
            disagreements.append(
                Disagreement(
                    "precision_gap",
                    "selfcomp",
                    "outcome %r on program with max gap %d < %d"
                    % (selfcomp.outcome, oracle.max_gap, oracle.slack),
                )
            )

    # -- attack specifications must replay under the interpreter ----------
    if verdict.status == "attack" and oracle.leaky and verdict.attack is not None:
        if verdict.attack.is_pair:
            witness = find_witness(
                interpreter,
                cfg,
                gap=config.threshold,
                spec=verdict.attack,
                overrides={k: list(v) for k, v in domains.items()},
                limit=config.oracle_limit,
            )
            if witness is None:
                disagreements.append(
                    Disagreement(
                        "attack_spec_mismatch",
                        "blazer",
                        "no low-equal pair with gap >= %d follows the "
                        "specification's trails" % config.threshold,
                    )
                )

    # -- leaks CHECKATTACK failed to describe ------------------------------
    if oracle.leaky and verdict.status == "unknown":
        disagreements.append(
            Disagreement(
                "missed_attack",
                "blazer",
                "oracle gap %d >= %d but no attack specification found"
                % (oracle.max_gap, oracle.slack),
            )
        )

    return ProgramReport(
        name=name,
        source=source,
        oracle=oracle,
        blazer_status=verdict.status,
        selfcomp_outcome=selfcomp.outcome,
        constant_time=consttime.constant_time,
        disagreements=disagreements,
    )


def check_program(
    program: GeneratedProgram, config: DiffConfig = DiffConfig()
) -> ProgramReport:
    """Differentially check one generated program."""
    return check_source(
        program.source,
        program.domain_map,
        config,
        name=program.name,
    )
