"""Four-way differential check: oracle vs Blazer vs self-composition
vs property-directed self-composition.

One program, five verdicts:

* the **ground-truth oracle** (exhaustive interpretation, exact TCF at
  the observer's slack) — always runs, it is what everyone is compared
  against;
* the **Blazer driver** — safe / attack / unknown, run with the
  interval-sound :class:`~repro.core.observer.DomainThresholdObserver`
  over the exact generated domains so its "safe" claims and the
  oracle's leak criterion answer the same question;
* the **self-composition baseline** — verified / unverified /
  exhausted, with ``epsilon = threshold - 1`` (``gap < T`` iff
  ``gap <= T-1``);
* the **property-directed checker** (:mod:`repro.pdsc`) — same
  three-valued vocabulary and the same ε, but with the CEGAR alignment
  loop in front of the fixpoint;
* the **constant-time checker** — a free cross-check: a scalar,
  extern-free program whose control flow is public-determined executes
  the same instruction sequence on every member of a low class, so
  control-flow constant-time implies a concrete gap of exactly zero.

``DiffConfig.subjects`` selects which engines run (default: all four).
A skipped subject reports the literal outcome ``"skipped"`` and
contributes no disagreements, so a report over a fixed subject set is
byte-identical whatever the other subjects would have said.

Disagreement taxonomy (docs/DIFFCHECK.md):

========================  =====  ==========================================
kind                      fatal  meaning
========================  =====  ==========================================
``soundness_bug``         yes    an engine claimed safety the oracle refutes
``precision_gap``         no     engine's fixpoint converged but could not
                                 prove a truly safe program
``exhausted``             no     engine gave up (pair/refinement budget,
                                 deadline) on a truly safe program — a
                                 budget data point, not a precision one
``attack_spec_mismatch``  no     CHECKATTACK's trail pair does not replay
``missed_attack``         no     program leaks but CHECKATTACK found nothing
========================  =====  ==========================================

The ``break_engine`` hook exists purely so the test suite can prove the
harness has teeth: ``"narrow"`` wraps the observer to call *every*
bound narrow (a deliberately unsound CHECKSAFE), and ``"pdsc-verify"``
forces the PDSC outcome to "verified" — each must surface as
``soundness_bug`` on any leaky program.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.blazer import Blazer, BlazerConfig
from repro.core.consttime import verify_constant_time
from repro.core.observer import DomainThresholdObserver, ObserverModel
from repro.core.selfcomp import SelfComposition
from repro.core.witness import find_witness
from repro.diffcheck.generator import PROC_NAME, GeneratedProgram
from repro.diffcheck.oracle import OracleVerdict, TimingOracle
from repro.domains import DOMAINS
from repro.interp.interp import Interpreter
from repro.pdsc import PDSC
from repro.util.errors import AnalysisError

FATAL_KIND = "soundness_bug"
KINDS = (
    FATAL_KIND,
    "precision_gap",
    "exhausted",
    "attack_spec_mismatch",
    "missed_attack",
)

# The four subjects, in canonical order.  "skipped" is the outcome a
# deselected subject reports.
SUBJECTS = ("blazer", "selfcomp", "consttime", "pdsc")
SKIPPED = "skipped"


def parse_subjects(spec: str) -> Tuple[str, ...]:
    """A ``--subjects`` comma list → canonical subject tuple.

    Order-insensitive and duplicate-tolerant on input; the result is
    always in :data:`SUBJECTS` order so equal selections fingerprint
    (and report) identically however they were spelled.
    """
    requested = {part.strip() for part in spec.split(",") if part.strip()}
    unknown = requested - set(SUBJECTS)
    if unknown:
        raise AnalysisError(
            "unknown subject(s) %s (available: %s)"
            % (", ".join(sorted(unknown)), ", ".join(SUBJECTS))
        )
    if not requested:
        raise AnalysisError("--subjects needs at least one subject")
    return tuple(s for s in SUBJECTS if s in requested)


@dataclass(frozen=True)
class DiffConfig:
    """Shared knobs of one differential check / campaign."""

    threshold: int = 24  # observer slack T: a gap >= T is a leak
    domain: str = "zone"
    max_pairs: int = 2500  # pair-space budget (selfcomp and pdsc alike)
    max_refinements: int = 3  # pdsc alignment-refinement budget
    oracle_limit: int = 8192
    fuel: int = 50_000  # far above any generated program's real cost
    subjects: Tuple[str, ...] = SUBJECTS
    # Test-only sabotage hooks ("narrow", "pdsc-verify"): see module
    # docstring.
    break_engine: Optional[str] = None

    def observer(self, domains: Mapping[str, Sequence[int]]) -> ObserverModel:
        observer: ObserverModel = DomainThresholdObserver(
            threshold=self.threshold,
            domains={name: tuple(values) for name, values in domains.items()},
        )
        if self.break_engine == "narrow":
            observer = _NarrowEverything(observer)
        return observer


class _NarrowEverything(ObserverModel):
    """Deliberately unsound wrapper: every bound is 'narrow'."""

    name = "broken-narrow"

    def __init__(self, inner: ObserverModel):
        self._inner = inner

    def is_narrow(self, bound) -> bool:
        return True

    def distinguishable(self, a, b) -> bool:
        return self._inner.distinguishable(a, b)


@dataclass(frozen=True)
class Disagreement:
    """One classified divergence between an engine and the oracle."""

    kind: str  # one of KINDS
    engine: str  # "blazer" | "selfcomp" | "consttime" | "pdsc"
    detail: str

    @property
    def fatal(self) -> bool:
        return self.kind == FATAL_KIND

    def to_dict(self) -> Dict[str, str]:
        return {"kind": self.kind, "engine": self.engine, "detail": self.detail}


@dataclass
class ProgramReport:
    """Everything the campaign records about one checked program.

    ``subject_seconds`` (wall clock per subject) is a volatile side
    channel for the bench harness: deliberately absent from
    :meth:`to_dict` so reports stay byte-identical across hosts/runs.
    """

    name: str
    source: str
    oracle: OracleVerdict
    blazer_status: str
    selfcomp_outcome: str
    constant_time: Optional[bool]  # None = subject skipped
    pdsc_outcome: str = SKIPPED
    disagreements: List[Disagreement] = field(default_factory=list)
    subject_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def fatal(self) -> bool:
        return any(d.fatal for d in self.disagreements)

    @property
    def clean(self) -> bool:
        return not self.disagreements

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "oracle": self.oracle.to_dict(),
            "blazer": self.blazer_status,
            "selfcomp": self.selfcomp_outcome,
            "constant_time": self.constant_time,
            "pdsc": self.pdsc_outcome,
            "disagreements": [d.to_dict() for d in self.disagreements],
        }


def check_source(
    source: str,
    domains: Mapping[str, Sequence[int]],
    config: DiffConfig = DiffConfig(),
    name: str = "program",
    proc: str = PROC_NAME,
) -> ProgramReport:
    """Run the full differential check on one program."""
    subjects = config.subjects
    seconds: Dict[str, float] = {}
    blazer = Blazer.from_source(
        source,
        BlazerConfig(domain=config.domain, observer=config.observer(domains)),
    )
    cfg = blazer.cfgs[proc]
    epsilon = config.threshold - 1  # gap < T  iff  |gap| <= T-1

    verdict = None
    if "blazer" in subjects:
        started = time.perf_counter()
        verdict = blazer.analyze(proc)
        seconds["blazer"] = time.perf_counter() - started

    consttime = None
    if "consttime" in subjects:
        started = time.perf_counter()
        consttime = verify_constant_time(blazer, proc)
        seconds["consttime"] = time.perf_counter() - started

    selfcomp = None
    if "selfcomp" in subjects:
        started = time.perf_counter()
        selfcomp = SelfComposition(
            cfg,
            DOMAINS[config.domain],
            epsilon=epsilon,
            max_pairs=config.max_pairs,
        ).verify()
        seconds["selfcomp"] = time.perf_counter() - started

    pdsc = None
    if "pdsc" in subjects:
        started = time.perf_counter()
        pdsc = PDSC(
            cfg,
            DOMAINS[config.domain],
            epsilon=epsilon,
            max_pairs=config.max_pairs,
            max_refinements=config.max_refinements,
        ).verify()
        seconds["pdsc"] = time.perf_counter() - started
        if config.break_engine == "pdsc-verify":
            # Sabotage hook: claim a proof whatever the loop found, so
            # the soundness check below demonstrably has teeth.
            pdsc = replace(pdsc, verified=True, outcome="verified")

    interpreter = Interpreter(blazer.cfgs, fuel=config.fuel)
    oracle = TimingOracle(
        interpreter,
        cfg,
        domains,
        slack=config.threshold,
        limit=config.oracle_limit,
    ).run()

    disagreements: List[Disagreement] = []

    # -- soundness: a safety claim the concrete semantics refute ----------
    if verdict is not None and verdict.status == "safe" and oracle.leaky:
        disagreements.append(
            Disagreement(
                FATAL_KIND,
                "blazer",
                "CHECKSAFE verdict but oracle found low-equal gap %d >= %d"
                % (oracle.max_gap, oracle.slack),
            )
        )
    for engine, outcome in (("selfcomp", selfcomp), ("pdsc", pdsc)):
        if outcome is not None and outcome.verified and oracle.leaky:
            disagreements.append(
                Disagreement(
                    FATAL_KIND,
                    engine,
                    "pair analysis proved |gap| <= %d but oracle found gap %d"
                    % (epsilon, oracle.max_gap),
                )
            )
    if (
        consttime is not None
        and consttime.constant_time
        and oracle.max_gap > 0
    ):
        disagreements.append(
            Disagreement(
                FATAL_KIND,
                "consttime",
                "control flow called constant-time but oracle gap is %d"
                % oracle.max_gap,
            )
        )

    # -- precision/budget: a truly safe program left unproven -------------
    if not oracle.leaky:
        if verdict is not None and verdict.status != "safe":
            disagreements.append(
                Disagreement(
                    "precision_gap",
                    "blazer",
                    "status %r on program with max gap %d < %d"
                    % (verdict.status, oracle.max_gap, oracle.slack),
                )
            )
        for engine, outcome in (("selfcomp", selfcomp), ("pdsc", pdsc)):
            if outcome is None or outcome.verified:
                continue
            # "the engine gave up" and "the engine's abstraction is too
            # coarse" are different findings: exhaustion is a budget
            # knob, a converged-but-unproven fixpoint is a precision
            # ceiling.
            kind = "exhausted" if outcome.exhausted else "precision_gap"
            disagreements.append(
                Disagreement(
                    kind,
                    engine,
                    "outcome %r on program with max gap %d < %d"
                    % (outcome.outcome, oracle.max_gap, oracle.slack),
                )
            )

    # -- attack specifications must replay under the interpreter ----------
    if (
        verdict is not None
        and verdict.status == "attack"
        and oracle.leaky
        and verdict.attack is not None
    ):
        if verdict.attack.is_pair:
            witness = find_witness(
                interpreter,
                cfg,
                gap=config.threshold,
                spec=verdict.attack,
                overrides={k: list(v) for k, v in domains.items()},
                limit=config.oracle_limit,
            )
            if witness is None:
                disagreements.append(
                    Disagreement(
                        "attack_spec_mismatch",
                        "blazer",
                        "no low-equal pair with gap >= %d follows the "
                        "specification's trails" % config.threshold,
                    )
                )

    # -- leaks CHECKATTACK failed to describe ------------------------------
    if oracle.leaky and verdict is not None and verdict.status == "unknown":
        disagreements.append(
            Disagreement(
                "missed_attack",
                "blazer",
                "oracle gap %d >= %d but no attack specification found"
                % (oracle.max_gap, oracle.slack),
            )
        )

    return ProgramReport(
        name=name,
        source=source,
        oracle=oracle,
        blazer_status=verdict.status if verdict is not None else SKIPPED,
        selfcomp_outcome=selfcomp.outcome if selfcomp is not None else SKIPPED,
        constant_time=consttime.constant_time if consttime is not None else None,
        pdsc_outcome=pdsc.outcome if pdsc is not None else SKIPPED,
        disagreements=disagreements,
        subject_seconds=seconds,
    )


def check_program(
    program: GeneratedProgram, config: DiffConfig = DiffConfig()
) -> ProgramReport:
    """Differentially check one generated program."""
    return check_source(
        program.source,
        program.domain_map,
        config,
        name=program.name,
    )
