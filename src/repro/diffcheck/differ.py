"""Five-way differential check: oracle vs Blazer vs self-composition
vs property-directed self-composition vs the leakage quantifier.

One program, six verdicts:

* the **ground-truth oracle** (exhaustive interpretation, exact TCF at
  the observer's slack) — always runs, it is what everyone is compared
  against;
* the **Blazer driver** — safe / attack / unknown, run with the
  interval-sound :class:`~repro.core.observer.DomainThresholdObserver`
  over the exact generated domains so its "safe" claims and the
  oracle's leak criterion answer the same question;
* the **self-composition baseline** — verified / unverified /
  exhausted, with ``epsilon = threshold - 1`` (``gap < T`` iff
  ``gap <= T-1``);
* the **property-directed checker** (:mod:`repro.pdsc`) — same
  three-valued vocabulary and the same ε, but with the CEGAR alignment
  loop in front of the fixpoint;
* the **constant-time checker** — now the two-part
  :func:`repro.leakage.consttime.check_constant_time`: public control
  flow *and* no variable-cost call fed a secret cost-relevant operand.
  Since every program is checked under the cost model its own extern
  declarations imply (:func:`repro.leakage.model.extern_env`), a
  constant-time verdict implies a concrete gap of exactly zero even on
  programs with cache-priced array reads and generated cost externs;
* the **leakage quantifier** (:mod:`repro.leakage`) — counts
  distinguishable timing observations from Blazer's partition tree; its
  cell count must dominate the oracle's *exact* per-low-class leakage
  (:func:`repro.diffcheck.oracle.exact_leakage`) whenever it claims a
  bound at all.

``DiffConfig.subjects`` selects which engines run (default: all five).
A skipped subject reports the literal outcome ``"skipped"`` and
contributes no disagreements, so a report over a fixed subject set is
byte-identical whatever the other subjects would have said.

Disagreement taxonomy (docs/DIFFCHECK.md):

========================  =====  ==========================================
kind                      fatal  meaning
========================  =====  ==========================================
``soundness_bug``         yes    an engine claimed safety the oracle refutes
``precision_gap``         no     engine's fixpoint converged but could not
                                 prove a truly safe program
``exhausted``             no     engine gave up (pair/refinement budget,
                                 deadline) on a truly safe program — a
                                 budget data point, not a precision one
``attack_spec_mismatch``  no     CHECKATTACK's trail pair does not replay
``missed_attack``         no     program leaks but CHECKATTACK found nothing
========================  =====  ==========================================

The ``break_engine`` hook exists purely so the test suite can prove the
harness has teeth: ``"narrow"`` wraps the observer to call *every*
bound narrow (a deliberately unsound CHECKSAFE), ``"pdsc-verify"``
forces the PDSC outcome to "verified", and ``"leakage-zero"`` forces
the leakage report to claim zero bits — each must surface as
``soundness_bug`` on any leaky program.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.blazer import Blazer, BlazerConfig
from repro.core.observer import (
    DomainThresholdObserver,
    ObserverModel,
    effective_slack,
)
from repro.core.selfcomp import SelfComposition
from repro.core.witness import find_witness
from repro.diffcheck.generator import PROC_NAME, GeneratedProgram
from repro.diffcheck.oracle import OracleVerdict, TimingOracle, exact_leakage
from repro.domains import DOMAINS
from repro.interp.interp import Interpreter
from repro.leakage.analysis import leakage_from_verdict
from repro.leakage.consttime import check_constant_time
from repro.leakage.model import extern_env
from repro.pdsc import PDSC
from repro.util.errors import AnalysisError

FATAL_KIND = "soundness_bug"
KINDS = (
    FATAL_KIND,
    "precision_gap",
    "exhausted",
    "attack_spec_mismatch",
    "missed_attack",
)

# The five subjects, in canonical order.  "skipped" is the outcome a
# deselected subject reports.
SUBJECTS = ("blazer", "selfcomp", "consttime", "pdsc", "leakage")
SKIPPED = "skipped"


def parse_subjects(spec: str) -> Tuple[str, ...]:
    """A ``--subjects`` comma list → canonical subject tuple.

    Order-insensitive and duplicate-tolerant on input; the result is
    always in :data:`SUBJECTS` order so equal selections fingerprint
    (and report) identically however they were spelled.
    """
    requested = {part.strip() for part in spec.split(",") if part.strip()}
    unknown = requested - set(SUBJECTS)
    if unknown:
        raise AnalysisError(
            "unknown subject(s) %s (available: %s)"
            % (", ".join(sorted(unknown)), ", ".join(SUBJECTS))
        )
    if not requested:
        raise AnalysisError("--subjects needs at least one subject")
    return tuple(s for s in SUBJECTS if s in requested)


@dataclass(frozen=True)
class DiffConfig:
    """Shared knobs of one differential check / campaign."""

    threshold: int = 24  # observer slack T: a gap >= T is a leak
    domain: str = "zone"
    max_pairs: int = 2500  # pair-space budget (selfcomp and pdsc alike)
    max_refinements: int = 3  # pdsc alignment-refinement budget
    oracle_limit: int = 8192
    fuel: int = 50_000  # far above any generated program's real cost
    subjects: Tuple[str, ...] = SUBJECTS
    # Test-only sabotage hooks ("narrow", "pdsc-verify", "leakage-zero"):
    # see module docstring.
    break_engine: Optional[str] = None

    def observer(self, domains: Mapping[str, Sequence[int]]) -> ObserverModel:
        observer: ObserverModel = DomainThresholdObserver(
            threshold=self.threshold,
            domains={name: tuple(values) for name, values in domains.items()},
        )
        if self.break_engine == "narrow":
            observer = _NarrowEverything(observer)
        return observer


class _NarrowEverything(ObserverModel):
    """Deliberately unsound wrapper: every bound is 'narrow'."""

    name = "broken-narrow"

    def __init__(self, inner: ObserverModel):
        self._inner = inner

    def is_narrow(self, bound) -> bool:
        return True

    def distinguishable(self, a, b) -> bool:
        return self._inner.distinguishable(a, b)


@dataclass(frozen=True)
class Disagreement:
    """One classified divergence between an engine and the oracle."""

    kind: str  # one of KINDS
    engine: str  # "blazer" | "selfcomp" | "consttime" | "pdsc"
    detail: str

    @property
    def fatal(self) -> bool:
        return self.kind == FATAL_KIND

    def to_dict(self) -> Dict[str, str]:
        return {"kind": self.kind, "engine": self.engine, "detail": self.detail}


@dataclass
class ProgramReport:
    """Everything the campaign records about one checked program.

    ``subject_seconds`` (wall clock per subject) is a volatile side
    channel for the bench harness: deliberately absent from
    :meth:`to_dict` so reports stay byte-identical across hosts/runs.
    """

    name: str
    source: str
    oracle: OracleVerdict
    blazer_status: str
    selfcomp_outcome: str
    constant_time: Optional[bool]  # None = subject skipped
    pdsc_outcome: str = SKIPPED
    leakage_status: str = SKIPPED  # exact | upper-bound | unknown | skipped
    leakage_cells: Optional[int] = None  # analysis bound (None = no claim)
    oracle_cells: Optional[int] = None  # exact_leakage ground truth
    disagreements: List[Disagreement] = field(default_factory=list)
    subject_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def fatal(self) -> bool:
        return any(d.fatal for d in self.disagreements)

    @property
    def clean(self) -> bool:
        return not self.disagreements

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "oracle": self.oracle.to_dict(),
            "blazer": self.blazer_status,
            "selfcomp": self.selfcomp_outcome,
            "constant_time": self.constant_time,
            "pdsc": self.pdsc_outcome,
            "leakage": self.leakage_status,
            "leakage_cells": self.leakage_cells,
            "oracle_cells": self.oracle_cells,
            "disagreements": [d.to_dict() for d in self.disagreements],
        }


def check_source(
    source: str,
    domains: Mapping[str, Sequence[int]],
    config: DiffConfig = DiffConfig(),
    name: str = "program",
    proc: str = PROC_NAME,
) -> ProgramReport:
    """Run the full differential check on one program."""
    subjects = config.subjects
    seconds: Dict[str, float] = {}
    # The program's own extern declarations fix the machine model: the
    # summaries the symbolic subjects charge and the implementations the
    # oracle executes come from the same CostModel, so the comparison is
    # apples-to-apples even on generated cost externs.
    model = extern_env(source)
    blazer = Blazer.from_source(
        source,
        BlazerConfig(
            domain=config.domain,
            observer=config.observer(domains),
            summaries=model.summaries,
        ),
    )
    cfg = blazer.cfgs[proc]
    slack = effective_slack(config.threshold)
    epsilon = slack - 1  # gap < T  iff  |gap| <= T-1

    verdict = None
    if "blazer" in subjects:
        started = time.perf_counter()
        verdict = blazer.analyze(proc)
        seconds["blazer"] = time.perf_counter() - started

    consttime = None
    if "consttime" in subjects:
        started = time.perf_counter()
        consttime = check_constant_time(blazer, proc, model)
        seconds["consttime"] = time.perf_counter() - started

    selfcomp = None
    if "selfcomp" in subjects:
        started = time.perf_counter()
        selfcomp = SelfComposition(
            cfg,
            DOMAINS[config.domain],
            epsilon=epsilon,
            max_pairs=config.max_pairs,
            summaries=model.summaries,
        ).verify()
        seconds["selfcomp"] = time.perf_counter() - started

    pdsc = None
    if "pdsc" in subjects:
        started = time.perf_counter()
        pdsc = PDSC(
            cfg,
            DOMAINS[config.domain],
            epsilon=epsilon,
            max_pairs=config.max_pairs,
            max_refinements=config.max_refinements,
            summaries=model.summaries,
        ).verify()
        seconds["pdsc"] = time.perf_counter() - started
        if config.break_engine == "pdsc-verify":
            # Sabotage hook: claim a proof whatever the loop found, so
            # the soundness check below demonstrably has teeth.
            pdsc = replace(pdsc, verified=True, outcome="verified")

    leakage = None
    if "leakage" in subjects:
        started = time.perf_counter()
        leak_verdict = verdict if verdict is not None else blazer.analyze(proc)
        leakage = leakage_from_verdict(
            leak_verdict, slack, domains=domains, cost_model=model.name
        )
        seconds["leakage"] = time.perf_counter() - started
        if config.break_engine == "leakage-zero":
            # Sabotage hook: claim a leak-free channel whatever the tree
            # says, so the exact-leakage cross-check has teeth too.
            leakage = replace(
                leakage,
                status="exact",
                classes=list(leakage.classes[:1]),
                cells=1,
                bits_capacity=0.0,
                bits_min_entropy=0.0,
                degraded_leaves=0,
                unbounded_leaves=0,
            )

    interpreter = Interpreter(blazer.cfgs, externs=model.externs, fuel=config.fuel)
    timing_oracle = TimingOracle(
        interpreter,
        cfg,
        domains,
        slack=config.threshold,
        limit=config.oracle_limit,
    )
    oracle = timing_oracle.run()

    disagreements: List[Disagreement] = []

    # -- soundness: a safety claim the concrete semantics refute ----------
    if verdict is not None and verdict.status == "safe" and oracle.leaky:
        disagreements.append(
            Disagreement(
                FATAL_KIND,
                "blazer",
                "CHECKSAFE verdict but oracle found low-equal gap %d >= %d"
                % (oracle.max_gap, oracle.slack),
            )
        )
    for engine, outcome in (("selfcomp", selfcomp), ("pdsc", pdsc)):
        if outcome is not None and outcome.verified and oracle.leaky:
            disagreements.append(
                Disagreement(
                    FATAL_KIND,
                    engine,
                    "pair analysis proved |gap| <= %d but oracle found gap %d"
                    % (epsilon, oracle.max_gap),
                )
            )
    if (
        consttime is not None
        and consttime.constant_time
        and oracle.max_gap > 0
    ):
        disagreements.append(
            Disagreement(
                FATAL_KIND,
                "consttime",
                "called constant-time but oracle gap is %d" % oracle.max_gap,
            )
        )
    # The leakage bound must dominate the exact per-low-class leakage
    # whenever it makes a claim at all ("unknown" claims nothing).
    oracle_cells, _ = exact_leakage(timing_oracle.trace_pool, slack)
    if (
        leakage is not None
        and leakage.cells is not None
        and leakage.cells < oracle_cells
    ):
        disagreements.append(
            Disagreement(
                FATAL_KIND,
                "leakage",
                "bound of %d timing class(es) but oracle distinguishes %d"
                % (leakage.cells, oracle_cells),
            )
        )

    # -- precision/budget: a truly safe program left unproven -------------
    if not oracle.leaky:
        if verdict is not None and verdict.status != "safe":
            disagreements.append(
                Disagreement(
                    "precision_gap",
                    "blazer",
                    "status %r on program with max gap %d < %d"
                    % (verdict.status, oracle.max_gap, oracle.slack),
                )
            )
        for engine, outcome in (("selfcomp", selfcomp), ("pdsc", pdsc)):
            if outcome is None or outcome.verified:
                continue
            # "the engine gave up" and "the engine's abstraction is too
            # coarse" are different findings: exhaustion is a budget
            # knob, a converged-but-unproven fixpoint is a precision
            # ceiling.
            kind = "exhausted" if outcome.exhausted else "precision_gap"
            disagreements.append(
                Disagreement(
                    kind,
                    engine,
                    "outcome %r on program with max gap %d < %d"
                    % (outcome.outcome, oracle.max_gap, oracle.slack),
                )
            )

    # -- attack specifications must replay under the interpreter ----------
    if (
        verdict is not None
        and verdict.status == "attack"
        and oracle.leaky
        and verdict.attack is not None
    ):
        if verdict.attack.is_pair:
            witness = find_witness(
                interpreter,
                cfg,
                gap=config.threshold,
                spec=verdict.attack,
                overrides={k: list(v) for k, v in domains.items()},
                limit=config.oracle_limit,
            )
            if witness is None:
                disagreements.append(
                    Disagreement(
                        "attack_spec_mismatch",
                        "blazer",
                        "no low-equal pair with gap >= %d follows the "
                        "specification's trails" % config.threshold,
                    )
                )

    # -- leaks CHECKATTACK failed to describe ------------------------------
    if oracle.leaky and verdict is not None and verdict.status == "unknown":
        disagreements.append(
            Disagreement(
                "missed_attack",
                "blazer",
                "oracle gap %d >= %d but no attack specification found"
                % (oracle.max_gap, oracle.slack),
            )
        )

    return ProgramReport(
        name=name,
        source=source,
        oracle=oracle,
        blazer_status=verdict.status if verdict is not None else SKIPPED,
        selfcomp_outcome=selfcomp.outcome if selfcomp is not None else SKIPPED,
        constant_time=consttime.constant_time if consttime is not None else None,
        pdsc_outcome=pdsc.outcome if pdsc is not None else SKIPPED,
        leakage_status=leakage.status if leakage is not None else SKIPPED,
        leakage_cells=leakage.cells if leakage is not None else None,
        oracle_cells=oracle_cells,
        disagreements=disagreements,
        subject_seconds=seconds,
    )


def check_program(
    program: GeneratedProgram, config: DiffConfig = DiffConfig()
) -> ProgramReport:
    """Differentially check one generated program."""
    return check_source(
        program.source,
        program.domain_map,
        config,
        name=program.name,
    )
