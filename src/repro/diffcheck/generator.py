"""Seeded, deterministic random-program generator.

Emits well-typed programs over the :mod:`repro.lang` AST, shaped so
that the concrete state space stays enumerable by the timing oracle:

* every parameter ranges over a tiny finite domain (a handful of small
  integers chosen by type), so the full input product is at most a few
  hundred tuples;
* every loop is *counted*: a fresh counter initialized to zero, a
  ``while (i < bound)`` guard, and the increment as the last statement
  of the body.  Bounds mention only literals and parameters (which are
  never assigned), counters are never assigned by generated body
  statements, and ``continue`` is never emitted — together these make
  termination structural, not probabilistic;
* the operator set is ``+ - *`` plus comparisons; no division, so no
  runtime faults.

Determinism contract: the program for ``(seed, index)`` depends only on
``(seed, index, config)`` — every choice flows through one
``random.Random`` seeded from them, and no set/dict iteration order is
consulted.  Campaigns across worker pools rely on this to replay any
program from its coordinates alone.  ``extern_prob`` guards every
extern-related draw (the rng is consulted for extern choices only after
externs were actually declared), so configs with ``extern_prob == 0``
— the default — generate byte-identical programs to builds without the
feature.

With ``extern_prob > 0`` a program may additionally declare priced
extern calls for the cache-aware machine model
(:mod:`repro.leakage.model`): scalar ``cost_<lo>_<hi>(a: int): int``
externs whose cost interval is spelled in their name, and the
``arrayRead`` extern over small local scratch arrays.  Both are woven
into ordinary integer expressions, giving the variable-cost half of the
constant-time checker (and the pair semantics' summary-priced calls)
differential coverage.

The secret parameters feed branch conditions and loop bodies exactly
like the paper's examples (Fig. 1's early-exit password loop), so a
healthy fraction of generated programs genuinely leak timing — those
exercise CHECKATTACK and the attack-spec replay, while the rest
exercise CHECKSAFE against the ground-truth oracle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.lang import ast
from repro.lang.pretty import format_program
from repro.leakage.model import ARRAY_READ as _ARRAY_READ

PROC_NAME = "main"

# Parameter roster: (name, level).  Mirrors the paper's ``l``/``h``
# naming; a program draws a prefix of each column.
_PUBLIC_NAMES = ("l", "k")
_SECRET_NAMES = ("h", "g")


@dataclass(frozen=True)
class GeneratorConfig:
    """Size knobs for generated programs.

    The defaults keep the interpreter's whole input product under ~1.3k
    tuples (4 params x <=6 values) and every loop under ~6 iterations,
    so one oracle pass costs about a millisecond.
    """

    max_stmts: int = 5  # statements per block before the final return
    max_depth: int = 2  # nesting depth of if/while
    max_loops: int = 2  # loops per program
    max_locals: int = 4
    loop_bound_const: int = 4  # literal loop bounds range over 1..this
    uint_max: int = 3  # uint params range over 0..uint_max
    int_min: int = -2  # int params range over int_min..int_max
    int_max: int = 3
    lit_max: int = 4  # integer literals range over 0..lit_max
    # Probability an integer expression becomes a priced extern call
    # (0.0 = no externs declared at all; see the determinism contract).
    extern_prob: float = 0.0
    max_cost_externs: int = 2  # scalar cost_<lo>_<hi> decls per program
    scratch_len: int = 8  # length of the arrayRead scratch arrays

    def domain(self, ty: ast.Type) -> Tuple[int, ...]:
        """The finite value domain the oracle enumerates for ``ty``."""
        if ty == ast.UINT:
            return tuple(range(0, self.uint_max + 1))
        return tuple(range(self.int_min, self.int_max + 1))


@dataclass(frozen=True)
class GeneratedProgram:
    """One generated program plus the metadata the oracle needs."""

    name: str
    seed: int
    index: int
    source: str
    domains: Tuple[Tuple[str, Tuple[int, ...]], ...]  # param order preserved

    @property
    def domain_map(self) -> Dict[str, Tuple[int, ...]]:
        return dict(self.domains)

    @property
    def state_space(self) -> int:
        size = 1
        for _, values in self.domains:
            size *= len(values)
        return size


@dataclass
class _Scope:
    """Mutable generation state threaded through one program.

    ``locals``/``counters`` hold the *currently visible* names (block
    scoping: :meth:`mark`/:meth:`restore` bracket nested blocks), while
    the ``next_*`` counters keep every generated name program-unique so
    the no-shadowing rule can never trip.
    """

    rng: random.Random
    config: GeneratorConfig
    params: List[ast.Param]
    locals: List[str] = field(default_factory=list)
    counters: List[str] = field(default_factory=list)  # readable, never assigned
    externs: List[str] = field(default_factory=list)  # scalar cost externs
    arrays: List[str] = field(default_factory=list)  # arrayRead scratch
    loops_made: int = 0
    next_local: int = 0
    next_counter: int = 0

    def readable(self) -> List[str]:
        return [p.name for p in self.params] + self.locals + self.counters

    def fresh_local(self) -> str:
        name = "x%d" % self.next_local
        self.next_local += 1
        self.locals.append(name)
        return name

    def fresh_counter(self) -> str:
        name = "i%d" % self.next_counter
        self.next_counter += 1
        self.counters.append(name)
        return name

    def mark(self) -> Tuple[int, int]:
        return len(self.locals), len(self.counters)

    def restore(self, mark: Tuple[int, int]) -> None:
        del self.locals[mark[0] :]
        del self.counters[mark[1] :]


def _int_expr(scope: _Scope, depth: int) -> ast.Expr:
    """A numeric expression over literals and in-scope names."""
    rng = scope.rng
    # Extern calls only when some were declared (so the rng draw below
    # never fires on extern-free configs) and only above depth 0 (so the
    # recursion is structurally bounded).
    if depth > 0 and (scope.externs or scope.arrays):
        if rng.random() < scope.config.extern_prob:
            forms = (["cost"] if scope.externs else []) + (
                ["array"] if scope.arrays else []
            )
            form = rng.choice(forms)
            if form == "cost":
                return ast.Call(rng.choice(scope.externs), [_int_expr(scope, depth - 1)])
            return ast.Call(
                _ARRAY_READ,
                [ast.Var(rng.choice(scope.arrays)), _int_expr(scope, depth - 1)],
            )
    names = scope.readable()
    if depth <= 0 or rng.random() < 0.35:
        if names and rng.random() < 0.6:
            return ast.Var(rng.choice(names))
        return ast.IntLit(rng.randrange(0, scope.config.lit_max + 1))
    op = rng.choice((ast.BinOp.ADD, ast.BinOp.SUB, ast.BinOp.MUL))
    return ast.Binary(op, _int_expr(scope, depth - 1), _int_expr(scope, depth - 1))


def _cond_expr(scope: _Scope) -> ast.Expr:
    """A boolean condition: a comparison, sometimes conjoined."""
    rng = scope.rng
    op = rng.choice(
        (ast.BinOp.LT, ast.BinOp.LE, ast.BinOp.GT, ast.BinOp.GE, ast.BinOp.EQ, ast.BinOp.NE)
    )
    cmp = ast.Binary(op, _int_expr(scope, 1), _int_expr(scope, 1))
    if rng.random() < 0.15:
        logic = rng.choice((ast.BinOp.AND, ast.BinOp.OR))
        return ast.Binary(logic, cmp, _cond_expr(scope))
    return cmp


def _loop_bound(scope: _Scope) -> ast.Expr:
    """A termination-safe loop bound: literal, parameter, or param+c.

    Parameters are never assigned, so the bound is loop-invariant; a
    negative ``int`` parameter simply yields a zero-iteration loop.
    """
    rng = scope.rng
    choice = rng.random()
    if choice < 0.4 or not scope.params:
        return ast.IntLit(rng.randrange(1, scope.config.loop_bound_const + 1))
    param = rng.choice([p.name for p in scope.params])
    if choice < 0.75:
        return ast.Var(param)
    return ast.Binary(ast.BinOp.ADD, ast.Var(param), ast.IntLit(rng.randrange(0, 3)))


def _counted_loop(scope: _Scope, depth: int) -> List[ast.Stmt]:
    """``var iN = 0; while (iN < bound) { body...; iN = iN + 1; }``"""
    scope.loops_made += 1
    bound = _loop_bound(scope)  # choose before the counter enters scope
    counter = scope.fresh_counter()  # declared alongside the loop: outlives it
    mark = scope.mark()
    body = _stmts(scope, depth - 1, in_loop=True)
    scope.restore(mark)
    body.append(
        ast.Assign(ast.Var(counter), ast.Binary(ast.BinOp.ADD, ast.Var(counter), ast.IntLit(1)))
    )
    return [
        ast.VarDecl(counter, ast.INT, ast.IntLit(0)),
        ast.While(ast.Binary(ast.BinOp.LT, ast.Var(counter), bound), ast.Block(body)),
    ]


def _stmt(scope: _Scope, depth: int, in_loop: bool) -> List[ast.Stmt]:
    rng = scope.rng
    cfg = scope.config
    kinds: List[str] = ["assign"]
    if len(scope.locals) < cfg.max_locals:
        kinds.append("decl")
        kinds.append("decl")  # bias toward growing state early
    if depth > 0:
        kinds.append("if")
        if scope.loops_made < cfg.max_loops:
            kinds.append("loop")
    if in_loop:
        kinds.append("guarded_break")
    kind = rng.choice(kinds)

    if kind == "decl" or (kind == "assign" and not scope.locals):
        init = _int_expr(scope, 2)  # drawn before the name enters scope
        return [ast.VarDecl(scope.fresh_local(), ast.INT, init)]
    if kind == "assign":
        target = rng.choice(scope.locals)
        return [ast.Assign(ast.Var(target), _int_expr(scope, 2))]
    if kind == "if":
        cond = _cond_expr(scope)
        mark = scope.mark()
        then = ast.Block(_stmts(scope, depth - 1, in_loop))
        scope.restore(mark)
        orelse = None
        if rng.random() < 0.5:
            orelse = ast.Block(_stmts(scope, depth - 1, in_loop))
            scope.restore(mark)
        return [ast.If(cond, then, orelse)]
    if kind == "loop":
        return _counted_loop(scope, depth)
    # guarded_break
    return [ast.If(_cond_expr(scope), ast.Block([ast.Break()]), None)]


def _stmts(scope: _Scope, depth: int, in_loop: bool = False) -> List[ast.Stmt]:
    count = scope.rng.randrange(1, scope.config.max_stmts + 1)
    out: List[ast.Stmt] = []
    for _ in range(count):
        out.extend(_stmt(scope, depth, in_loop))
    return out


def _draw_externs(
    rng: random.Random, config: GeneratorConfig, scope: _Scope
) -> Tuple[List[ast.ProcDecl], List[ast.Stmt]]:
    """Priced extern declarations + scratch-array prologue statements.

    Called only when ``extern_prob > 0`` — no rng draw happens here on
    the default config.  Scalar externs are self-describing
    (``cost_<lo>_<hi>``), so :func:`repro.leakage.model.extern_env`
    rebuilds the machine model from the formatted source alone.
    """
    decls: List[ast.ProcDecl] = []
    names: List[str] = []
    for _ in range(rng.randrange(1, config.max_cost_externs + 1)):
        lo = rng.randrange(1, 16)
        hi = lo + rng.randrange(0, 25)
        name = "cost_%d_%d" % (lo, hi)
        if name in names:
            continue  # same interval, same extern: one decl is enough
        names.append(name)
        decls.append(
            ast.ProcDecl(name, [ast.Param("a", ast.INT)], ast.INT, None)
        )
    prologue: List[ast.Stmt] = []
    if rng.random() < 0.5:
        decls.append(
            ast.ProcDecl(
                _ARRAY_READ,
                [ast.Param("t", ast.INT_ARRAY), ast.Param("i", ast.INT)],
                ast.INT,
                None,
            )
        )
        array = "t0"
        prologue.append(
            ast.VarDecl(
                array,
                ast.INT_ARRAY,
                ast.NewArray(ast.INT, ast.IntLit(config.scratch_len)),
            )
        )
        scope.arrays.append(array)
    scope.externs.extend(names)
    return decls, prologue


def _draw_params(rng: random.Random) -> List[ast.Param]:
    params: List[ast.Param] = []
    for pool, level in ((_PUBLIC_NAMES, ast.SecLevel.PUBLIC), (_SECRET_NAMES, ast.SecLevel.SECRET)):
        count = rng.choice((1, 1, 2))  # bias toward one of each
        for name in pool[:count]:
            ty = rng.choice((ast.INT, ast.UINT))
            params.append(ast.Param(name, ty, level))
    return params


def generate_program(
    seed: int, index: int, config: GeneratorConfig = GeneratorConfig()
) -> GeneratedProgram:
    """Deterministically generate program ``index`` of campaign ``seed``."""
    rng = random.Random(seed * 1_000_003 + index)
    params = _draw_params(rng)
    scope = _Scope(rng=rng, config=config, params=params)
    extern_decls: List[ast.ProcDecl] = []
    prologue: List[ast.Stmt] = []
    if config.extern_prob > 0:
        extern_decls, prologue = _draw_externs(rng, config, scope)
    body = prologue + _stmts(scope, config.max_depth)
    body.append(ast.Return(_int_expr(scope, 2)))
    proc = ast.ProcDecl(PROC_NAME, params, ast.INT, ast.Block(body))
    source = format_program(ast.Program(extern_decls + [proc]))
    domains = tuple((p.name, config.domain(p.declared)) for p in params)
    return GeneratedProgram(
        name="p%06d" % index,
        seed=seed,
        index=index,
        source=source,
        domains=domains,
    )
