"""Concrete interpreter: runtime values, timed traces, extern models."""

from repro.interp.externs import ExternRegistry, default_registry
from repro.interp.interp import Interpreter, RTArray
from repro.interp.trace import Trace

__all__ = ["Interpreter", "RTArray", "Trace", "ExternRegistry", "default_registry"]
