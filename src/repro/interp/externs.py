"""Concrete models of extern (library) procedures.

Blazer handled library calls (``md5``, the Java ``BigInteger`` methods)
with manually-specified summaries.  We mirror that split:

* the *concrete* behaviour and cost used by the interpreter live here;
* the *symbolic* cost summaries used by the bound analysis live in
  :mod:`repro.bounds.summaries`.

Concrete costs are deterministic functions of the argument values so the
concrete timing model is reproducible.  Each model returns
``(result, cost)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.util.errors import InterpError

ExternImpl = Callable[[Sequence[object]], Tuple[object, int]]


@dataclass
class ExternModel:
    """Concrete model: python implementation returning (result, cost)."""

    name: str
    impl: ExternImpl


class ExternRegistry:
    """Named collection of extern models; the interpreter resolves here."""

    def __init__(self) -> None:
        self._models: Dict[str, ExternModel] = {}

    def register(self, name: str, impl: ExternImpl) -> None:
        self._models[name] = ExternModel(name, impl)

    def resolve(self, name: str) -> ExternModel:
        model = self._models.get(name)
        if model is None:
            raise InterpError("no concrete model registered for extern %r" % name)
        return model

    def has(self, name: str) -> bool:
        return name in self._models

    def copy(self) -> "ExternRegistry":
        clone = ExternRegistry()
        clone._models = dict(self._models)
        return clone


# ---------------------------------------------------------------------------
# Default models for the externs used by the benchmark suite
# ---------------------------------------------------------------------------


def _as_bytes(value: object, who: str) -> List[int]:
    if not isinstance(value, list):
        raise InterpError("%s expects a byte array" % who)
    return value


def _md5(args: Sequence[object]) -> Tuple[object, int]:
    """A toy message digest with a fixed cost per call.

    The real md5 runs in time linear in the input, but with 64-byte block
    granularity; for the benchmark input sizes a constant models it, which
    is also what Blazer's manual summary assumed for the login benchmark
    (hashing dominates, but identically for all inputs of a given length).
    """
    data = _as_bytes(args[0], "md5")
    digest = [0] * 16
    for i, b in enumerate(data):
        digest[i % 16] = (digest[i % 16] * 31 + b + i) % 256
    return digest, 500


# The machine model charges library arithmetic a *fixed* cost per call,
# evaluated at an assumed maximum operand size — mirroring the paper's
# observer modeling ("we assume some reasonable maximum for the input
# variables, e.g., 4096 bits").  The symbolic summaries in
# :mod:`repro.bounds.summaries` use the same formulas, so concrete runs
# and static bounds agree exactly on extern costs.
DEFAULT_MAX_BITS = 4096


def words_for_bits(bits: int) -> int:
    return max(1, (bits + 31) // 32)


def big_multiply_cost(max_bits: int = DEFAULT_MAX_BITS) -> int:
    # Schoolbook multiplication on 32-bit words.
    words = words_for_bits(max_bits)
    return 10 + words * words


def big_mod_cost(max_bits: int = DEFAULT_MAX_BITS) -> int:
    return 10 + 2 * words_for_bits(max_bits)


def _big_multiply(args: Sequence[object]) -> Tuple[object, int]:
    a, b = int(args[0]), int(args[1])  # type: ignore[arg-type]
    return a * b, big_multiply_cost()


def _big_mod(args: Sequence[object]) -> Tuple[object, int]:
    a, m = int(args[0]), int(args[1])  # type: ignore[arg-type]
    if m == 0:
        raise InterpError("bigMod by zero")
    return a % m, big_mod_cost()


def _big_test_bit(args: Sequence[object]) -> Tuple[object, int]:
    value, index = int(args[0]), int(args[1])  # type: ignore[arg-type]
    if index < 0:
        raise InterpError("testBit with negative index")
    return (value >> index) & 1, 5


def _big_bit_length(args: Sequence[object]) -> Tuple[object, int]:
    return max(1, int(args[0]).bit_length()), 5  # type: ignore[arg-type]


def default_registry() -> ExternRegistry:
    """Registry with models for every extern in the benchmark suite."""
    registry = ExternRegistry()
    registry.register("md5", _md5)
    registry.register("bigMultiply", _big_multiply)
    registry.register("bigMod", _big_mod)
    registry.register("bigTestBit", _big_test_bit)
    registry.register("bigBitLength", _big_bit_length)
    return registry
