"""Concrete interpreter over the register IR.

Executes a procedure's CFG with concrete values, recording the word of
CFG edges traversed (the trace's trail word) and the accumulated cost in
bytecode-instruction units (every IR instruction charges its ``weight``;
extern calls charge their model's cost).  The resulting
:class:`~repro.interp.trace.Trace` objects are exactly the π of the
paper's formal development, which lets the test suite *empirically* check
quotient partitions, trail membership and timing-channel verdicts.

Runtime value model:

* numbers are Python ints (arbitrary precision, so the BigInteger
  benchmarks use plain ``int`` parameters);
* arrays are :class:`RTArray` (a list plus element kind; byte arrays
  store values mod 256);
* ``null`` is ``None``.

Division and modulus follow Java (truncate toward zero).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.cfg.graph import ControlFlowGraph, Edge
from repro.interp.externs import ExternRegistry, default_registry
from repro.interp.trace import Trace
from repro.ir import instr as ir
from repro.lang import ast
from repro.util.errors import FuelExhausted, InterpError

Value = Union[int, "RTArray", None]


class RTArray:
    """A runtime array: element storage plus element kind."""

    __slots__ = ("values", "elem")

    def __init__(self, values: List[int], elem: ast.BaseType):
        self.elem = elem
        if elem is ast.BaseType.BYTE:
            values = [v % 256 for v in values]
        self.values = values

    def __len__(self) -> int:
        return len(self.values)

    def get(self, index: int) -> int:
        if not 0 <= index < len(self.values):
            raise InterpError(
                "array index %d out of bounds [0, %d)" % (index, len(self.values))
            )
        return self.values[index]

    def set(self, index: int, value: int) -> None:
        if not 0 <= index < len(self.values):
            raise InterpError(
                "array index %d out of bounds [0, %d)" % (index, len(self.values))
            )
        if self.elem is ast.BaseType.BYTE:
            value %= 256
        self.values[index] = value

    def snapshot(self) -> Tuple[int, ...]:
        return tuple(self.values)

    def __repr__(self) -> str:
        return "RTArray(%r, %s)" % (self.values, self.elem.value)


def _java_div(a: int, b: int) -> int:
    if b == 0:
        raise InterpError("division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _java_mod(a: int, b: int) -> int:
    if b == 0:
        raise InterpError("modulus by zero")
    return a - _java_div(a, b) * b


_ARITH = {
    ir.ArithOp.ADD: lambda a, b: a + b,
    ir.ArithOp.SUB: lambda a, b: a - b,
    ir.ArithOp.MUL: lambda a, b: a * b,
    ir.ArithOp.DIV: _java_div,
    ir.ArithOp.MOD: _java_mod,
}

_CMP = {
    ir.CmpOp.LT: lambda a, b: a < b,
    ir.CmpOp.LE: lambda a, b: a <= b,
    ir.CmpOp.GT: lambda a, b: a > b,
    ir.CmpOp.GE: lambda a, b: a >= b,
}


@dataclass
class RunResult:
    """Result of one interpreter run (before packaging into a Trace)."""

    value: Value
    cost: int
    edges: Tuple[Edge, ...]


class Interpreter:
    """Executes procedures given their lifted CFGs.

    ``fuel`` bounds the number of basic blocks executed across the whole
    call tree, guarding against nontermination.
    """

    def __init__(
        self,
        cfgs: Dict[str, ControlFlowGraph],
        externs: Optional[ExternRegistry] = None,
        fuel: int = 1_000_000,
    ):
        self._cfgs = cfgs
        self._externs = externs if externs is not None else default_registry()
        self._fuel = fuel

    # -- public API ---------------------------------------------------------------

    def run(self, proc: str, args: Union[Sequence[object], Dict[str, object]]) -> Trace:
        """Run ``proc`` on ``args`` and package the result as a Trace."""
        cfg = self._cfg(proc)
        arg_map = self._bind_args(cfg, args)
        budget = [self._fuel]
        result = self._execute(cfg, dict(arg_map), budget, record_edges=True)
        levels = {p.name: p.level for p in cfg.params}
        inputs = {
            name: value.snapshot() if isinstance(value, RTArray) else value
            for name, value in arg_map.items()
        }
        packaged = (
            result.value.snapshot() if isinstance(result.value, RTArray) else result.value
        )
        return Trace.make(proc, inputs, levels, result.edges, result.cost, packaged)

    def time_of(self, proc: str, args: Union[Sequence[object], Dict[str, object]]) -> int:
        """Just the running time (paper's time(π))."""
        return self.run(proc, args).time

    # -- internals ------------------------------------------------------------------

    def _cfg(self, proc: str) -> ControlFlowGraph:
        cfg = self._cfgs.get(proc)
        if cfg is None:
            raise InterpError("no CFG for procedure %r" % proc)
        return cfg

    def _bind_args(
        self, cfg: ControlFlowGraph, args: Union[Sequence[object], Dict[str, object]]
    ) -> Dict[str, Value]:
        if isinstance(args, dict):
            missing = [p.name for p in cfg.params if p.name not in args]
            if missing:
                raise InterpError("missing arguments: %s" % ", ".join(missing))
            items = [(p, args[p.name]) for p in cfg.params]
        else:
            if len(args) != len(cfg.params):
                raise InterpError(
                    "%s expects %d arguments, got %d"
                    % (cfg.name, len(cfg.params), len(args))
                )
            items = list(zip(cfg.params, args))
        bound: Dict[str, Value] = {}
        for param, raw in items:
            bound[param.name] = self._coerce(raw, param.declared, param.name)
        return bound

    def _coerce(self, raw: object, declared: ast.Type, who: str) -> Value:
        if declared.is_array:
            if raw is None:
                return None
            if isinstance(raw, RTArray):
                return raw
            if isinstance(raw, (list, tuple)):
                return RTArray([int(v) for v in raw], declared.base)
            if isinstance(raw, (str, bytes)):
                seq = [ord(c) for c in raw] if isinstance(raw, str) else list(raw)
                return RTArray(seq, declared.base)
            raise InterpError("argument %r: expected an array, got %r" % (who, raw))
        if isinstance(raw, bool):
            return 1 if raw else 0
        if isinstance(raw, int):
            if declared.base is ast.BaseType.UINT and raw < 0:
                raise InterpError("argument %r: uint cannot be negative" % who)
            return raw
        raise InterpError("argument %r: expected an int, got %r" % (who, raw))

    def _execute(
        self,
        cfg: ControlFlowGraph,
        regs: Dict[str, Value],
        budget: List[int],
        record_edges: bool,
    ) -> RunResult:
        cost = 0
        edges: List[Edge] = []
        current = cfg.entry
        while True:
            if budget[0] <= 0:
                raise FuelExhausted(
                    "fuel exhausted in %s (possible nontermination)" % cfg.name
                )
            budget[0] -= 1
            block = cfg.blocks[current]
            for instr in block.instrs:
                cost += instr.weight
                cost += self._step(cfg, instr, regs, budget)
            term = block.term
            if term is None:
                raise InterpError("%s: fell into the exit block" % cfg.name)
            cost += term.weight
            if isinstance(term, ir.Return):
                value = self._operand(term.value, regs) if term.value is not None else None
                if record_edges:
                    edges.append((current, cfg.exit_id))
                return RunResult(value, cost, tuple(edges))
            if isinstance(term, ir.Jump):
                nxt = term.target
            elif isinstance(term, ir.Branch):
                cond = self._operand(term.cond, regs)
                if not isinstance(cond, int):
                    raise InterpError("%s: branching on non-int %r" % (cfg.name, cond))
                nxt = term.on_true if cond != 0 else term.on_false
            else:  # pragma: no cover
                raise InterpError("unknown terminator %r" % type(term).__name__)
            if record_edges:
                edges.append((current, nxt))
            current = nxt

    def _operand(self, operand: ir.Operand, regs: Dict[str, Value]) -> Value:
        if isinstance(operand, ir.Reg):
            if operand.name not in regs:
                raise InterpError("read of undefined register %r" % operand.name)
            return regs[operand.name]
        if isinstance(operand, ir.ConstInt):
            return operand.value
        if isinstance(operand, ir.ConstNull):
            return None
        if isinstance(operand, ir.ConstArr):
            return RTArray(list(operand.values), ast.BaseType.BYTE)
        raise InterpError("unknown operand %r" % (operand,))

    def _int(self, value: Value, what: str) -> int:
        if not isinstance(value, int):
            raise InterpError("%s: expected int, got %r" % (what, value))
        return value

    def _array(self, value: Value, what: str) -> RTArray:
        if value is None:
            raise InterpError("%s: null array dereference" % what)
        if not isinstance(value, RTArray):
            raise InterpError("%s: expected array, got %r" % (what, value))
        return value

    def _step(
        self,
        cfg: ControlFlowGraph,
        instr: ir.Instr,
        regs: Dict[str, Value],
        budget: List[int],
    ) -> int:
        """Execute one instruction; returns any *extra* cost (call bodies)."""
        if isinstance(instr, ir.Assign):
            regs[instr.dst.name] = self._operand(instr.src, regs)
            return 0
        if isinstance(instr, ir.BinInstr):
            a = self._int(self._operand(instr.a, regs), "arith lhs")
            b = self._int(self._operand(instr.b, regs), "arith rhs")
            regs[instr.dst.name] = _ARITH[instr.op](a, b)
            return 0
        if isinstance(instr, ir.CmpInstr):
            a = self._operand(instr.a, regs)
            b = self._operand(instr.b, regs)
            if instr.op in _CMP:
                result = _CMP[instr.op](
                    self._int(a, "cmp lhs"), self._int(b, "cmp rhs")
                )
            else:
                equal = self._ref_equal(a, b)
                result = equal if instr.op is ir.CmpOp.EQ else not equal
            regs[instr.dst.name] = 1 if result else 0
            return 0
        if isinstance(instr, ir.UnInstr):
            a = self._int(self._operand(instr.a, regs), "unary operand")
            regs[instr.dst.name] = -a if instr.op == "neg" else (0 if a != 0 else 1)
            return 0
        if isinstance(instr, ir.ALoad):
            arr = self._array(self._operand(instr.arr, regs), "aload")
            idx = self._int(self._operand(instr.idx, regs), "aload index")
            regs[instr.dst.name] = arr.get(idx)
            return 0
        if isinstance(instr, ir.AStore):
            arr = self._array(self._operand(instr.arr, regs), "astore")
            idx = self._int(self._operand(instr.idx, regs), "astore index")
            val = self._int(self._operand(instr.val, regs), "astore value")
            arr.set(idx, val)
            return 0
        if isinstance(instr, ir.NewArr):
            size = self._int(self._operand(instr.size, regs), "array size")
            if size < 0:
                raise InterpError("negative array size %d" % size)
            regs[instr.dst.name] = RTArray([0] * size, instr.elem)
            return 0
        if isinstance(instr, ir.ArrLen):
            arr = self._array(self._operand(instr.arr, regs), "len")
            regs[instr.dst.name] = len(arr)
            return 0
        if isinstance(instr, ir.CallInstr):
            return self._call(cfg, instr, regs, budget)
        raise InterpError("unknown instruction %r" % type(instr).__name__)

    def _ref_equal(self, a: Value, b: Value) -> bool:
        if a is None or b is None:
            return a is None and b is None
        if isinstance(a, RTArray) and isinstance(b, RTArray):
            return a is b
        if isinstance(a, int) and isinstance(b, int):
            return a == b
        raise InterpError("equality between %r and %r" % (a, b))

    def _call(
        self,
        cfg: ControlFlowGraph,
        instr: ir.CallInstr,
        regs: Dict[str, Value],
        budget: List[int],
    ) -> int:
        args = [self._operand(a, regs) for a in instr.args]
        if instr.callee in self._cfgs:
            callee = self._cfgs[instr.callee]
            if len(args) != len(callee.params):
                raise InterpError("arity mismatch calling %r" % instr.callee)
            frame = {
                p.name: self._coerce(
                    a.values if isinstance(a, RTArray) else a, p.declared, p.name
                )
                if not isinstance(a, RTArray)
                else a  # pass arrays by reference (Java semantics)
                for p, a in zip(callee.params, args)
            }
            result = self._execute(callee, frame, budget, record_edges=False)
            if instr.dst is not None:
                regs[instr.dst.name] = result.value
            return result.cost
        model = self._externs.resolve(instr.callee)
        plain_args = [a.values if isinstance(a, RTArray) else a for a in args]
        value, extern_cost = model.impl(plain_args)
        if instr.dst is not None:
            if isinstance(value, list):
                value = RTArray(value, ast.BaseType.BYTE)
            elif isinstance(value, bool):
                value = 1 if value else 0
            regs[instr.dst.name] = value
        return extern_cost
