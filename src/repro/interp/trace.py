"""Execution traces: the π objects of the paper's formalization.

A trace records the inputs that produced it, the word of CFG edges it
traversed, its running time (bytecode instruction count under the
paper's one-unit-per-instruction machine model) and its result.  The
k-safety machinery in :mod:`repro.core.ksafety` and the property tests
consume these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.cfg.graph import Edge
from repro.lang import ast


def _freeze(value: object) -> object:
    """Deep-freeze a runtime value so inputs are hashable."""
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    return value


@dataclass(frozen=True)
class Trace:
    """One terminating execution of a procedure."""

    proc: str
    inputs: Tuple[Tuple[str, object], ...]
    levels: Tuple[Tuple[str, ast.SecLevel], ...]
    edges: Tuple[Edge, ...]
    time: int
    result: object = None

    @staticmethod
    def make(
        proc: str,
        inputs: Dict[str, object],
        levels: Dict[str, ast.SecLevel],
        edges: Tuple[Edge, ...],
        time: int,
        result: object = None,
    ) -> "Trace":
        return Trace(
            proc=proc,
            inputs=tuple(sorted((k, _freeze(v)) for k, v in inputs.items())),
            levels=tuple(sorted(levels.items())),
            edges=edges,
            time=time,
            result=_freeze(result),
        )

    # -- the in(π)[·] selectors of the paper ----------------------------------

    def input(self, name: str) -> object:
        for key, value in self.inputs:
            if key == name:
                return value
        raise KeyError(name)

    def _by_level(self, level: ast.SecLevel) -> Tuple[Tuple[str, object], ...]:
        levels = dict(self.levels)
        return tuple(
            (k, v) for k, v in self.inputs if levels.get(k, ast.SecLevel.PUBLIC) is level
        )

    @property
    def low_inputs(self) -> Tuple[Tuple[str, object], ...]:
        """``in(π)[low]`` — the public projection of the inputs."""
        return self._by_level(ast.SecLevel.PUBLIC)

    @property
    def high_inputs(self) -> Tuple[Tuple[str, object], ...]:
        """``in(π)[high]`` — the secret projection of the inputs."""
        return self._by_level(ast.SecLevel.SECRET)

    def low_equivalent(self, other: "Trace") -> bool:
        """The quotient predicate ψ_tcf: equal public inputs."""
        return self.low_inputs == other.low_inputs

    def __str__(self) -> str:
        return "Trace(%s, time=%d, low=%s, high=%s)" % (
            self.proc,
            self.time,
            dict(self.low_inputs),
            dict(self.high_inputs),
        )
