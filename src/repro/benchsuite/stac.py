"""The 6 STAC benchmarks (Table 1, second block).

Fragments modeled on the DARPA Space/Time Analysis for Cybersecurity
challenge problems the paper extracted: two modular-exponentiation
drivers over a BigInteger-style library (``modPow1`` after Fig. 3,
``modPow2`` a larger windowed variant) and a password-equality check.
Library arithmetic is constant-cost at the assumed operand size (4096
bits), matching the paper's observer modeling; the observer is the
25k-instruction concrete threshold.
"""

from __future__ import annotations

from repro.benchsuite.registry import (
    BIGINT_EXTERNS,
    STAC,
    Benchmark,
    crypto_witness_space,
    realworld_observer,
)
from repro.core.observer import ConcreteThresholdObserver


def _pwd_observer() -> ConcreteThresholdObserver:
    """Threshold observer assuming passwords of at most 2048 bytes."""
    return ConcreteThresholdObserver(
        threshold=25_000,
        default_max=4096,
        max_values={"guess#len": 2048, "pw#len": 2048},
    )

# -- modPow1: square-and-multiply (Fig. 3 of the paper) ----------------------

MODPOW1_SAFE = (
    BIGINT_EXTERNS
    + """
proc modPow1_safe(public base: int, secret exponent: int, public modulus: int): int {
    var s: int = 1;
    var width: int = bigBitLength(exponent);
    for (var i: int = 0; i < width; i = i + 1) {
        s = bigMod(bigMultiply(s, s), modulus);
        if (bigTestBit(exponent, width - i - 1) == 1) {
            s = bigMod(bigMultiply(s, base), modulus);
        } else {
            // The "remove for unsafe" line of Fig. 3: a discarded
            // multiply that balances the running time.
            var dummy: int = bigMod(bigMultiply(s, base), modulus);
        }
    }
    return s;
}
"""
)

MODPOW1_UNSAFE = (
    BIGINT_EXTERNS
    + """
proc modPow1_unsafe(public base: int, secret exponent: int, public modulus: int): int {
    var s: int = 1;
    var width: int = bigBitLength(exponent);
    for (var i: int = 0; i < width; i = i + 1) {
        s = bigMod(bigMultiply(s, s), modulus);
        if (bigTestBit(exponent, width - i - 1) == 1) {
            s = bigMod(bigMultiply(s, base), modulus);
        }
    }
    return s;
}
"""
)

# -- modPow2: a larger, 2-bit-windowed exponentiation -------------------------

MODPOW2_SAFE = (
    BIGINT_EXTERNS
    + """
proc modPow2_safe(public base: int, secret exponent: int, public modulus: int): int {
    var s: int = 1;
    var base2: int = bigMod(bigMultiply(base, base), modulus);
    var base3: int = bigMod(bigMultiply(base2, base), modulus);
    var width: int = bigBitLength(exponent);
    var i: int = 0;
    while (i < width) {
        s = bigMod(bigMultiply(s, s), modulus);
        s = bigMod(bigMultiply(s, s), modulus);
        var hi: int = bigTestBit(exponent, width - i - 1);
        var lo2: int = 0;
        if (i + 1 < width) {
            lo2 = bigTestBit(exponent, width - i - 2);
        } else {
            lo2 = bigTestBit(exponent, 0);
        }
        if (hi == 1) {
            if (lo2 == 1) {
                s = bigMod(bigMultiply(s, base3), modulus);
            } else {
                s = bigMod(bigMultiply(s, base2), modulus);
            }
        } else {
            if (lo2 == 1) {
                s = bigMod(bigMultiply(s, base), modulus);
            } else {
                // Window 00: multiply by 1, discarded — keeps every
                // window the same cost.
                var dummy: int = bigMod(bigMultiply(s, base), modulus);
            }
        }
        i = i + 2;
    }
    return s;
}
"""
)

MODPOW2_UNSAFE = (
    BIGINT_EXTERNS
    + """
proc modPow2_unsafe(public base: int, secret exponent: int, public modulus: int): int {
    var s: int = 1;
    var base2: int = bigMod(bigMultiply(base, base), modulus);
    var base3: int = bigMod(bigMultiply(base2, base), modulus);
    var width: int = bigBitLength(exponent);
    var i: int = 0;
    while (i < width) {
        s = bigMod(bigMultiply(s, s), modulus);
        s = bigMod(bigMultiply(s, s), modulus);
        var hi: int = bigTestBit(exponent, width - i - 1);
        var lo2: int = 0;
        if (i + 1 < width) {
            lo2 = bigTestBit(exponent, width - i - 2);
        } else {
            lo2 = bigTestBit(exponent, 0);
        }
        if (hi == 1) {
            if (lo2 == 1) {
                s = bigMod(bigMultiply(s, base3), modulus);
            } else {
                s = bigMod(bigMultiply(s, base2), modulus);
            }
        } else {
            if (lo2 == 1) {
                s = bigMod(bigMultiply(s, base), modulus);
            }
            // Window 00: skip the multiply entirely — each zero window
            // saves a full multiplication, leaking the window pattern.
        }
        i = i + 2;
    }
    return s;
}
"""
)

# -- pwdEqual: password equality --------------------------------------------

PWDEQUAL_SAFE = """
proc pwdEqual_safe(public guess: byte[], secret pw: byte[]): bool {
    var matches: bool = true;
    var dummy: bool = false;
    if (len(guess) != len(pw)) {
        matches = false;
    } else {
        dummy = true;
    }
    for (var i: int = 0; i < len(guess); i = i + 1) {
        if (i < len(pw)) {
            if (guess[i] != pw[i]) {
                matches = false;
            } else {
                dummy = true;
            }
        } else {
            dummy = true;
            matches = false;
        }
    }
    return matches;
}
"""

PWDEQUAL_UNSAFE = """
proc pwdEqual_unsafe(public guess: byte[], secret pw: byte[]): bool {
    if (len(guess) != len(pw)) {
        return false;
    }
    for (var i: int = 0; i < len(guess); i = i + 1) {
        if (guess[i] != pw[i]) {
            return false;
        }
    }
    return true;
}
"""


STAC_BENCHMARKS = [
    Benchmark(
        name="modPow1_safe",
        group=STAC,
        source=MODPOW1_SAFE,
        proc="modPow1_safe",
        expect="safe",
        observer_factory=realworld_observer,
        witness_space=crypto_witness_space(),
        notes="square-and-multiply with a balancing dummy multiply",
    ),
    Benchmark(
        name="modPow1_unsafe",
        group=STAC,
        source=MODPOW1_UNSAFE,
        proc="modPow1_unsafe",
        expect="attack",
        observer_factory=realworld_observer,
        witness_space=crypto_witness_space(),
        witness_gap=25_000,
        notes="zero exponent bits skip a multiplication",
    ),
    Benchmark(
        name="modPow2_safe",
        group=STAC,
        source=MODPOW2_SAFE,
        proc="modPow2_safe",
        expect="safe",
        observer_factory=realworld_observer,
        witness_space=crypto_witness_space(),
        notes="2-bit windows, every window costs the same",
    ),
    Benchmark(
        name="modPow2_unsafe",
        group=STAC,
        source=MODPOW2_UNSAFE,
        proc="modPow2_unsafe",
        expect="attack",
        observer_factory=realworld_observer,
        witness_space=crypto_witness_space(),
        witness_gap=25_000,
        notes="zero windows skip the multiply (larger trail space)",
    ),
    Benchmark(
        name="pwdEqual_safe",
        group=STAC,
        source=PWDEQUAL_SAFE,
        proc="pwdEqual_safe",
        expect="safe",
        observer_factory=_pwd_observer,
        witness_space={
            "guess": [[0, 0], [1, 2]],
            "pw": [[0, 0], [1, 2], [1, 2, 3]],
        },
        notes="constant-time comparison with balanced arms",
    ),
    Benchmark(
        name="pwdEqual_unsafe",
        group=STAC,
        source=PWDEQUAL_UNSAFE,
        proc="pwdEqual_unsafe",
        expect="attack",
        observer_factory=_pwd_observer,
        witness_space={
            "guess": [[1] * 64],
            "pw": [[1] * 64, [2] + [1] * 63, [0]],
        },
        witness_gap=40,
        notes="early exit on the first mismatching byte (Tenex-style)",
    ),
]
