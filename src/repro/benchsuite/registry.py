"""The benchmark registry: metadata for the 24 evaluation programs.

Each benchmark mirrors one row of Table 1: its source (in the repro
input language), the analyzed procedure, the expected verdict, the
observer model the paper pairs with its family (polynomial-degree for
MicroBench, 25k-instruction threshold at assumed-maximum inputs for
STAC/Literature), and an input space for the empirical witness search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.blazer import Blazer, BlazerConfig, BlazerVerdict
from repro.core.observer import (
    ConcreteThresholdObserver,
    ObserverModel,
    PolynomialDegreeObserver,
)
from repro.bounds.summaries import SummaryRegistry, default_summaries

MICRO = "MicroBench"
STAC = "STAC"
LITERATURE = "Literature"


def micro_observer() -> ObserverModel:
    return PolynomialDegreeObserver(epsilon=32)


def realworld_observer() -> ObserverModel:
    return ConcreteThresholdObserver(threshold=25_000, default_max=4096)


@dataclass
class Benchmark:
    """One Table-1 row."""

    name: str
    group: str
    source: str
    proc: str
    expect: str  # "safe" | "attack"
    observer_factory: Callable[[], ObserverModel]
    # Candidate values per parameter for the empirical witness search /
    # soundness checks (None = use the generic default space).
    witness_space: Optional[Dict[str, Sequence[object]]] = None
    # Minimum concrete timing gap a witness must exhibit for "attack"
    # benchmarks (defaults to just over the micro epsilon).
    witness_gap: int = 33
    notes: str = ""

    @property
    def is_safe(self) -> bool:
        return self.expect == "safe"

    def config(self) -> BlazerConfig:
        return BlazerConfig(
            observer=self.observer_factory(), summaries=default_summaries()
        )

    def analyzer(self, budget=None) -> Blazer:
        config = self.config()
        if budget is not None:
            config.budget = budget
        return Blazer.from_source(self.source, config)

    def run(self, budget=None) -> BlazerVerdict:
        return self.analyzer(budget=budget).analyze(self.proc)


class BenchmarkSuite:
    def __init__(self, benchmarks: Sequence[Benchmark]):
        self._by_name = {}
        for bench in benchmarks:
            if bench.name in self._by_name:
                raise ValueError("duplicate benchmark %r" % bench.name)
            self._by_name[bench.name] = bench

    def get(self, name: str) -> Benchmark:
        return self._by_name[name]

    def names(self) -> List[str]:
        return list(self._by_name)

    def all(self) -> List[Benchmark]:
        return list(self._by_name.values())

    def by_group(self, group: str) -> List[Benchmark]:
        return [b for b in self._by_name.values() if b.group == group]

    def __iter__(self):
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)


BIGINT_EXTERNS = """
extern bigMultiply(a: int, b: int): int;
extern bigMod(a: int, m: int): int;
extern bigTestBit(v: int, i: int): int;
extern bigBitLength(v: int): int;
"""

MD5_EXTERN = """
extern md5(p: byte[]): byte[];
"""


def crypto_witness_space(max_bits: int = 4096) -> Dict[str, Sequence[object]]:
    """Fixed-width operands so concrete runs match the static model
    (the summaries assume exponents of exactly ``max_bits`` bits)."""
    top = 1 << (max_bits - 1)
    return {
        "base": [3, 7],
        "exponent": [top, top | 1, top | (top >> 1), (1 << max_bits) - 1],
        "modulus": [(1 << 61) - 1],
    }
