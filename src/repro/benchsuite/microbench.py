"""The 12 hand-crafted MicroBench programs (Table 1, first block).

These are our reconstructions of Blazer's micro-benchmarks: each
exercises one aspect of the analysis, as described in Section 6.1, and
keeps the paper's safe/unsafe pairing.  The observer is the generic
polynomial-degree model with unbounded inputs.
"""

from __future__ import annotations

from repro.benchsuite.registry import (
    MD5_EXTERN,
    MICRO,
    Benchmark,
    micro_observer,
)

# -- array: array reads under balanced / secret-bounded loops ---------------

ARRAY_SAFE = """
proc array_safe(secret high: byte[], public low: byte[]): int {
    var sum: int = 0;
    for (var i: int = 0; i < len(low); i = i + 1) {
        if (i < len(high)) {
            sum = sum + low[i];
        } else {
            sum = sum + low[i];
        }
    }
    return sum;
}
"""

ARRAY_UNSAFE = """
proc array_unsafe(secret high: byte[], public low: byte[]): int {
    var sum: int = 0;
    for (var i: int = 0; i < len(high); i = i + 1) {
        sum = sum + high[i];
    }
    return sum;
}
"""

# -- loopAndBranch: the vulnerable-looking-but-infeasible trail --------------

LOOP_BRANCH_SAFE = """
proc loopBranch_safe(secret high: int, public low: uint) {
    var i: int = low;
    if (low < 0) {
        // Dead: low is unsigned.  A secret-bounded loop lives here, but
        // the trail through it is infeasible (caught by the abstract
        // interpreter), exactly as in the paper's loopAndBranch example.
        var t: int = high;
        while (t > 0) {
            t = t - 1;
        }
    } else {
        var low2: int = low + 10;
        if (low2 >= 10) {
            var j: int = low;
            while (j > 0) {
                j = j - 1;
            }
        } else {
            // Also dead: low >= 0 implies low2 >= 10.
            if (high < 0) {
                var k: int = high;
                while (k > 0) {
                    k = k - 1;
                }
            }
        }
    }
}
"""

LOOP_BRANCH_UNSAFE = """
proc loopBranch_unsafe(secret high: int, public low: int) {
    var i: int = low;
    if (low < 0) {
        // Feasible here: the running time reveals the secret.
        var t: int = high;
        while (t > 0) {
            t = t - 1;
        }
    } else {
        while (i > 0) {
            i = i - 1;
        }
    }
}
"""

# -- nosecret / notaint: degenerate taint configurations --------------------

NOSECRET_SAFE = """
proc nosecret_safe(public low: uint): int {
    var i: int = 0;
    var acc: int = 0;
    while (i < low) {
        acc = acc + i;
        i = i + 1;
    }
    return acc;
}
"""

NOTAINT_UNSAFE = """
proc notaint_unsafe(secret high: uint): int {
    var i: int = 0;
    while (i < high) {
        i = i + 1;
    }
    return i;
}
"""

# -- sanity: the basics of secret-dependent branching ------------------------

SANITY_SAFE = """
proc sanity_safe(secret high: int, public low: int): int {
    var x: int = 0;
    if (high > 0) {
        x = 1;
    } else {
        x = 2;
    }
    return x + low;
}
"""

SANITY_UNSAFE = """
proc sanity_unsafe(secret high: int, public low: uint): int {
    var x: int = 0;
    if (high > 0) {
        while (x < low) {
            x = x + 1;
        }
    }
    return x;
}
"""

# -- straightline: big-basic-block cost differences ---------------------------


def _big_block(var: str, count: int) -> str:
    lines = []
    for i in range(count):
        lines.append("        %s = %s + %d;" % (var, var, i + 1))
    return "\n".join(lines)


STRAIGHTLINE_SAFE = """
proc straightline_safe(secret high: int, public low: int): int {
    var a: int = high + low;
    var b: int = a * 2;
    var c: int = b - high;
    var d: int = c + c;
    var e: int = d - low;
    return e;
}
"""

STRAIGHTLINE_UNSAFE = (
    """
proc straightline_unsafe(secret high: int, public low: int): int {
    var acc: int = low;
    if (high == 0) {
"""
    + _big_block("acc", 30)
    + """
    } else {
        acc = acc + 1;
    }
    return acc;
}
"""
)

# -- unixlogin: the classic username-probing channel --------------------------

UNIXLOGIN_SAFE = (
    MD5_EXTERN
    + """
proc unixlogin_safe(secret user_exists: bool, public pass: byte[]): bool {
    var outcome: bool = false;
    if (user_exists) {
        var h1: byte[] = md5(pass);
        outcome = true;
    } else {
        // Hash anyway so both paths cost the same (the classic fix).
        var h2: byte[] = md5(pass);
        outcome = false;
    }
    return outcome;
}
"""
)

UNIXLOGIN_UNSAFE = (
    MD5_EXTERN
    + """
proc unixlogin_unsafe(secret user_exists: bool, public pass: byte[]): bool {
    var outcome: bool = false;
    if (user_exists) {
        var h1: byte[] = md5(pass);
        outcome = true;
    } else {
        // No hashing for unknown users: a fast rejection reveals that
        // the username does not exist.
        outcome = false;
    }
    return outcome;
}
"""
)


MICRO_BENCHMARKS = [
    Benchmark(
        name="array_safe",
        group=MICRO,
        source=ARRAY_SAFE,
        proc="array_safe",
        expect="safe",
        observer_factory=micro_observer,
        notes="balanced secret-length branch inside a public loop",
    ),
    Benchmark(
        name="array_unsafe",
        group=MICRO,
        source=ARRAY_UNSAFE,
        proc="array_unsafe",
        expect="attack",
        observer_factory=micro_observer,
        witness_space={
            "high": [[0] * n for n in (0, 8)],
            "low": [[1, 2]],
        },
        notes="loop bounded by the secret array's length",
    ),
    Benchmark(
        name="loopBranch_safe",
        group=MICRO,
        source=LOOP_BRANCH_SAFE,
        proc="loopBranch_safe",
        expect="safe",
        observer_factory=micro_observer,
        notes="the vulnerable trail is infeasible (paper's loopAndBranch)",
    ),
    Benchmark(
        name="loopBranch_unsafe",
        group=MICRO,
        source=LOOP_BRANCH_UNSAFE,
        proc="loopBranch_unsafe",
        expect="attack",
        observer_factory=micro_observer,
        witness_space={"high": [0, 50], "low": [-1]},
        notes="the secret-bounded loop became feasible",
    ),
    Benchmark(
        name="nosecret_safe",
        group=MICRO,
        source=NOSECRET_SAFE,
        proc="nosecret_safe",
        expect="safe",
        observer_factory=micro_observer,
        notes="no secret input at all",
    ),
    Benchmark(
        name="notaint_unsafe",
        group=MICRO,
        source=NOTAINT_UNSAFE,
        proc="notaint_unsafe",
        expect="attack",
        observer_factory=micro_observer,
        witness_space={"high": [0, 50]},
        notes="no public input; time is purely a function of the secret",
    ),
    Benchmark(
        name="sanity_safe",
        group=MICRO,
        source=SANITY_SAFE,
        proc="sanity_safe",
        expect="safe",
        observer_factory=micro_observer,
        notes="secret branch with equal-cost arms",
    ),
    Benchmark(
        name="sanity_unsafe",
        group=MICRO,
        source=SANITY_UNSAFE,
        proc="sanity_unsafe",
        expect="attack",
        observer_factory=micro_observer,
        witness_space={"high": [0, 1], "low": [50]},
        notes="secret branch guarding a public-bounded loop",
    ),
    Benchmark(
        name="straightline_safe",
        group=MICRO,
        source=STRAIGHTLINE_SAFE,
        proc="straightline_safe",
        expect="safe",
        observer_factory=micro_observer,
        notes="no branching at all",
    ),
    Benchmark(
        name="straightline_unsafe",
        group=MICRO,
        source=STRAIGHTLINE_UNSAFE,
        proc="straightline_unsafe",
        expect="attack",
        observer_factory=micro_observer,
        witness_space={"high": [0, 1], "low": [0]},
        notes="one large basic block vs a tiny one, chosen by the secret",
    ),
    Benchmark(
        name="unixlogin_safe",
        group=MICRO,
        source=UNIXLOGIN_SAFE,
        proc="unixlogin_safe",
        expect="safe",
        observer_factory=micro_observer,
        notes="hashes the password whether or not the user exists",
    ),
    Benchmark(
        name="unixlogin_unsafe",
        group=MICRO,
        source=UNIXLOGIN_UNSAFE,
        proc="unixlogin_unsafe",
        expect="attack",
        observer_factory=micro_observer,
        witness_space={"user_exists": [0, 1], "pass": [[1, 2, 3]]},
        witness_gap=400,
        notes="skips the hash for unknown users (leaks username existence)",
    ),
]
