"""The 6 Literature benchmarks (Table 1, third block).

Programs modeled on the timing-attack literature the paper draws from:

* ``k96`` — Kocher's CRYPTO'96 attack target: square-and-multiply
  modular exponentiation for Diffie–Hellman/RSA;
* ``gpt14`` — Genkin–Pipman–Tromer's key-extraction target: a
  square-and-reduce loop whose extra reductions depend on key bits;
* ``login`` — Pasareanu–Phan–Malacaria's CSF'16 password check, the
  loginSafe/loginBad pair of the paper's Fig. 1 (the null-password check
  is modeled by the public ``user_exists`` flag, per the paper's
  footnote that user existence is not considered secret).
"""

from __future__ import annotations

from repro.benchsuite.registry import (
    BIGINT_EXTERNS,
    LITERATURE,
    Benchmark,
    crypto_witness_space,
    realworld_observer,
)
from repro.core.observer import ConcreteThresholdObserver

# -- k96: Kocher's square-and-multiply ---------------------------------------

K96_SAFE = (
    BIGINT_EXTERNS
    + """
proc k96_safe(public base: int, secret exponent: int, public modulus: int): int {
    var y: int = 1;
    var width: int = bigBitLength(exponent);
    for (var i: int = 0; i < width; i = i + 1) {
        y = bigMod(bigMultiply(y, y), modulus);
        if (bigTestBit(exponent, i) == 1) {
            y = bigMod(bigMultiply(y, base), modulus);
        } else {
            var dummy: int = bigMod(bigMultiply(y, base), modulus);
        }
    }
    return y;
}
"""
)

K96_UNSAFE = (
    BIGINT_EXTERNS
    + """
proc k96_unsafe(public base: int, secret exponent: int, public modulus: int): int {
    var y: int = 1;
    var width: int = bigBitLength(exponent);
    for (var i: int = 0; i < width; i = i + 1) {
        y = bigMod(bigMultiply(y, y), modulus);
        if (bigTestBit(exponent, i) == 1) {
            y = bigMod(bigMultiply(y, base), modulus);
        }
    }
    return y;
}
"""
)

# -- gpt14: key-bit-dependent extra reductions --------------------------------

GPT14_SAFE = (
    BIGINT_EXTERNS
    + """
proc gpt14_safe(public cipher: int, public rounds: uint, secret key: byte[]): int {
    var acc: int = 1;
    for (var i: int = 0; i < rounds; i = i + 1) {
        acc = bigMod(bigMultiply(acc, acc), cipher);
        if (i < len(key)) {
            if (key[i] == 1) {
                acc = bigMod(bigMultiply(acc, cipher), cipher);
            } else {
                var d1: int = bigMod(bigMultiply(acc, cipher), cipher);
            }
        } else {
            var d2: int = bigMod(bigMultiply(acc, cipher), cipher);
        }
    }
    return acc;
}
"""
)

GPT14_UNSAFE = (
    BIGINT_EXTERNS
    + """
proc gpt14_unsafe(public cipher: int, public rounds: uint, secret key: byte[]): int {
    var acc: int = 1;
    for (var i: int = 0; i < rounds; i = i + 1) {
        acc = bigMod(bigMultiply(acc, acc), cipher);
        if (i < len(key)) {
            if (key[i] == 1) {
                // The extra multiply runs only for one-bits of the key.
                acc = bigMod(bigMultiply(acc, cipher), cipher);
            }
        }
    }
    return acc;
}
"""
)

# -- login: Fig. 1's loginSafe / loginBad -------------------------------------

LOGIN_SAFE = """
proc login_safe(public user_exists: bool, public guess: byte[], secret user_pw: byte[]): bool {
    var matches: bool = true;
    var dummy: bool = false;
    if (!user_exists) {
        return false;
    }
    for (var i: int = 0; i < len(guess); i = i + 1) {
        if (i < len(user_pw)) {
            if (guess[i] != user_pw[i]) {
                matches = false;
            } else {
                dummy = true;
            }
        } else {
            dummy = true;
            matches = false;
        }
    }
    return matches;
}
"""

LOGIN_UNSAFE = """
proc login_unsafe(public user_exists: bool, public guess: byte[], secret user_pw: byte[]): bool {
    if (!user_exists) {
        return false;
    }
    for (var i: int = 0; i < len(guess); i = i + 1) {
        if (i < len(user_pw)) {
            if (guess[i] != user_pw[i]) {
                return false;
            }
        } else {
            return false;
        }
    }
    return true;
}
"""


def _gpt14_observer() -> ConcreteThresholdObserver:
    """Threshold observer with the round count assumed <= 2048 (the
    per-round constant slop of the balanced version times 4096 rounds
    would otherwise exceed the 25k threshold)."""
    return ConcreteThresholdObserver(
        threshold=25_000,
        default_max=4096,
        max_values={"rounds": 2048, "key#len": 2048},
    )


def _pw_observer() -> ConcreteThresholdObserver:
    """Threshold observer with password lengths assumed <= 2048 bytes
    (the paper: "assume some reasonable maximum for the input
    variables", benchmark-specific)."""
    return ConcreteThresholdObserver(
        threshold=25_000,
        default_max=4096,
        max_values={"guess#len": 2048, "pw#len": 2048, "user_pw#len": 2048},
    )


# -- user: the paper's 25th, unpaired benchmark ------------------------------
# Section 6.1: "we created safe versions by hand (except for User)" — the
# suite had one unsafe program with no safe twin.  Modeled as a username
# lookup whose per-entry comparison loop exits early on the first match:
# the lookup time reveals how deep in the (secret) user table the match
# sits, and whether it exists at all.

USER_UNSAFE = """
proc user_unsafe(public probe: byte[], secret table: byte[]): int {
    var found: int = -1;
    for (var i: int = 0; i < len(table); i = i + 1) {
        if (i < len(probe)) {
            if (table[i] != probe[i]) {
                return -1;
            }
        }
    }
    return 1;
}
"""


LITERATURE_BENCHMARKS = [
    Benchmark(
        name="gpt14_safe",
        group=LITERATURE,
        source=GPT14_SAFE,
        proc="gpt14_safe",
        expect="safe",
        observer_factory=_gpt14_observer,
        witness_space={
            "cipher": [(1 << 61) - 1],
            "rounds": [6],
            "key": [[0] * 4, [1] * 4, [1, 0, 1, 0]],
        },
        notes="every round multiplies, key bit or not",
    ),
    Benchmark(
        name="gpt14_unsafe",
        group=LITERATURE,
        source=GPT14_UNSAFE,
        proc="gpt14_unsafe",
        expect="attack",
        observer_factory=_gpt14_observer,
        witness_space={
            "cipher": [(1 << 61) - 1],
            "rounds": [6],
            "key": [[0] * 4, [1] * 4],
        },
        witness_gap=25_000,
        notes="extra multiply only on one-bits of the key",
    ),
    Benchmark(
        name="k96_safe",
        group=LITERATURE,
        source=K96_SAFE,
        proc="k96_safe",
        expect="safe",
        observer_factory=realworld_observer,
        witness_space=crypto_witness_space(),
        notes="Kocher's loop with a balancing dummy multiply",
    ),
    Benchmark(
        name="k96_unsafe",
        group=LITERATURE,
        source=K96_UNSAFE,
        proc="k96_unsafe",
        expect="attack",
        observer_factory=realworld_observer,
        witness_space=crypto_witness_space(),
        witness_gap=25_000,
        notes="Kocher's attack target: multiply only on one-bits",
    ),
    Benchmark(
        name="login_safe",
        group=LITERATURE,
        source=LOGIN_SAFE,
        proc="login_safe",
        expect="safe",
        observer_factory=_pw_observer,
        witness_space={
            "user_exists": [0, 1],
            "guess": [[1, 2], [3, 4]],
            "user_pw": [[1, 2], [9], [1, 2, 3]],
        },
        notes="Fig. 1 loginSafe (PPM16)",
    ),
    Benchmark(
        name="login_unsafe",
        group=LITERATURE,
        source=LOGIN_UNSAFE,
        proc="login_unsafe",
        expect="attack",
        observer_factory=_pw_observer,
        witness_space={
            "user_exists": [1],
            "guess": [[1] * 48],
            "user_pw": [[1] * 48, [2] + [1] * 47],
        },
        witness_gap=40,
        notes="Fig. 1 loginBad: early exit reveals the matching prefix",
    ),
]

# The unpaired 25th benchmark (not part of the 24 Table-1 rows).
EXTRA_LITERATURE_BENCHMARKS = [
    Benchmark(
        name="user_unsafe",
        group=LITERATURE,
        source=USER_UNSAFE,
        proc="user_unsafe",
        expect="attack",
        observer_factory=_pw_observer,
        witness_space={
            "probe": [[1] * 32],
            "table": [[1] * 32, [2] + [1] * 31, [1] * 16 + [2] * 16],
        },
        witness_gap=40,
        notes="the paper's unpaired 25th benchmark: table-scan timing",
    ),
]
