"""The 24 evaluation benchmarks of Table 1, with registry helpers."""

from repro.benchsuite.literature import (
    EXTRA_LITERATURE_BENCHMARKS,
    LITERATURE_BENCHMARKS,
)
from repro.benchsuite.microbench import MICRO_BENCHMARKS
from repro.benchsuite.registry import (
    LITERATURE,
    MICRO,
    STAC,
    Benchmark,
    BenchmarkSuite,
    crypto_witness_space,
    micro_observer,
    realworld_observer,
)
from repro.benchsuite.runner import BenchResult, ParallelSuiteRunner, run_benchmark
from repro.benchsuite.stac import STAC_BENCHMARKS

# The 24 Table-1 rows.
ALL_BENCHMARKS = MICRO_BENCHMARKS + STAC_BENCHMARKS + LITERATURE_BENCHMARKS
SUITE = BenchmarkSuite(ALL_BENCHMARKS)
# Plus the paper's unpaired 25th program ("except for User", §6.1).
EXTRA_BENCHMARKS = EXTRA_LITERATURE_BENCHMARKS
FULL_SUITE = BenchmarkSuite(ALL_BENCHMARKS + EXTRA_BENCHMARKS)

__all__ = [
    "Benchmark",
    "BenchmarkSuite",
    "BenchResult",
    "ParallelSuiteRunner",
    "run_benchmark",
    "ALL_BENCHMARKS",
    "EXTRA_BENCHMARKS",
    "FULL_SUITE",
    "SUITE",
    "MICRO_BENCHMARKS",
    "STAC_BENCHMARKS",
    "LITERATURE_BENCHMARKS",
    "MICRO",
    "STAC",
    "LITERATURE",
    "micro_observer",
    "realworld_observer",
    "crypto_witness_space",
]
