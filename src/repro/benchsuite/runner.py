"""Parallel benchmark-suite execution, crash-safe and budget-aware.

The heavy objects (drivers, partition trees, abstract states) never
cross a process boundary: workers receive benchmark *names*, rebuild the
driver from the registry inside the worker, and return a slim picklable
:class:`BenchResult` carrying the verdict summary plus the
content digest of :func:`repro.core.report.verdict_digest` — which is
how the caller can assert that every worker, whatever its process or
cache temperature, produced the same analysis.

Multi-benchmark process runs dispatch through the persistent warm pool
(:mod:`repro.perf.pool`): benchmarks are grouped into chunks, chunks are
fed to CPU-clamped warm workers as they free up, and the pool survives
across runner instances.  Runs with a per-task timeout (and the thread/
serial backends) keep the one-future-per-item :func:`~repro.perf.
parallel.try_map` shape.  Both paths observe the same contracts:

* failures are isolated per benchmark: a raised exception, a killed
  worker process (``BrokenProcessPool``) or a per-task timeout marks
  that benchmark failed without aborting the suite;
* failed benchmarks are retried with exponential backoff on the
  **serial in-process backend** — the most conservative substrate, and
  immune to whatever broke the pool;
* completed results are appended to an optional crash-safe JSONL
  journal as they arrive; ``resume=True`` skips every benchmark the
  journal already has, so an interrupted ``table1`` run continues where
  it stopped;
* ``KeyboardInterrupt`` (SIGINT) shuts the pool down, leaves the
  journal flushed, and surfaces as :class:`~repro.util.errors.
  SuiteInterrupted` carrying the completed prefix.
"""

from __future__ import annotations

import dataclasses
import logging
import time
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.perf import runtime
from repro.perf.parallel import resolve_jobs, try_map
from repro.perf.pool import shared_pool, warm_pool_usable
from repro.resilience import faults
from repro.resilience.budget import Budget
from repro.resilience.journal import SuiteJournal, open_journal
from repro.resilience.retry import RetryPolicy, run_with_retries
from repro.util.errors import SuiteInterrupted

log = logging.getLogger(__name__)


@dataclass
class BenchResult:
    """One benchmark's outcome, slim enough to pickle across processes."""

    name: str
    group: str
    proc: str
    expect: str
    status: str
    size: int
    leaves: int
    safety_seconds: float
    attack_seconds: float
    wall_seconds: float
    cache_hits: int
    cache_misses: int
    cache_stats: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    # Per-phase wall seconds from the driver (taint / bounds / refine /
    # attack / total; docs/OBSERVABILITY.md).  Volatile like the other
    # timings: excluded from content digests.
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    digest: str = ""
    # Resilience observability (satellite of docs/RESILIENCE.md): how
    # many retries this row consumed, how many cache entries were
    # quarantined, how many partition leaves degraded to ⊤, and the
    # degradation report when the verdict was forced to "unknown".
    # All volatile — excluded from content digests like the cache
    # counters.
    retries: int = 0
    quarantined: int = 0
    degraded_leaves: int = 0
    degradation: Optional[Dict[str, Any]] = None
    resumed: bool = False

    @property
    def ok(self) -> bool:
        return self.status == self.expect

    @property
    def degraded(self) -> bool:
        return self.degradation is not None

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "BenchResult":
        data = dict(data)
        # JSON round-trips tuples as lists; restore the declared shape.
        data["cache_stats"] = {
            cat: tuple(pair) for cat, pair in (data.get("cache_stats") or {}).items()
        }
        known = {f.name for f in dataclasses.fields(BenchResult)}
        return BenchResult(**{k: v for k, v in data.items() if k in known})


def run_benchmark(
    name: str,
    cache: Optional[bool] = None,
    deadline: Optional[float] = None,
    max_refinements: Optional[int] = None,
    max_steps: Optional[int] = None,
) -> BenchResult:
    """Execute one registry benchmark by name (the process-pool worker).

    ``cache`` forces the perf layer on/off for the whole run (driver
    construction included); None inherits the process-wide flag.  The
    optional budget limits build a fresh :class:`Budget` inside the
    worker (budgets hold a started monotonic clock, so they must never
    travel across a process boundary pre-armed).
    """
    from repro.benchsuite import FULL_SUITE
    from repro.core.report import verdict_digest

    faults.maybe_fire("worker.run", key=name)
    bench = FULL_SUITE.get(name)
    budget: Optional[Budget] = None
    if deadline is not None or max_refinements is not None or max_steps is not None:
        budget = Budget(
            wall_seconds=deadline,
            max_refinements=max_refinements,
            max_steps=max_steps,
        )
    started = time.perf_counter()
    if cache is None:
        verdict = bench.run(budget=budget)
    else:
        with runtime.override(cache):
            verdict = bench.run(budget=budget)
    wall = time.perf_counter() - started
    return BenchResult(
        name=bench.name,
        group=bench.group,
        proc=bench.proc,
        expect=bench.expect,
        status=verdict.status,
        size=verdict.size,
        leaves=len(verdict.tree.leaves()),
        safety_seconds=verdict.safety_seconds,
        attack_seconds=verdict.attack_seconds,
        wall_seconds=wall,
        cache_hits=verdict.cache_hits,
        cache_misses=verdict.cache_misses,
        cache_stats=verdict.cache_stats,
        phase_seconds=dict(verdict.phase_seconds),
        digest=verdict_digest(verdict),
        quarantined=verdict.quarantined,
        degraded_leaves=verdict.degraded_leaves,
        degradation=(
            verdict.degradation.to_dict() if verdict.degradation is not None else None
        ),
    )


class ParallelSuiteRunner:
    """Run a set of registry benchmarks across a worker pool.

    ``backend`` is one of ``"auto"`` / ``"process"`` / ``"thread"`` /
    ``"serial"`` (see :mod:`repro.perf.parallel`); results always come
    back in input order, so output is deterministic regardless of
    completion order.

    ``retries`` re-runs each failed benchmark (exception, crashed
    worker, task timeout) up to N times on the serial in-process
    backend with exponential backoff; a benchmark that still fails
    raises :class:`WorkerCrashed`.  ``journal`` (a path) appends each
    completed result as a JSONL record; with ``resume=True`` benchmarks
    already journaled are returned from the journal instead of re-run.
    ``deadline`` (seconds) hands every worker a wall-clock
    :class:`Budget` — overruns degrade to "unknown" verdicts rather
    than hang (see :mod:`repro.core.blazer`).

    The runner is reusable for non-benchmark suites (the differential
    harness rides it for fuzz campaigns): pass ``worker`` (a picklable
    callable from item name to result) and ``codec`` (the result class,
    providing ``from_dict`` for resume and ``to_dict``/``retries``/
    ``resumed`` on instances).  The defaults reproduce the benchmark
    behavior exactly.
    """

    def __init__(
        self,
        benchmarks: Optional[Sequence] = None,
        jobs: Optional[int] = 1,
        backend: str = "auto",
        cache: Optional[bool] = None,
        retries: int = 0,
        task_timeout: Optional[float] = None,
        deadline: Optional[float] = None,
        journal: Optional[str] = None,
        resume: bool = False,
        retry_policy: Optional[RetryPolicy] = None,
        worker=None,
        codec=None,
        warm: Optional[bool] = None,
    ):
        if benchmarks is None:
            from repro.benchsuite import ALL_BENCHMARKS

            benchmarks = ALL_BENCHMARKS
        if retries < 0:
            raise ValueError("retries must be >= 0, got %d" % retries)
        self._names = [b.name if hasattr(b, "name") else str(b) for b in benchmarks]
        self._jobs = resolve_jobs(jobs)
        self._backend = backend
        self._cache = cache
        self._task_timeout = task_timeout
        self._deadline = deadline
        self._journal: Optional[SuiteJournal] = open_journal(journal)
        self._resume = resume
        self._policy = retry_policy or RetryPolicy(retries=retries)
        self._worker = worker
        self._codec = codec or BenchResult
        self._warm = warm
        # Observability for callers (the CLI, bench_perf): retry count
        # per benchmark name, and how many rows came from the journal.
        self.retry_counts: Dict[str, int] = {}
        self.resumed_names: List[str] = []

    @property
    def jobs(self) -> int:
        return self._jobs

    @property
    def journal_path(self) -> Optional[str]:
        return self._journal.path if self._journal is not None else None

    # -- journal helpers ---------------------------------------------------

    def _record(self, result: BenchResult) -> None:
        if self._journal is not None:
            self._journal.record_result(result.name, result.to_dict())

    def _load_resumable(self) -> Dict[str, BenchResult]:
        if not self._resume or self._journal is None:
            return {}
        out: Dict[str, BenchResult] = {}
        for name, record in self._journal.load().items():
            try:
                result = self._codec.from_dict(record["result"])
            except (KeyError, TypeError):
                continue
            result.resumed = True
            out[name] = result
        return out

    # -- execution ---------------------------------------------------------

    def _use_warm_pool(self, pending: Sequence[str]) -> bool:
        """Route this run through the persistent warm pool?

        The warm pool (:mod:`repro.perf.pool`) is the fast path for
        multi-benchmark process runs: chunked dispatch amortizes the
        per-task round-trip, the pool itself survives across runs, and
        the worker count is clamped to the machine (``--jobs 4`` on one
        core stops oversubscribing).  ``warm=False`` opts out;
        ``task_timeout`` forces the per-task-future shape of
        :func:`try_map` (a chunk cannot time out item-by-item), as do
        the thread/serial backends.  Failure semantics are unchanged
        either way: per-item result-or-exception, ``WorkerCrashed`` on
        a dead pool, journal hook in input order.
        """
        if self._warm is False:
            return False
        if self._task_timeout is not None:
            return False
        if self._jobs <= 1 or len(pending) <= 1:
            return False
        if self._backend not in ("auto", "process"):
            return False
        return warm_pool_usable()

    def run(self) -> List[BenchResult]:
        worker = self._worker
        if worker is None:
            worker = partial(
                run_benchmark, cache=self._cache, deadline=self._deadline
            )
        completed: Dict[str, BenchResult] = self._load_resumable()
        self.resumed_names = [n for n in self._names if n in completed]
        pending = [n for n in self._names if n not in completed]

        def journal_hook(index: int, outcome: Union[BenchResult, Exception]) -> None:
            if not isinstance(outcome, Exception):
                completed[pending[index]] = outcome
                self._record(outcome)

        try:
            if self._use_warm_pool(pending):
                outcomes = shared_pool(self._jobs).map_chunked(
                    worker, pending, on_result=journal_hook
                )
            else:
                outcomes = try_map(
                    worker,
                    pending,
                    jobs=self._jobs,
                    backend=self._backend,
                    task_timeout=self._task_timeout,
                    on_result=journal_hook,
                )
        except KeyboardInterrupt as exc:
            raise SuiteInterrupted(
                "suite interrupted with %d/%d benchmark(s) completed"
                % (len(completed), len(self._names)),
                completed=list(completed.values()),
            ) from exc

        failed: List[Tuple[str, Exception]] = []
        for name, outcome in zip(pending, outcomes):
            if not isinstance(outcome, Exception):
                completed[name] = outcome
            else:
                failed.append((name, outcome))

        for name, first_error in failed:
            completed[name] = self._retry(worker, name, first_error, completed)

        return [completed[name] for name in self._names]

    def _retry(
        self,
        worker,
        name: str,
        first_error: Exception,
        completed: Dict[str, BenchResult],
    ) -> BenchResult:
        """Re-run one failed benchmark serially, with backoff.

        The retry loop itself lives in :func:`repro.resilience.retry.
        run_with_retries` (shared with the analysis-service workers);
        this wrapper adds the suite bookkeeping: journal record, retry
        counters, and interrupt-with-completed-prefix semantics.
        """
        try:
            result, attempts = run_with_retries(
                worker,
                name,
                self._policy,
                first_error,
                label="benchmark %s" % name,
            )
        except KeyboardInterrupt as exc:
            raise SuiteInterrupted(
                "suite interrupted during retry of %s" % name,
                completed=list(completed.values()),
            ) from exc
        result.retries = attempts
        self.retry_counts[name] = attempts
        self._record(result)
        return result
