"""Parallel benchmark-suite execution.

The heavy objects (drivers, partition trees, abstract states) never
cross a process boundary: workers receive benchmark *names*, rebuild the
driver from the registry inside the worker, and return a slim picklable
:class:`BenchResult` carrying the verdict summary plus the
content digest of :func:`repro.core.report.verdict_digest` — which is
how the caller can assert that every worker, whatever its process or
cache temperature, produced the same analysis.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from repro.perf import runtime
from repro.perf.parallel import parallel_map, resolve_jobs


@dataclass
class BenchResult:
    """One benchmark's outcome, slim enough to pickle across processes."""

    name: str
    group: str
    proc: str
    expect: str
    status: str
    size: int
    leaves: int
    safety_seconds: float
    attack_seconds: float
    wall_seconds: float
    cache_hits: int
    cache_misses: int
    cache_stats: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    digest: str = ""

    @property
    def ok(self) -> bool:
        return self.status == self.expect

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


def run_benchmark(name: str, cache: Optional[bool] = None) -> BenchResult:
    """Execute one registry benchmark by name (the process-pool worker).

    ``cache`` forces the perf layer on/off for the whole run (driver
    construction included); None inherits the process-wide flag.
    """
    from repro.benchsuite import FULL_SUITE
    from repro.core.report import verdict_digest

    bench = FULL_SUITE.get(name)
    started = time.perf_counter()
    if cache is None:
        verdict = bench.run()
    else:
        with runtime.override(cache):
            verdict = bench.run()
    wall = time.perf_counter() - started
    return BenchResult(
        name=bench.name,
        group=bench.group,
        proc=bench.proc,
        expect=bench.expect,
        status=verdict.status,
        size=verdict.size,
        leaves=len(verdict.tree.leaves()),
        safety_seconds=verdict.safety_seconds,
        attack_seconds=verdict.attack_seconds,
        wall_seconds=wall,
        cache_hits=verdict.cache_hits,
        cache_misses=verdict.cache_misses,
        cache_stats=verdict.cache_stats,
        digest=verdict_digest(verdict),
    )


class ParallelSuiteRunner:
    """Run a set of registry benchmarks across a worker pool.

    ``backend`` is one of ``"auto"`` / ``"process"`` / ``"thread"`` /
    ``"serial"`` (see :mod:`repro.perf.parallel`); results always come
    back in input order, so output is deterministic regardless of
    completion order.
    """

    def __init__(
        self,
        benchmarks: Optional[Sequence] = None,
        jobs: Optional[int] = 1,
        backend: str = "auto",
        cache: Optional[bool] = None,
    ):
        if benchmarks is None:
            from repro.benchsuite import ALL_BENCHMARKS

            benchmarks = ALL_BENCHMARKS
        self._names = [b.name if hasattr(b, "name") else str(b) for b in benchmarks]
        self._jobs = resolve_jobs(jobs)
        self._backend = backend
        self._cache = cache

    @property
    def jobs(self) -> int:
        return self._jobs

    def run(self) -> List[BenchResult]:
        worker = partial(run_benchmark, cache=self._cache)
        return parallel_map(
            worker, self._names, jobs=self._jobs, backend=self._backend
        )
