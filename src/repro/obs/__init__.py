"""Observability: trace spans, the unified metrics registry, exporters.

Three pillars (docs/OBSERVABILITY.md):

* :mod:`repro.obs.trace` — ``span("checksafe", trail=...)`` context
  managers threaded through the driver, the bound analysis, the
  fixpoint engine, the cache tiers, and the service, exported as JSONL;
* :mod:`repro.obs.metrics` — counters / gauges / log-bucket histograms
  in one registry, with pull-time collectors over the pre-existing
  ``PerfStats`` / ``ServiceStats`` counters;
* :mod:`repro.obs.exporters` — Prometheus text exposition (the service
  ``metrics`` op, ``repro metrics``) and JSON snapshots.

Everything is gated by the ``REPRO_OBS`` switch
(:mod:`repro.obs.runtime`), default **off**; the off-path is
behaviorally identical to the uninstrumented engine, mirroring the
``REPRO_PERF`` convention.
"""

from repro.obs.metrics import DEFAULT_BUCKETS, Family, MetricsRegistry, REGISTRY
from repro.obs.runtime import enabled, override, set_enabled, set_trace_path, trace_path
from repro.obs.trace import COLLECTOR, Span, current_context, load_trace, span
from repro.obs.exporters import (
    metrics_json,
    metrics_snapshot,
    perf_stats_families,
    prometheus_text,
    register_perf_collector,
)

__all__ = [
    "COLLECTOR",
    "DEFAULT_BUCKETS",
    "Family",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "current_context",
    "enabled",
    "load_trace",
    "metrics_json",
    "metrics_snapshot",
    "override",
    "perf_stats_families",
    "prometheus_text",
    "register_perf_collector",
    "set_enabled",
    "set_trace_path",
    "span",
    "trace_path",
]
