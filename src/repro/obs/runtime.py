"""Process-wide switchboard of the observability layer.

Mirrors :mod:`repro.perf.runtime`: one flag (``REPRO_OBS``), read from
the environment at import so worker processes inherit the caller's
choice, plus programmatic ``set_enabled`` / ``override`` for tests and
embedders.  The flag defaults *off* — with it off, :func:`repro.obs.
trace.span` returns a shared no-op context manager and every
instrumented hot path behaves exactly like the seed engine.

The trace destination (``REPRO_TRACE``, a JSONL path) lives here too,
for the same reason: it must reach pool workers through the
environment, so the process-wide accessor and the env var are one
mechanism.

This module is a dependency leaf (it imports nothing from ``repro``) so
the hot modules — the driver, the bound analysis, the fixpoint engine —
can consult it without import cycles.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

_OFF_VALUES = ("", "0", "false", "off")

_ENABLED = os.environ.get("REPRO_OBS", "0") not in _OFF_VALUES

# Overrides the environment when set programmatically (None = use env).
_TRACE_PATH: Optional[str] = None


def enabled() -> bool:
    """Is the observability layer (spans + trace export) active?"""
    return _ENABLED


def set_enabled(flag: bool) -> None:
    global _ENABLED
    _ENABLED = bool(flag)


@contextmanager
def override(flag: bool) -> Iterator[None]:
    """Temporarily force the observability layer on or off."""
    global _ENABLED
    saved = _ENABLED
    _ENABLED = bool(flag)
    try:
        yield
    finally:
        _ENABLED = saved


def trace_path() -> Optional[str]:
    """Where completed spans are exported (JSONL), or None.

    Reads ``REPRO_TRACE`` unless :func:`set_trace_path` installed an
    explicit destination.  Pool workers inherit the environment, so a
    path exported by the parent reaches every worker process.
    """
    if _TRACE_PATH is not None:
        return _TRACE_PATH or None
    return os.environ.get("REPRO_TRACE") or None


def process_age_seconds() -> float:
    """How long this process has existed, interpreter startup included.

    Read from ``/proc`` (field 22 of ``/proc/self/stat`` is the process
    start time in clock ticks since boot); 0.0 where that is
    unavailable.  The CLI uses this to stretch its root span back over
    startup, so trace coverage is measured against the *end-to-end*
    wall time of the command, not just the instrumented part.
    """
    try:
        with open("/proc/self/stat", "rb") as handle:
            # Split after the parenthesized comm field: executable names
            # may contain spaces, everything after ") " is fixed-format.
            fields = handle.read().rsplit(b") ", 1)[1].split()
        started_ticks = float(fields[19])  # "starttime", field 22 overall
        with open("/proc/uptime", "rb") as handle:
            uptime = float(handle.read().split()[0])
        age = uptime - started_ticks / os.sysconf("SC_CLK_TCK")
        return max(0.0, age)
    except (OSError, ValueError, IndexError, AttributeError):
        return 0.0


def set_trace_path(path: Optional[str], export_env: bool = False) -> None:
    """Install a trace destination; ``export_env`` also sets
    ``REPRO_TRACE`` so worker *processes* spawned later inherit it."""
    global _TRACE_PATH
    _TRACE_PATH = path
    if export_env:
        if path:
            os.environ["REPRO_TRACE"] = path
        else:
            os.environ.pop("REPRO_TRACE", None)
