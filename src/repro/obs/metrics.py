"""The unified metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` holds every metric family a process (or a
daemon) wants to expose.  Families are created idempotently —
``registry.counter("repro_spans_total", ...)`` returns the existing
family on the second call — so instrumentation sites never need
coordination.  Each family fans out into label-addressed children
(``family.labels(name="checksafe").inc()``); a family used without
labels is its own single child.

Histograms use **fixed log-scale buckets** (powers of two from 1 ms to
~131 s by default): latency distributions in this codebase span five
orders of magnitude between a memoized cache hit and a cold crypto
benchmark, so linear buckets would waste all their resolution on one
end.  Buckets are cumulative at exposition time (Prometheus semantics,
:mod:`repro.obs.exporters`), but stored per-interval here.

Sources that already count things — :class:`repro.perf.runtime.
PerfStats`, the daemon's ``ServiceStats``, the job queue — are unified
through **collectors**: a registered zero-argument callable returning
ready-made :class:`Family` values at snapshot time.  This is how the
pre-existing stats objects were migrated onto the registry without
adding a second increment to any hot path: the registry *pulls* their
totals when scraped, and one ``collect()`` returns everything —
native families and collected ones — in a single snapshot.

Thread safety: one lock per registry covers every child mutation and
snapshot.  No metric here sits on the abstract-interpretation hot loop,
so a plain lock is cheap enough.
"""

from __future__ import annotations

import re
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

KINDS = ("counter", "gauge", "histogram")

# Log-scale latency buckets: 1ms * 2^i, i in [0, 17] -> 0.001 .. 131.072s.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(0.001 * (2 ** i) for i in range(18))

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labelnames: Sequence[str], labels: Dict[str, str]) -> LabelKey:
    if set(labels) != set(labelnames):
        raise ValueError(
            "labels %s do not match declared label names %s"
            % (sorted(labels), sorted(labelnames))
        )
    return tuple((name, str(labels[name])) for name in labelnames)


class Child:
    """One label-addressed time series of a family."""

    def __init__(self, family: "Family", key: LabelKey):
        self._family = family
        self._lock = family._lock
        self.key = key
        self.value = 0.0
        # Histogram state (unused for counter/gauge):
        self.bucket_counts: Optional[List[int]] = None
        self.sum = 0.0
        self.count = 0
        if family.kind == "histogram":
            self.bucket_counts = [0] * len(family.buckets)

    # -- counter / gauge ---------------------------------------------------

    def inc(self, amount: float = 1.0) -> None:
        if self._family.kind == "counter" and amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        if self._family.kind != "gauge":
            raise ValueError("only gauges can decrease")
        with self._lock:
            self.value -= amount

    def set(self, value: float) -> None:
        if self._family.kind != "gauge":
            raise ValueError("only gauges can be set")
        with self._lock:
            self.value = float(value)

    # -- histogram ---------------------------------------------------------

    def observe(self, value: float) -> None:
        if self._family.kind != "histogram":
            raise ValueError("only histograms observe")
        assert self.bucket_counts is not None
        with self._lock:
            for i, bound in enumerate(self._family.buckets):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    break
            # Values beyond the last bound land only in +Inf (count).
            self.sum += value
            self.count += 1

    def quantile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile (``0 < q <= 1``) of the observed
        distribution, interpolated linearly inside the log-scale bucket
        the rank falls in — the standard Prometheus ``histogram_quantile``
        estimate, computed locally so the service loadgen can publish
        p50/p99 straight from its latency histograms.

        None before the first observation.  Ranks beyond the last bucket
        bound clamp to that bound (the histogram cannot see further).
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile must be in (0, 1], got %r" % q)
        assert self.bucket_counts is not None
        with self._lock:
            if self.count == 0:
                return None
            rank = q * self.count
            seen = 0
            bounds = self._family.buckets
            for i, in_bucket in enumerate(self.bucket_counts):
                if in_bucket == 0:
                    continue
                if seen + in_bucket >= rank:
                    lower = bounds[i - 1] if i > 0 else 0.0
                    upper = bounds[i]
                    fraction = (rank - seen) / in_bucket
                    return lower + (upper - lower) * fraction
                seen += in_bucket
            return bounds[-1]  # rank lives in the +Inf overflow


class Family:
    """One named metric (a set of label-addressed children)."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        lock: Optional[threading.Lock] = None,
    ):
        if not _NAME_RE.match(name):
            raise ValueError("invalid metric name %r" % name)
        if kind not in KINDS:
            raise ValueError("invalid metric kind %r" % kind)
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError("invalid label name %r" % label)
        if kind == "histogram":
            bounds = tuple(float(b) for b in buckets)
            if not bounds or any(
                b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
            ):
                raise ValueError("histogram buckets must strictly increase")
            self.buckets: Tuple[float, ...] = bounds
        else:
            self.buckets = ()
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = lock or threading.Lock()
        self._children: Dict[LabelKey, Child] = {}

    def labels(self, **labels: str) -> Child:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = Child(self, key)
            return child

    def _default(self) -> Child:
        if self.labelnames:
            raise ValueError(
                "metric %s declares labels %s; use .labels(...)"
                % (self.name, list(self.labelnames))
            )
        return self.labels()

    # Label-free convenience: the family acts as its own child.
    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    def children(self) -> List[Child]:
        with self._lock:
            return list(self._children.values())

    @staticmethod
    def constant(
        name: str,
        kind: str,
        help: str,
        entries: Sequence[Tuple[Dict[str, str], float]],
    ) -> "Family":
        """A ready-made snapshot family (what collectors return):
        ``entries`` is a list of ``(labels, value)`` pairs sharing one
        label-name set."""
        labelnames = sorted(entries[0][0]) if entries else ()
        family = Family(name, kind, help, labelnames=labelnames)
        for labels, value in entries:
            family.labels(**labels).value = float(value)
        return family


class MetricsRegistry:
    """A process- or daemon-scoped set of metric families."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, Family] = {}
        self._collectors: List[Callable[[], List[Family]]] = []

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Family:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise ValueError(
                        "metric %s already registered as %s, not %s"
                        % (name, existing.kind, kind)
                    )
                return existing
            family = Family(name, kind, help, labelnames, buckets)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Family:
        return self._family(name, "counter", help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Family:
        return self._family(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Family:
        return self._family(name, "histogram", help, labelnames, buckets)

    def register_collector(self, collector: Callable[[], List[Family]]) -> None:
        """Attach a pull-time source (see the module docstring)."""
        with self._lock:
            self._collectors.append(collector)

    def collect(self) -> List[Family]:
        """Every family — native ones plus collector output — sorted by
        name.  Collector families shadow native ones on a name clash
        (the collector is the authoritative source for what it counts).
        """
        with self._lock:
            families = dict(self._families)
            collectors = list(self._collectors)
        for collector in collectors:
            for family in collector():
                families[family.name] = family
        return [families[name] for name in sorted(families)]

    def clear(self) -> None:
        """Drop every family and collector (tests)."""
        with self._lock:
            self._families.clear()
            self._collectors.clear()


# The process-wide default registry: span metrics and anything not owned
# by a longer-lived object (the daemon composes its own registry with
# this one).
REGISTRY = MetricsRegistry()
