"""Lightweight trace spans: where an analysis spends its time.

The paper's driver (Fig. 2) alternates REFINEPARTITION / CHECKSAFE /
CHECKATTACK; a span is one timed occurrence of such a phase::

    with span("checksafe", trail=leaf.trail):
        ...

Design:

* **Off means off.**  With the ``REPRO_OBS`` switch down
  (:mod:`repro.obs.runtime`), :func:`span` returns one shared no-op
  context manager — no allocation, no clock read, no stack push.  The
  instrumented engine is behaviorally identical to the seed engine.
* **Monotonic clocks.**  Durations come from ``time.perf_counter``;
  the wall-clock timestamp on each record is informational only.
* **Parent/child nesting** via a thread-local span stack; sibling
  threads keep independent stacks, and a worker can link its spans to
  a parent in another thread (or process) by passing the parent's
  ``(trace, span)`` context explicitly (:func:`current_context`).
* **Thread+process-safe IDs.**  A span id is
  ``"<pid:x>-<tid:x>-<seq:x>"`` — the triple is unique across every
  thread of every worker process without any coordination.  The trace
  id is the root span's id.
* **Lazy attributes.**  Attribute values are rendered only when the
  span is recorded (obs on): pass a ``Trail`` and its (memoized)
  fingerprint is taken at exit; pass a callable and it is called then.

Completed spans go to the process-wide :data:`COLLECTOR`: a bounded
in-memory ring (tests, ad-hoc inspection), per-span-name metrics on
:data:`repro.obs.metrics.REGISTRY` (``repro_spans_total``,
``repro_span_seconds``), and — when ``REPRO_TRACE`` names a file — a
JSONL export riding the crash-safe journal machinery of
:mod:`repro.resilience.journal` (flush per record, no per-span fsync).
Worker processes inherit ``REPRO_TRACE`` through the environment and
append to the same file; single-line ``O_APPEND`` writes keep the
records intact.
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import threading
import time
from collections import deque
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs import runtime
from repro.obs.metrics import REGISTRY
from repro.resilience.journal import write_record

log = logging.getLogger(__name__)

# How many completed spans the in-memory ring retains.
RING_LIMIT = 4096

_SEQ = itertools.count(1)  # next() is atomic under the GIL

SpanContext = Tuple[str, str]  # (trace id, span id)


def _new_id() -> str:
    return "%x-%x-%x" % (os.getpid(), threading.get_ident(), next(_SEQ))


class _Stack(threading.local):
    def __init__(self) -> None:
        self.spans: List["Span"] = []


_STACK = _Stack()


def _render_attr(value: Any) -> Any:
    """Render one attribute for the span record, as late and as cheaply
    as possible: callables are thunks, trail-likes contribute their
    memoized fingerprint, JSON scalars pass through."""
    if callable(value):
        value = value()
    fingerprint = getattr(value, "fingerprint", None)
    if callable(fingerprint):
        try:
            return fingerprint()
        except Exception:  # pragma: no cover - a broken attr never kills a span
            return str(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


class Span:
    """One in-flight timed phase (use via :func:`span`)."""

    __slots__ = (
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "trace_id",
        "started_wall",
        "started",
        "seconds",
    )

    def __init__(self, name: str, attrs: Dict[str, Any], parent: Optional[SpanContext]):
        self.name = name
        self.attrs = attrs
        self.span_id = _new_id()
        if parent is not None:
            self.trace_id, self.parent_id = parent
        else:
            enclosing = _STACK.spans[-1] if _STACK.spans else None
            if enclosing is not None:
                self.trace_id = enclosing.trace_id
                self.parent_id: Optional[str] = enclosing.span_id
            else:
                self.trace_id = self.span_id
                self.parent_id = None
        self.started_wall = time.time()
        self.started = time.perf_counter()
        self.seconds = 0.0

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to an already-open span."""
        self.attrs.update(attrs)

    def backdate(self, seconds: float) -> None:
        """Stretch the span's start ``seconds`` into the past — how the
        CLI's root span absorbs interpreter startup
        (:func:`repro.obs.runtime.process_age_seconds`)."""
        if seconds > 0:
            self.started -= seconds
            self.started_wall -= seconds

    @property
    def context(self) -> SpanContext:
        return (self.trace_id, self.span_id)

    def __enter__(self) -> "Span":
        _STACK.spans.append(self)
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self.started
        stack = _STACK.spans
        if stack and stack[-1] is self:
            stack.pop()
        else:  # pragma: no cover - misnested exit; recover, don't corrupt
            try:
                stack.remove(self)
            except ValueError:
                pass
        COLLECTOR.record(self)

    def to_record(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "pid": os.getpid(),
            "thread": threading.get_ident(),
            "t_wall": round(self.started_wall, 6),
            "seconds": round(self.seconds, 9),
            "attrs": {k: _render_attr(v) for k, v in sorted(self.attrs.items())},
        }


class _NullSpan:
    """The shared off-switch context manager: stateless, reentrant."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def annotate(self, **attrs: Any) -> None:
        return None

    def backdate(self, seconds: float) -> None:
        return None

    @property
    def context(self) -> None:
        return None


_NULL = _NullSpan()


def span(name: str, parent: Optional[SpanContext] = None, **attrs: Any):
    """A context manager timing one named phase (no-op when obs is off).

    ``parent`` explicitly links the span into another thread's or
    process's trace; without it, nesting follows this thread's span
    stack.
    """
    if not runtime.enabled():
        return _NULL
    return Span(name, attrs, parent)


def current_context() -> Optional[SpanContext]:
    """The innermost open span's ``(trace, span)`` — what a caller hands
    to workers so their spans nest under it across threads/processes."""
    if not _STACK.spans:
        return None
    return _STACK.spans[-1].context


class TraceCollector:
    """Process-wide sink for completed spans (ring + metrics + JSONL)."""

    def __init__(self, ring_limit: int = RING_LIMIT):
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=ring_limit)
        self._handle = None
        self._handle_path: Optional[str] = None
        self._handle_pid: Optional[int] = None
        self._spans_total = REGISTRY.counter(
            "repro_spans_total",
            "Completed trace spans by phase name",
            labelnames=("name",),
        )
        self._span_seconds = REGISTRY.histogram(
            "repro_span_seconds",
            "Trace span duration by phase name (seconds)",
            labelnames=("name",),
        )

    def record(self, span: Span) -> None:
        record = span.to_record()
        with self._lock:
            self._ring.append(record)
        self._spans_total.labels(name=span.name).inc()
        self._span_seconds.labels(name=span.name).observe(span.seconds)
        path = runtime.trace_path()
        if path is not None:
            self._export(path, record)

    def _export(self, path: str, record: Dict[str, Any]) -> None:
        with self._lock:
            try:
                handle = self._ensure_handle(path)
                write_record(handle, record, fsync=False)
            except OSError as exc:  # a dead trace file must not kill analyses
                log.warning("cannot export span to %s: %s", path, exc)

    def _ensure_handle(self, path: str):
        pid = os.getpid()
        if (
            self._handle is None
            or self._handle_path != path
            or self._handle_pid != pid  # reopened after fork: own offset
        ):
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
            self._handle = open(path, "a", encoding="utf-8")
            self._handle_path = path
            self._handle_pid = pid
        return self._handle

    def spans(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        with self._lock:
            records = list(self._ring)
        if name is None:
            return records
        return [r for r in records if r["name"] == name]

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()


COLLECTOR = TraceCollector()


def load_trace(path: str) -> Iterator[Dict[str, Any]]:
    """Yield the span records of a JSONL trace file, skipping malformed
    lines (the forgiving-loader convention of the suite journal)."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and "span" in record:
                yield record
