"""Metric exporters: Prometheus text exposition and JSON snapshots.

The exposition follows the Prometheus text format, version 0.0.4: one
``# HELP`` and ``# TYPE`` line per family, samples sorted by name then
label set, histogram children expanded into cumulative ``_bucket``
samples (``le`` labels, closing ``+Inf``) plus ``_sum`` / ``_count``.
Escaping rules are the spec's: ``\\`` and newline in help text; ``\\``,
``"`` and newline in label values.

Also here: the **pull-time collectors** that migrate the pre-existing
stats objects onto the unified registry.  :func:`perf_stats_families`
turns :data:`repro.perf.runtime.STATS` (cache hit/miss pairs and
one-sided events) into counter families; the daemon registers its own
equivalents for ``ServiceStats``, queue depth, and worker utilization
(:mod:`repro.service.daemon`).  Collectors read shared counters that
were going to be maintained anyway, so unification costs the hot paths
nothing.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.metrics import Child, Family, MetricsRegistry
from repro.perf import runtime as perf_runtime


# -- prometheus text exposition ----------------------------------------------


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return "%d" % int(value)
    return repr(float(value))


def _format_labels(pairs) -> str:
    if not pairs:
        return ""
    rendered = ",".join(
        '%s="%s"' % (name, _escape_label_value(str(value))) for name, value in pairs
    )
    return "{%s}" % rendered


def _bucket_le(bound: float) -> str:
    return _format_value(bound)


def _merged(registries) -> List[Family]:
    families: Dict[str, Family] = {}
    for registry in registries:
        for family in registry.collect():
            families[family.name] = family
    return [families[name] for name in sorted(families)]


def _render_family(family: Family, lines: List[str]) -> None:
    lines.append("# HELP %s %s" % (family.name, _escape_help(family.help)))
    lines.append("# TYPE %s %s" % (family.name, family.kind))
    children = sorted(family.children(), key=lambda c: c.key)
    if family.kind in ("counter", "gauge"):
        for child in children:
            lines.append(
                "%s%s %s"
                % (family.name, _format_labels(child.key), _format_value(child.value))
            )
        return
    for child in children:
        assert child.bucket_counts is not None
        cumulative = 0
        for bound, count in zip(family.buckets, child.bucket_counts):
            cumulative += count
            pairs = child.key + (("le", _bucket_le(bound)),)
            lines.append(
                "%s_bucket%s %d" % (family.name, _format_labels(pairs), cumulative)
            )
        pairs = child.key + (("le", "+Inf"),)
        lines.append(
            "%s_bucket%s %d" % (family.name, _format_labels(pairs), child.count)
        )
        lines.append(
            "%s_sum%s %s"
            % (family.name, _format_labels(child.key), _format_value(child.sum))
        )
        lines.append(
            "%s_count%s %d" % (family.name, _format_labels(child.key), child.count)
        )


def prometheus_text(*registries: MetricsRegistry) -> str:
    """The text exposition of one or more registries (later registries
    shadow earlier ones on a family-name clash)."""
    lines: List[str] = []
    for family in _merged(registries):
        _render_family(family, lines)
    return "\n".join(lines) + ("\n" if lines else "")


# -- json snapshot ------------------------------------------------------------


def _child_json(family: Family, child: Child) -> Dict[str, Any]:
    out: Dict[str, Any] = {"labels": dict(child.key)}
    if family.kind == "histogram":
        assert child.bucket_counts is not None
        out["buckets"] = [
            {"le": bound, "count": count}
            for bound, count in zip(family.buckets, child.bucket_counts)
        ]
        out["sum"] = child.sum
        out["count"] = child.count
    else:
        out["value"] = child.value
    return out


def metrics_snapshot(*registries: MetricsRegistry) -> Dict[str, Any]:
    """A JSON-safe snapshot of the merged registries."""
    out: Dict[str, Any] = {}
    for family in _merged(registries):
        out[family.name] = {
            "kind": family.kind,
            "help": family.help,
            "samples": [_child_json(family, c) for c in family.children()],
        }
    return out


def metrics_json(*registries: MetricsRegistry, indent: Optional[int] = 2) -> str:
    return json.dumps(metrics_snapshot(*registries), indent=indent, sort_keys=True)


# -- collectors over pre-existing stats ---------------------------------------


def perf_stats_families(
    stats: Optional[perf_runtime.PerfStats] = None,
) -> List[Family]:
    """The perf layer's counters as metric families.

    ``repro_cache_requests_total{category,outcome}`` carries every
    hit/miss pair of :class:`~repro.perf.runtime.PerfStats` (categories
    ``bound``, ``bound.disk``, ``zone.close``, ``transfer``, …);
    ``repro_perf_events_total{event}`` the one-sided events
    (quarantines, injected faults).
    """
    stats = stats if stats is not None else perf_runtime.STATS
    requests = []
    for category, (hits, misses) in sorted(stats.snapshot().items()):
        requests.append(({"category": category, "outcome": "hit"}, hits))
        requests.append(({"category": category, "outcome": "miss"}, misses))
    families = [
        Family.constant(
            "repro_cache_requests_total",
            "counter",
            "Cache lookups by category and hit/miss outcome",
            requests,
        )
    ]
    events = [
        ({"event": name}, count)
        for name, count in sorted(stats.events_snapshot().items())
    ]
    families.append(
        Family.constant(
            "repro_perf_events_total",
            "counter",
            "One-sided perf-layer events (quarantines, injected faults)",
            events,
        )
    )
    return families


def register_perf_collector(registry: MetricsRegistry) -> None:
    """Attach the process-wide perf stats to ``registry`` (pull-time)."""
    registry.register_collector(perf_stats_families)
