"""Abstract syntax for the repro input language.

The input language is a small Java-like imperative language, rich enough
to express every benchmark from the paper (password checks, modular
exponentiation drivers, the STAC fragments, the hand-crafted micro
benchmarks).  Procedures carry ``public`` / ``secret`` qualifiers on their
parameters; these qualifiers seed the taint analysis exactly as JOANA's
source/sink annotations seeded Blazer.

Programs consist of:

* ``extern`` declarations — library procedures (e.g. ``md5`` or the
  ``BigInteger`` arithmetic used by the STAC modPow benchmarks) with no
  body.  Their running-time summaries are supplied separately (see
  :mod:`repro.bounds.summaries`), mirroring Blazer's manually-specified
  bound summaries for interprocedural calls.
* ``proc`` definitions — ordinary procedures with bodies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.util.source import UNKNOWN_SPAN, Span


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


class BaseType(enum.Enum):
    """Scalar base types of the language.

    ``uint`` is the paper's unsigned integer (Example 1 declares
    ``uint low``): it behaves as ``int`` but is known non-negative, which
    the bound analysis exploits when clamping loop lower bounds.
    """

    INT = "int"
    UINT = "uint"
    BYTE = "byte"
    BOOL = "bool"
    VOID = "void"


@dataclass(frozen=True)
class Type:
    """A language type: a scalar base type, optionally an array of it.

    ``Type(BaseType.INT, is_array=True)`` is ``int[]``.  ``byte`` behaves
    as ``int`` arithmetically; string literals have type ``byte[]``.
    """

    base: BaseType
    is_array: bool = False

    def __str__(self) -> str:
        return self.base.value + ("[]" if self.is_array else "")

    @property
    def element(self) -> "Type":
        if not self.is_array:
            raise ValueError("element type of non-array %s" % self)
        return Type(self.base)

    @property
    def is_numeric(self) -> bool:
        return not self.is_array and self.base in (
            BaseType.INT,
            BaseType.UINT,
            BaseType.BYTE,
        )


INT = Type(BaseType.INT)
UINT = Type(BaseType.UINT)
BYTE = Type(BaseType.BYTE)
BOOL = Type(BaseType.BOOL)
VOID = Type(BaseType.VOID)
INT_ARRAY = Type(BaseType.INT, True)
BYTE_ARRAY = Type(BaseType.BYTE, True)


class SecLevel(enum.Enum):
    """Security level of a procedure parameter.

    ``PUBLIC`` data is attacker-controlled/observable ("low" in the
    paper); ``SECRET`` data is confidential ("high").
    """

    PUBLIC = "public"
    SECRET = "secret"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class of all expressions.

    ``ty`` is filled in by the type checker; it is ``None`` on freshly
    parsed trees.
    """

    span: Span = field(default=UNKNOWN_SPAN, kw_only=True)
    ty: Optional[Type] = field(default=None, kw_only=True)


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class BoolLit(Expr):
    value: bool = False


@dataclass
class NullLit(Expr):
    """The ``null`` array reference (used by the login benchmarks)."""


@dataclass
class StrLit(Expr):
    """A string literal; desugars to a ``byte[]`` of its code points."""

    value: str = ""


@dataclass
class Var(Expr):
    name: str = ""


@dataclass
class Index(Expr):
    array: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass
class Len(Expr):
    """``len(a)`` — array length (Java's ``a.length``)."""

    array: Expr = None  # type: ignore[assignment]


class UnOp(enum.Enum):
    NEG = "-"
    NOT = "!"


@dataclass
class Unary(Expr):
    op: UnOp = UnOp.NEG
    operand: Expr = None  # type: ignore[assignment]


class BinOp(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "=="
    NE = "!="
    AND = "&&"
    OR = "||"

    @property
    def is_arith(self) -> bool:
        return self in (BinOp.ADD, BinOp.SUB, BinOp.MUL, BinOp.DIV, BinOp.MOD)

    @property
    def is_compare(self) -> bool:
        return self in (BinOp.LT, BinOp.LE, BinOp.GT, BinOp.GE)

    @property
    def is_equality(self) -> bool:
        return self in (BinOp.EQ, BinOp.NE)

    @property
    def is_logic(self) -> bool:
        return self in (BinOp.AND, BinOp.OR)


@dataclass
class Binary(Expr):
    op: BinOp = BinOp.ADD
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class Call(Expr):
    callee: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class NewArray(Expr):
    """``new int[n]`` / ``new byte[n]`` — zero-initialized array."""

    elem: Type = INT
    size: Expr = None  # type: ignore[assignment]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    span: Span = field(default=UNKNOWN_SPAN, kw_only=True)


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    name: str = ""
    declared: Type = INT
    init: Optional[Expr] = None


@dataclass
class Assign(Stmt):
    """``target = value`` where target is a :class:`Var` or :class:`Index`."""

    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then: Block = field(default_factory=Block)
    orelse: Optional[Block] = None


@dataclass
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Block = field(default_factory=Block)


@dataclass
class For(Stmt):
    """C-style for loop: ``for (init; cond; update) body``.

    ``init`` is a declaration or assignment, ``update`` an assignment.
    ``continue`` inside the body jumps to ``update``.
    """

    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    update: Optional[Stmt] = None
    body: Block = field(default_factory=Block)


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for effect (a call, typically)."""

    expr: Expr = None  # type: ignore[assignment]


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Param:
    name: str
    declared: Type
    level: SecLevel = SecLevel.PUBLIC
    span: Span = UNKNOWN_SPAN

    def __str__(self) -> str:
        return "%s %s: %s" % (self.level.value, self.name, self.declared)


@dataclass
class ProcDecl:
    """A procedure: extern (no body) or defined (with body)."""

    name: str
    params: List[Param]
    ret: Type
    body: Optional[Block] = None
    span: Span = UNKNOWN_SPAN

    @property
    def is_extern(self) -> bool:
        return self.body is None

    def signature(self) -> Tuple[Tuple[Type, ...], Type]:
        return tuple(p.declared for p in self.params), self.ret


@dataclass
class Program:
    """A whole translation unit: a list of procedure declarations."""

    procs: List[ProcDecl] = field(default_factory=list)

    def proc(self, name: str) -> ProcDecl:
        for p in self.procs:
            if p.name == name:
                return p
        raise KeyError(name)

    def defined_procs(self) -> List[ProcDecl]:
        return [p for p in self.procs if not p.is_extern]

    def extern_procs(self) -> List[ProcDecl]:
        return [p for p in self.procs if p.is_extern]
