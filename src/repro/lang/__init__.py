"""Language front-end: AST, lexer, parser, type checker, pretty-printer."""

from repro.lang.parser import parse_expr, parse_program
from repro.lang.pretty import format_expr, format_program
from repro.lang.typecheck import check_program

__all__ = [
    "parse_program",
    "parse_expr",
    "check_program",
    "format_program",
    "format_expr",
]


def frontend(source: str):
    """Parse and type check ``source``, returning the checked Program."""
    return check_program(parse_program(source))
