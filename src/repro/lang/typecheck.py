"""Type checker for the repro input language.

Checks a parsed :class:`~repro.lang.ast.Program` and annotates every
expression node's ``ty`` field in place.  Scoping is lexical; shadowing an
existing binding is rejected (this keeps the AST-to-bytecode compiler's
local-slot assignment trivially correct, mirroring how ``javac`` assigns
slots).

``byte`` and ``int`` are mutually assignable: ``byte`` is modeled as an
integer of restricted range and the restriction is enforced dynamically by
the interpreter, not statically (as in Java, arithmetic on bytes widens to
int).  The ``null`` literal is typed contextually: it may appear wherever
an array is expected, and in equality comparisons against arrays.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.lang import ast
from repro.util.errors import TypeError_
from repro.util.source import Span


def _err(message: str, span: Span) -> TypeError_:
    return TypeError_(message, span.start.line, span.start.column)


def _compatible(expected: ast.Type, actual: ast.Type) -> bool:
    """May a value of ``actual`` type flow into a slot of ``expected`` type?"""
    if expected == actual:
        return True
    if expected.is_numeric and actual.is_numeric:
        return True
    if expected.is_array and actual.is_array and expected.base == actual.base:
        return True
    return False


class _Scope:
    """A chain of lexical scopes mapping names to declared types."""

    def __init__(self, parent: Optional["_Scope"] = None):
        self._parent = parent
        self._bindings: Dict[str, ast.Type] = {}

    def lookup(self, name: str) -> Optional[ast.Type]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope._bindings:
                return scope._bindings[name]
            scope = scope._parent
        return None

    def declare(self, name: str, ty: ast.Type, span: Span) -> None:
        if self.lookup(name) is not None:
            raise _err("redeclaration of %r (shadowing is not allowed)" % name, span)
        self._bindings[name] = ty


class TypeChecker:
    """Checks one :class:`Program`; reusable across programs."""

    def __init__(self, program: ast.Program):
        self._program = program
        self._procs: Dict[str, ast.ProcDecl] = {}

    # -- entry point ---------------------------------------------------------

    def check(self) -> ast.Program:
        for proc in self._program.procs:
            if proc.name in self._procs:
                raise _err("duplicate procedure %r" % proc.name, proc.span)
            for param in proc.params:
                if param.declared == ast.VOID:
                    raise _err("parameter %r has type void" % param.name, param.span)
            self._procs[proc.name] = proc
        for proc in self._program.defined_procs():
            self._check_proc(proc)
        return self._program

    # -- procedures ----------------------------------------------------------

    def _check_proc(self, proc: ast.ProcDecl) -> None:
        scope = _Scope()
        seen: set = set()
        for param in proc.params:
            if param.name in seen:
                raise _err("duplicate parameter %r" % param.name, param.span)
            seen.add(param.name)
            scope.declare(param.name, param.declared, param.span)
        assert proc.body is not None
        self._check_block(proc.body, scope, proc, loop_depth=0)
        if proc.ret != ast.VOID and not _always_returns(proc.body):
            raise _err(
                "procedure %r may finish without returning a %s"
                % (proc.name, proc.ret),
                proc.span,
            )

    # -- statements ----------------------------------------------------------

    def _check_block(
        self, block: ast.Block, scope: _Scope, proc: ast.ProcDecl, loop_depth: int
    ) -> None:
        inner = _Scope(scope)
        for stmt in block.stmts:
            self._check_stmt(stmt, inner, proc, loop_depth)

    def _check_stmt(
        self, stmt: ast.Stmt, scope: _Scope, proc: ast.ProcDecl, loop_depth: int
    ) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, scope, proc, loop_depth)
        elif isinstance(stmt, ast.VarDecl):
            if stmt.declared == ast.VOID:
                raise _err("variable %r has type void" % stmt.name, stmt.span)
            if stmt.init is not None:
                actual = self._check_expr(stmt.init, scope, expected=stmt.declared)
                if not _compatible(stmt.declared, actual):
                    raise _err(
                        "cannot initialize %s %r with %s"
                        % (stmt.declared, stmt.name, actual),
                        stmt.span,
                    )
            scope.declare(stmt.name, stmt.declared, stmt.span)
        elif isinstance(stmt, ast.Assign):
            target_ty = self._check_lvalue(stmt.target, scope)
            actual = self._check_expr(stmt.value, scope, expected=target_ty)
            if not _compatible(target_ty, actual):
                raise _err("cannot assign %s to %s" % (actual, target_ty), stmt.span)
        elif isinstance(stmt, ast.If):
            self._check_cond(stmt.cond, scope)
            self._check_block(stmt.then, scope, proc, loop_depth)
            if stmt.orelse is not None:
                self._check_block(stmt.orelse, scope, proc, loop_depth)
        elif isinstance(stmt, ast.While):
            self._check_cond(stmt.cond, scope)
            self._check_block(stmt.body, scope, proc, loop_depth + 1)
        elif isinstance(stmt, ast.For):
            inner = _Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner, proc, loop_depth)
            if stmt.cond is not None:
                self._check_cond(stmt.cond, inner)
            if stmt.update is not None:
                if not isinstance(stmt.update, (ast.Assign, ast.ExprStmt)):
                    raise _err("for-update must be an assignment or call", stmt.span)
                self._check_stmt(stmt.update, inner, proc, loop_depth)
            self._check_block(stmt.body, inner, proc, loop_depth + 1)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                if proc.ret != ast.VOID:
                    raise _err(
                        "return without a value in %s procedure" % proc.ret, stmt.span
                    )
            else:
                if proc.ret == ast.VOID:
                    raise _err("void procedure returns a value", stmt.span)
                actual = self._check_expr(stmt.value, scope, expected=proc.ret)
                if not _compatible(proc.ret, actual):
                    raise _err(
                        "return type mismatch: expected %s, got %s"
                        % (proc.ret, actual),
                        stmt.span,
                    )
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if loop_depth == 0:
                kw = "break" if isinstance(stmt, ast.Break) else "continue"
                raise _err("%s outside of a loop" % kw, stmt.span)
        elif isinstance(stmt, ast.ExprStmt):
            if not isinstance(stmt.expr, ast.Call):
                raise _err("only calls may be used as statements", stmt.span)
            self._check_expr(stmt.expr, scope, allow_void=True)
        else:  # pragma: no cover - parser produces no other nodes
            raise _err("unknown statement %r" % type(stmt).__name__, stmt.span)

    def _check_cond(self, cond: ast.Expr, scope: _Scope) -> None:
        actual = self._check_expr(cond, scope, expected=ast.BOOL)
        if actual != ast.BOOL:
            raise _err("condition must be bool, got %s" % actual, cond.span)

    def _check_lvalue(self, target: ast.Expr, scope: _Scope) -> ast.Type:
        if isinstance(target, ast.Var):
            ty = scope.lookup(target.name)
            if ty is None:
                raise _err("undeclared variable %r" % target.name, target.span)
            target.ty = ty
            return ty
        if isinstance(target, ast.Index):
            return self._check_expr(target, scope)
        raise _err("invalid assignment target", target.span)

    # -- expressions ----------------------------------------------------------

    def _check_expr(
        self,
        expr: ast.Expr,
        scope: _Scope,
        expected: Optional[ast.Type] = None,
        allow_void: bool = False,
    ) -> ast.Type:
        ty = self._infer(expr, scope, expected)
        if ty == ast.VOID and not allow_void:
            raise _err("void value used in an expression", expr.span)
        expr.ty = ty
        return ty

    def _infer(
        self, expr: ast.Expr, scope: _Scope, expected: Optional[ast.Type]
    ) -> ast.Type:
        if isinstance(expr, ast.IntLit):
            return ast.INT
        if isinstance(expr, ast.BoolLit):
            return ast.BOOL
        if isinstance(expr, ast.StrLit):
            return ast.BYTE_ARRAY
        if isinstance(expr, ast.NullLit):
            if expected is None or not expected.is_array:
                raise _err("cannot infer a type for null here", expr.span)
            return expected
        if isinstance(expr, ast.Var):
            ty = scope.lookup(expr.name)
            if ty is None:
                raise _err("undeclared variable %r" % expr.name, expr.span)
            return ty
        if isinstance(expr, ast.Index):
            arr_ty = self._check_expr(expr.array, scope)
            if not arr_ty.is_array:
                raise _err("indexing a non-array %s" % arr_ty, expr.span)
            idx_ty = self._check_expr(expr.index, scope, expected=ast.INT)
            if not idx_ty.is_numeric:
                raise _err("array index must be numeric, got %s" % idx_ty, expr.span)
            return arr_ty.element
        if isinstance(expr, ast.Len):
            arr_ty = self._check_expr(expr.array, scope)
            if not arr_ty.is_array:
                raise _err("len() of non-array %s" % arr_ty, expr.span)
            return ast.INT
        if isinstance(expr, ast.Unary):
            operand_ty = self._check_expr(
                expr.operand, scope, expected=ast.INT if expr.op is ast.UnOp.NEG else ast.BOOL
            )
            if expr.op is ast.UnOp.NEG:
                if not operand_ty.is_numeric:
                    raise _err("unary - on %s" % operand_ty, expr.span)
                return ast.INT
            if operand_ty != ast.BOOL:
                raise _err("unary ! on %s" % operand_ty, expr.span)
            return ast.BOOL
        if isinstance(expr, ast.Binary):
            return self._infer_binary(expr, scope)
        if isinstance(expr, ast.Call):
            return self._infer_call(expr, scope)
        if isinstance(expr, ast.NewArray):
            size_ty = self._check_expr(expr.size, scope, expected=ast.INT)
            if not size_ty.is_numeric:
                raise _err("array size must be numeric, got %s" % size_ty, expr.span)
            return ast.Type(expr.elem.base, True)
        raise _err("unknown expression %r" % type(expr).__name__, expr.span)

    def _infer_binary(self, expr: ast.Binary, scope: _Scope) -> ast.Type:
        op = expr.op
        if op.is_logic:
            left = self._check_expr(expr.left, scope, expected=ast.BOOL)
            right = self._check_expr(expr.right, scope, expected=ast.BOOL)
            if left != ast.BOOL or right != ast.BOOL:
                raise _err("%s requires bool operands" % op.value, expr.span)
            return ast.BOOL
        if op.is_arith:
            left = self._check_expr(expr.left, scope, expected=ast.INT)
            right = self._check_expr(expr.right, scope, expected=ast.INT)
            if not (left.is_numeric and right.is_numeric):
                raise _err(
                    "%s requires numeric operands, got %s and %s"
                    % (op.value, left, right),
                    expr.span,
                )
            return ast.INT
        if op.is_compare:
            left = self._check_expr(expr.left, scope, expected=ast.INT)
            right = self._check_expr(expr.right, scope, expected=ast.INT)
            if not (left.is_numeric and right.is_numeric):
                raise _err(
                    "%s requires numeric operands, got %s and %s"
                    % (op.value, left, right),
                    expr.span,
                )
            return ast.BOOL
        # Equality: numeric/numeric, bool/bool, array/array, array/null.
        if isinstance(expr.right, ast.NullLit) and not isinstance(expr.left, ast.NullLit):
            left = self._check_expr(expr.left, scope)
            if not left.is_array:
                raise _err("comparing %s against null" % left, expr.span)
            self._check_expr(expr.right, scope, expected=left)
            return ast.BOOL
        if isinstance(expr.left, ast.NullLit) and not isinstance(expr.right, ast.NullLit):
            right = self._check_expr(expr.right, scope)
            if not right.is_array:
                raise _err("comparing null against %s" % right, expr.span)
            self._check_expr(expr.left, scope, expected=right)
            return ast.BOOL
        left = self._check_expr(expr.left, scope)
        right = self._check_expr(expr.right, scope)
        ok = (
            (left.is_numeric and right.is_numeric)
            or (left == ast.BOOL and right == ast.BOOL)
            or (left.is_array and right.is_array and left.base == right.base)
        )
        if not ok:
            raise _err("cannot compare %s with %s" % (left, right), expr.span)
        return ast.BOOL

    def _infer_call(self, expr: ast.Call, scope: _Scope) -> ast.Type:
        proc = self._procs.get(expr.callee)
        if proc is None:
            raise _err("call to undeclared procedure %r" % expr.callee, expr.span)
        if len(expr.args) != len(proc.params):
            raise _err(
                "%r expects %d arguments, got %d"
                % (expr.callee, len(proc.params), len(expr.args)),
                expr.span,
            )
        for arg, param in zip(expr.args, proc.params):
            actual = self._check_expr(arg, scope, expected=param.declared)
            if not _compatible(param.declared, actual):
                raise _err(
                    "argument %r of %r expects %s, got %s"
                    % (param.name, expr.callee, param.declared, actual),
                    arg.span,
                )
        return proc.ret


def _always_returns(stmt: ast.Stmt) -> bool:
    """Conservative must-return analysis used for the missing-return check."""
    if isinstance(stmt, ast.Return):
        return True
    if isinstance(stmt, ast.Block):
        return any(_always_returns(s) for s in stmt.stmts)
    if isinstance(stmt, ast.If):
        return (
            stmt.orelse is not None
            and _always_returns(stmt.then)
            and _always_returns(stmt.orelse)
        )
    return False


def check_program(program: ast.Program) -> ast.Program:
    """Type check ``program`` in place and return it."""
    return TypeChecker(program).check()
