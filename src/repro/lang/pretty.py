"""Pretty-printer: AST back to concrete syntax.

Emits canonical source that reparses to an equal AST (modulo spans and
redundant parentheses); the round-trip is exercised by property tests.
"""

from __future__ import annotations

from typing import List

from repro.lang import ast

# Binding strength for parenthesization, loosest (1) to tightest.
_PRECEDENCE = {
    ast.BinOp.OR: 1,
    ast.BinOp.AND: 2,
    ast.BinOp.EQ: 3,
    ast.BinOp.NE: 3,
    ast.BinOp.LT: 4,
    ast.BinOp.LE: 4,
    ast.BinOp.GT: 4,
    ast.BinOp.GE: 4,
    ast.BinOp.ADD: 5,
    ast.BinOp.SUB: 5,
    ast.BinOp.MUL: 6,
    ast.BinOp.DIV: 6,
    ast.BinOp.MOD: 6,
}
_UNARY_PREC = 7

_ESCAPES = {"\n": "\\n", "\t": "\\t", "\\": "\\\\", '"': '\\"', "\0": "\\0"}


def format_expr(expr: ast.Expr, parent_prec: int = 0) -> str:
    """Render ``expr``, parenthesizing when required by ``parent_prec``."""
    if isinstance(expr, ast.IntLit):
        # Negative literals only arise from constant folding; print as unary.
        return str(expr.value) if expr.value >= 0 else "(-%d)" % -expr.value
    if isinstance(expr, ast.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.NullLit):
        return "null"
    if isinstance(expr, ast.StrLit):
        return '"%s"' % "".join(_ESCAPES.get(c, c) for c in expr.value)
    if isinstance(expr, ast.Var):
        return expr.name
    if isinstance(expr, ast.Index):
        return "%s[%s]" % (format_expr(expr.array, _UNARY_PREC + 1), format_expr(expr.index))
    if isinstance(expr, ast.Len):
        return "len(%s)" % format_expr(expr.array)
    if isinstance(expr, ast.Unary):
        text = expr.op.value + format_expr(expr.operand, _UNARY_PREC)
        return "(%s)" % text if parent_prec > _UNARY_PREC else text
    if isinstance(expr, ast.Binary):
        prec = _PRECEDENCE[expr.op]
        # All binary operators are left-associative: the right child needs
        # parentheses at equal precedence, the left child does not.
        text = "%s %s %s" % (
            format_expr(expr.left, prec),
            expr.op.value,
            format_expr(expr.right, prec + 1),
        )
        return "(%s)" % text if parent_prec > prec else text
    if isinstance(expr, ast.Call):
        return "%s(%s)" % (expr.callee, ", ".join(format_expr(a) for a in expr.args))
    if isinstance(expr, ast.NewArray):
        return "new %s[%s]" % (expr.elem, format_expr(expr.size))
    raise TypeError("unknown expression %r" % type(expr).__name__)


def _format_simple(stmt: ast.Stmt) -> str:
    """Render an assignment/call/var-decl without the trailing semicolon."""
    if isinstance(stmt, ast.VarDecl):
        text = "var %s: %s" % (stmt.name, stmt.declared)
        if stmt.init is not None:
            text += " = %s" % format_expr(stmt.init)
        return text
    if isinstance(stmt, ast.Assign):
        return "%s = %s" % (format_expr(stmt.target), format_expr(stmt.value))
    if isinstance(stmt, ast.ExprStmt):
        return format_expr(stmt.expr)
    raise TypeError("not a simple statement: %r" % type(stmt).__name__)


def _format_stmt(stmt: ast.Stmt, indent: int, out: List[str]) -> None:
    pad = "    " * indent
    if isinstance(stmt, ast.Block):
        out.append(pad + "{")
        for inner in stmt.stmts:
            _format_stmt(inner, indent + 1, out)
        out.append(pad + "}")
    elif isinstance(stmt, (ast.VarDecl, ast.Assign, ast.ExprStmt)):
        out.append(pad + _format_simple(stmt) + ";")
    elif isinstance(stmt, ast.If):
        out.append(pad + "if (%s) {" % format_expr(stmt.cond))
        for inner in stmt.then.stmts:
            _format_stmt(inner, indent + 1, out)
        if stmt.orelse is None:
            out.append(pad + "}")
        else:
            out.append(pad + "} else {")
            for inner in stmt.orelse.stmts:
                _format_stmt(inner, indent + 1, out)
            out.append(pad + "}")
    elif isinstance(stmt, ast.While):
        out.append(pad + "while (%s) {" % format_expr(stmt.cond))
        for inner in stmt.body.stmts:
            _format_stmt(inner, indent + 1, out)
        out.append(pad + "}")
    elif isinstance(stmt, ast.For):
        init = _format_simple(stmt.init) if stmt.init is not None else ""
        cond = format_expr(stmt.cond) if stmt.cond is not None else ""
        update = _format_simple(stmt.update) if stmt.update is not None else ""
        out.append(pad + "for (%s; %s; %s) {" % (init, cond, update))
        for inner in stmt.body.stmts:
            _format_stmt(inner, indent + 1, out)
        out.append(pad + "}")
    elif isinstance(stmt, ast.Return):
        if stmt.value is None:
            out.append(pad + "return;")
        else:
            out.append(pad + "return %s;" % format_expr(stmt.value))
    elif isinstance(stmt, ast.Break):
        out.append(pad + "break;")
    elif isinstance(stmt, ast.Continue):
        out.append(pad + "continue;")
    else:
        raise TypeError("unknown statement %r" % type(stmt).__name__)


def format_proc(proc: ast.ProcDecl) -> str:
    params = ", ".join(str(p) for p in proc.params)
    ret = "" if proc.ret == ast.VOID else ": %s" % proc.ret
    if proc.is_extern:
        return "extern %s(%s)%s;" % (proc.name, params, ret)
    out: List[str] = ["proc %s(%s)%s {" % (proc.name, params, ret)]
    assert proc.body is not None
    for stmt in proc.body.stmts:
        _format_stmt(stmt, 1, out)
    out.append("}")
    return "\n".join(out)


def format_program(program: ast.Program) -> str:
    """Render a whole program as canonical source text."""
    return "\n\n".join(format_proc(p) for p in program.procs) + "\n"
