"""Hand-rolled lexer for the repro input language."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from repro.util.errors import LexError
from repro.util.source import Pos


class TokKind(enum.Enum):
    IDENT = "ident"
    INT = "int-literal"
    STRING = "string-literal"
    PUNCT = "punct"
    KEYWORD = "keyword"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "proc",
        "extern",
        "var",
        "if",
        "else",
        "while",
        "for",
        "return",
        "break",
        "continue",
        "true",
        "false",
        "null",
        "new",
        "len",
        "public",
        "secret",
        "int",
        "uint",
        "byte",
        "bool",
        "void",
    }
)

# Longest-first so that two-character punctuation wins over its prefix.
PUNCTS = [
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ";",
    ":",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "!",
]


@dataclass(frozen=True)
class Token:
    kind: TokKind
    text: str
    pos: Pos

    def __str__(self) -> str:
        if self.kind is TokKind.EOF:
            return "<eof>"
        return self.text


class Lexer:
    """Tokenizes a source string; iterate to obtain :class:`Token` objects.

    Supports ``//`` line comments and ``/* */`` block comments, decimal
    integer literals, and double-quoted string literals with the escapes
    ``\\n``, ``\\t``, ``\\\\``, ``\\"`` and ``\\0``.
    """

    def __init__(self, source: str):
        self._src = source
        self._i = 0
        self._line = 1
        self._col = 1

    # -- low-level cursor ---------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        j = self._i + offset
        return self._src[j] if j < len(self._src) else ""

    def _advance(self) -> str:
        ch = self._src[self._i]
        self._i += 1
        if ch == "\n":
            self._line += 1
            self._col = 1
        else:
            self._col += 1
        return ch

    def _pos(self) -> Pos:
        return Pos(self._line, self._col)

    # -- skipping -----------------------------------------------------------

    def _skip_trivia(self) -> None:
        while self._i < len(self._src):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._i < len(self._src) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._pos()
                self._advance()
                self._advance()
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self._i >= len(self._src):
                        raise LexError(
                            "unterminated block comment", start.line, start.column
                        )
                    self._advance()
                self._advance()
                self._advance()
            else:
                return

    # -- token producers ----------------------------------------------------

    def _lex_string(self) -> Token:
        pos = self._pos()
        self._advance()  # opening quote
        chars: List[str] = []
        escapes = {"n": "\n", "t": "\t", "\\": "\\", '"': '"', "0": "\0"}
        while True:
            if self._i >= len(self._src):
                raise LexError("unterminated string literal", pos.line, pos.column)
            ch = self._advance()
            if ch == '"':
                break
            if ch == "\\":
                esc = self._advance()
                if esc not in escapes:
                    raise LexError(
                        "unknown escape \\%s" % esc, self._line, self._col
                    )
                chars.append(escapes[esc])
            elif ch == "\n":
                raise LexError("newline in string literal", pos.line, pos.column)
            else:
                chars.append(ch)
        return Token(TokKind.STRING, "".join(chars), pos)

    def tokens(self) -> Iterator[Token]:
        while True:
            self._skip_trivia()
            pos = self._pos()
            if self._i >= len(self._src):
                yield Token(TokKind.EOF, "", pos)
                return
            ch = self._peek()
            if ch.isdigit():
                start = self._i
                while self._peek().isdigit():
                    self._advance()
                if self._peek().isalpha() or self._peek() == "_":
                    raise LexError(
                        "identifier cannot start with a digit", pos.line, pos.column
                    )
                yield Token(TokKind.INT, self._src[start : self._i], pos)
            elif ch.isalpha() or ch == "_":
                start = self._i
                while self._peek().isalnum() or self._peek() == "_":
                    self._advance()
                text = self._src[start : self._i]
                kind = TokKind.KEYWORD if text in KEYWORDS else TokKind.IDENT
                yield Token(kind, text, pos)
            elif ch == '"':
                yield self._lex_string()
            else:
                for p in PUNCTS:
                    if self._src.startswith(p, self._i):
                        for _ in p:
                            self._advance()
                        yield Token(TokKind.PUNCT, p, pos)
                        break
                else:
                    raise LexError("unexpected character %r" % ch, pos.line, pos.column)


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source`` fully; the last token is always EOF."""
    return list(Lexer(source).tokens())
