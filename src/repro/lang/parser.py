"""Recursive-descent parser for the repro input language.

Grammar sketch (if/while/for bodies must be brace-delimited blocks, which
removes the dangling-else ambiguity)::

    program   := decl*
    decl      := "extern" ident "(" params? ")" (":" type)? ";"
               | "proc"   ident "(" params? ")" (":" type)? block
    param     := ("public" | "secret")? ident ":" type
    type      := ("int" | "byte" | "bool" | "void") ("[" "]")?
    stmt      := "var" ident ":" type ("=" expr)? ";"
               | "if" "(" expr ")" block ("else" (block | if-stmt))?
               | "while" "(" expr ")" block
               | "for" "(" for-init? ";" expr? ";" simple? ")" block
               | "return" expr? ";" | "break" ";" | "continue" ";"
               | block | simple ";"
    simple    := lvalue "=" expr | expr

Expression precedence (loosest to tightest): ``||``, ``&&``, equality,
relational, additive, multiplicative, unary, postfix indexing.
"""

from __future__ import annotations

from typing import List, Optional

from repro.lang import ast
from repro.lang.lexer import TokKind, Token, tokenize
from repro.util.errors import ParseError
from repro.util.source import Span


class Parser:
    def __init__(self, source: str):
        self._toks = tokenize(source)
        self._i = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        j = min(self._i + offset, len(self._toks) - 1)
        return self._toks[j]

    def _next(self) -> Token:
        tok = self._peek()
        if tok.kind is not TokKind.EOF:
            self._i += 1
        return tok

    def _check(self, text: str) -> bool:
        tok = self._peek()
        return tok.kind in (TokKind.PUNCT, TokKind.KEYWORD) and tok.text == text

    def _accept(self, text: str) -> bool:
        if self._check(text):
            self._next()
            return True
        return False

    def _expect(self, text: str) -> Token:
        tok = self._peek()
        if not self._check(text):
            raise ParseError(
                "expected %r but found %r" % (text, str(tok)),
                tok.pos.line,
                tok.pos.column,
            )
        return self._next()

    def _expect_ident(self) -> Token:
        tok = self._peek()
        if tok.kind is not TokKind.IDENT:
            raise ParseError(
                "expected identifier but found %r" % str(tok),
                tok.pos.line,
                tok.pos.column,
            )
        return self._next()

    def _span_from(self, tok: Token) -> Span:
        return Span(tok.pos, self._peek().pos)

    # -- declarations -------------------------------------------------------

    def parse_program(self) -> ast.Program:
        procs: List[ast.ProcDecl] = []
        while self._peek().kind is not TokKind.EOF:
            procs.append(self._parse_decl())
        return ast.Program(procs)

    def _parse_decl(self) -> ast.ProcDecl:
        start = self._peek()
        if self._accept("extern"):
            name = self._expect_ident().text
            params = self._parse_params()
            ret = self._parse_ret_type()
            self._expect(";")
            return ast.ProcDecl(name, params, ret, None, self._span_from(start))
        if self._accept("proc"):
            name = self._expect_ident().text
            params = self._parse_params()
            ret = self._parse_ret_type()
            body = self._parse_block()
            return ast.ProcDecl(name, params, ret, body, self._span_from(start))
        raise ParseError(
            "expected 'proc' or 'extern' but found %r" % str(start),
            start.pos.line,
            start.pos.column,
        )

    def _parse_params(self) -> List[ast.Param]:
        self._expect("(")
        params: List[ast.Param] = []
        if not self._check(")"):
            params.append(self._parse_param())
            while self._accept(","):
                params.append(self._parse_param())
        self._expect(")")
        return params

    def _parse_param(self) -> ast.Param:
        start = self._peek()
        level = ast.SecLevel.PUBLIC
        if self._accept("secret"):
            level = ast.SecLevel.SECRET
        else:
            self._accept("public")
        name = self._expect_ident().text
        self._expect(":")
        ty = self._parse_type()
        return ast.Param(name, ty, level, self._span_from(start))

    def _parse_ret_type(self) -> ast.Type:
        if self._accept(":"):
            return self._parse_type()
        return ast.VOID

    def _parse_type(self) -> ast.Type:
        tok = self._peek()
        for base in ast.BaseType:
            if self._accept(base.value):
                is_array = False
                if self._accept("["):
                    self._expect("]")
                    is_array = True
                if base is ast.BaseType.VOID and is_array:
                    raise ParseError("void[] is not a type", tok.pos.line, tok.pos.column)
                return ast.Type(base, is_array)
        raise ParseError(
            "expected a type but found %r" % str(tok), tok.pos.line, tok.pos.column
        )

    # -- statements ----------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        start = self._expect("{")
        stmts: List[ast.Stmt] = []
        while not self._check("}"):
            stmts.append(self._parse_stmt())
        self._expect("}")
        return ast.Block(stmts, span=self._span_from(start))

    def _parse_stmt(self) -> ast.Stmt:
        tok = self._peek()
        if self._check("{"):
            return self._parse_block()
        if self._check("var"):
            stmt = self._parse_var_decl()
            self._expect(";")
            return stmt
        if self._check("if"):
            return self._parse_if()
        if self._check("while"):
            self._next()
            self._expect("(")
            cond = self.parse_expr()
            self._expect(")")
            body = self._parse_block()
            return ast.While(cond, body, span=self._span_from(tok))
        if self._check("for"):
            return self._parse_for()
        if self._accept("return"):
            value = None if self._check(";") else self.parse_expr()
            self._expect(";")
            return ast.Return(value, span=self._span_from(tok))
        if self._accept("break"):
            self._expect(";")
            return ast.Break(span=self._span_from(tok))
        if self._accept("continue"):
            self._expect(";")
            return ast.Continue(span=self._span_from(tok))
        stmt = self._parse_simple()
        self._expect(";")
        return stmt

    def _parse_var_decl(self) -> ast.VarDecl:
        start = self._expect("var")
        name = self._expect_ident().text
        self._expect(":")
        ty = self._parse_type()
        init = None
        if self._accept("="):
            init = self.parse_expr()
        return ast.VarDecl(name, ty, init, span=self._span_from(start))

    def _parse_if(self) -> ast.If:
        start = self._expect("if")
        self._expect("(")
        cond = self.parse_expr()
        self._expect(")")
        then = self._parse_block()
        orelse: Optional[ast.Block] = None
        if self._accept("else"):
            if self._check("if"):
                nested = self._parse_if()
                orelse = ast.Block([nested], span=nested.span)
            else:
                orelse = self._parse_block()
        return ast.If(cond, then, orelse, span=self._span_from(start))

    def _parse_for(self) -> ast.For:
        start = self._expect("for")
        self._expect("(")
        init: Optional[ast.Stmt] = None
        if not self._check(";"):
            init = self._parse_var_decl() if self._check("var") else self._parse_simple()
        self._expect(";")
        cond = None if self._check(";") else self.parse_expr()
        self._expect(";")
        update = None if self._check(")") else self._parse_simple()
        self._expect(")")
        body = self._parse_block()
        return ast.For(init, cond, update, body, span=self._span_from(start))

    def _parse_simple(self) -> ast.Stmt:
        start = self._peek()
        expr = self.parse_expr()
        if self._accept("="):
            if not isinstance(expr, (ast.Var, ast.Index)):
                raise ParseError(
                    "assignment target must be a variable or array element",
                    start.pos.line,
                    start.pos.column,
                )
            value = self.parse_expr()
            return ast.Assign(expr, value, span=self._span_from(start))
        return ast.ExprStmt(expr, span=self._span_from(start))

    # -- expressions ---------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._check("||"):
            tok = self._next()
            right = self._parse_and()
            left = ast.Binary(ast.BinOp.OR, left, right, span=Span.at(tok.pos))
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_eq()
        while self._check("&&"):
            tok = self._next()
            right = self._parse_eq()
            left = ast.Binary(ast.BinOp.AND, left, right, span=Span.at(tok.pos))
        return left

    def _parse_eq(self) -> ast.Expr:
        left = self._parse_rel()
        while self._check("==") or self._check("!="):
            tok = self._next()
            op = ast.BinOp.EQ if tok.text == "==" else ast.BinOp.NE
            right = self._parse_rel()
            left = ast.Binary(op, left, right, span=Span.at(tok.pos))
        return left

    def _parse_rel(self) -> ast.Expr:
        left = self._parse_add()
        rel_ops = {"<": ast.BinOp.LT, "<=": ast.BinOp.LE, ">": ast.BinOp.GT, ">=": ast.BinOp.GE}
        while any(self._check(t) for t in rel_ops):
            tok = self._next()
            right = self._parse_add()
            left = ast.Binary(rel_ops[tok.text], left, right, span=Span.at(tok.pos))
        return left

    def _parse_add(self) -> ast.Expr:
        left = self._parse_mul()
        while self._check("+") or self._check("-"):
            tok = self._next()
            op = ast.BinOp.ADD if tok.text == "+" else ast.BinOp.SUB
            right = self._parse_mul()
            left = ast.Binary(op, left, right, span=Span.at(tok.pos))
        return left

    def _parse_mul(self) -> ast.Expr:
        left = self._parse_unary()
        mul_ops = {"*": ast.BinOp.MUL, "/": ast.BinOp.DIV, "%": ast.BinOp.MOD}
        while any(self._check(t) for t in mul_ops):
            tok = self._next()
            right = self._parse_unary()
            left = ast.Binary(mul_ops[tok.text], left, right, span=Span.at(tok.pos))
        return left

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if self._accept("-"):
            return ast.Unary(ast.UnOp.NEG, self._parse_unary(), span=Span.at(tok.pos))
        if self._accept("!"):
            return ast.Unary(ast.UnOp.NOT, self._parse_unary(), span=Span.at(tok.pos))
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while self._accept("["):
            index = self.parse_expr()
            self._expect("]")
            expr = ast.Index(expr, index, span=expr.span)
        return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        span = Span.at(tok.pos)
        if tok.kind is TokKind.INT:
            self._next()
            return ast.IntLit(int(tok.text), span=span)
        if tok.kind is TokKind.STRING:
            self._next()
            return ast.StrLit(tok.text, span=span)
        if self._accept("true"):
            return ast.BoolLit(True, span=span)
        if self._accept("false"):
            return ast.BoolLit(False, span=span)
        if self._accept("null"):
            return ast.NullLit(span=span)
        if self._accept("len"):
            self._expect("(")
            arr = self.parse_expr()
            self._expect(")")
            return ast.Len(arr, span=span)
        if self._accept("new"):
            ty = self._parse_scalar_type()
            self._expect("[")
            size = self.parse_expr()
            self._expect("]")
            return ast.NewArray(ty, size, span=span)
        if self._accept("("):
            inner = self.parse_expr()
            self._expect(")")
            return inner
        if tok.kind is TokKind.IDENT:
            self._next()
            if self._accept("("):
                args: List[ast.Expr] = []
                if not self._check(")"):
                    args.append(self.parse_expr())
                    while self._accept(","):
                        args.append(self.parse_expr())
                self._expect(")")
                return ast.Call(tok.text, args, span=span)
            return ast.Var(tok.text, span=span)
        raise ParseError(
            "expected an expression but found %r" % str(tok),
            tok.pos.line,
            tok.pos.column,
        )

    def _parse_scalar_type(self) -> ast.Type:
        tok = self._peek()
        for base in (ast.BaseType.INT, ast.BaseType.BYTE, ast.BaseType.BOOL):
            if self._accept(base.value):
                return ast.Type(base)
        raise ParseError(
            "expected an array element type (int/byte/bool) but found %r" % str(tok),
            tok.pos.line,
            tok.pos.column,
        )


def parse_program(source: str) -> ast.Program:
    """Parse a whole translation unit."""
    return Parser(source).parse_program()


def parse_expr(source: str) -> ast.Expr:
    """Parse a single expression (used by tests)."""
    parser = Parser(source)
    expr = parser.parse_expr()
    tok = parser._peek()
    if tok.kind is not TokKind.EOF:
        raise ParseError(
            "trailing input after expression: %r" % str(tok),
            tok.pos.line,
            tok.pos.column,
        )
    return expr
