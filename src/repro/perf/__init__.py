"""Performance layer: content-addressed caching and worker-pool fan-out.

Everything here is behaviour-preserving: with the layer enabled the
analyses return byte-identical results, just faster.  Set the
environment variable ``REPRO_PERF=0`` (or call
:func:`repro.perf.runtime.set_enabled`) to fall back to the unmemoized
seed engine.  See ``docs/PERFORMANCE.md`` for the design.
"""

from repro.perf.runtime import (
    STATS,
    PerfStats,
    clear_caches,
    enabled,
    override,
    set_enabled,
)
from repro.perf.fingerprint import (
    cfg_fingerprint,
    dfa_canonical,
    dfa_fingerprint,
    trail_fingerprint,
)
from repro.perf.cache import AnalysisCache
from repro.perf.parallel import (
    default_jobs,
    parallel_map,
    process_pool_usable,
    resolve_jobs,
    thread_map,
    thread_map_chunked,
)
from repro.perf.pool import WarmPool, effective_workers, shared_pool

__all__ = [
    "STATS",
    "PerfStats",
    "clear_caches",
    "enabled",
    "override",
    "set_enabled",
    "cfg_fingerprint",
    "dfa_canonical",
    "dfa_fingerprint",
    "trail_fingerprint",
    "AnalysisCache",
    "default_jobs",
    "parallel_map",
    "process_pool_usable",
    "resolve_jobs",
    "thread_map",
    "thread_map_chunked",
    "WarmPool",
    "effective_workers",
    "shared_pool",
]
