"""The incremental re-analysis plane: refinement-delta-directed reuse.

When REFINEPARTITION splits a parent trail, each child differs from the
parent by exactly one perturbed constructor (the branch recorded in the
child's :class:`~repro.trails.trail.RefinementDelta`).  Everything the
bound analysis computed for the parent that the perturbation cannot
reach — per-loop iteration bounds, seeded transition relations, whole
unrestricted fallback bounds, even entire trail-keyed bound results when
a sibling re-derives an equal language — is a reuse candidate.

Soundness model (docs/PERFORMANCE.md): reuse is **content-keyed, never
trusted**.  The delta only *directs* the probe — which parent
computation to consult and which loops to skip as dirty; whether a
candidate is actually served is decided by an exact canonical content
key (the same "revalidated by fingerprint" discipline as the PR-6
``bounds.transition`` memo).  A key mismatch silently recomputes, so
the incremental path is digest-identical to the from-scratch path by
construction; the differential battery in
``tests/properties/test_incremental_props.py`` enforces this at every
refinement round, and the ``refine.delta`` fault site proves the
battery would catch a violation.

Three tiers live here:

* the **parent loop-artifact index** (``refine.lineage``): per-trail
  iteration-bound artifacts published under the trail's *delta-lineage*
  fingerprint, probed by its children.  Lineage keying (not language
  keying) is deliberate: two trails can denote the same language via
  different split routes, and a reused fixpoint must never be served
  for a structurally different split without full content revalidation;
* the **global iteration-bound memo** (``bounds.iterbound``): the same
  artifacts keyed purely by content, for cross-driver reuse;
* the **shared bound tier** (``bound.shared``): whole
  :class:`~repro.bounds.analysis.BoundResult` objects shared across
  driver instances with identical analysis scope, keyed by the trail's
  content fingerprint *plus* the trail DFA's exact state structure
  (results embed raw DFA state numbers in their product-node
  invariants, so an isomorphism-class key would mislabel states).

Everything in this module is inert unless
:func:`repro.perf.runtime.incremental_enabled` — the ``REPRO_PERF``
sub-flag ``REPRO_PERF_INCREMENTAL`` — is on, and every caller
additionally bypasses it for budget-armed analyses (degraded results
must never be reused, and memo hits would skip budget checkpoints).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.perf import runtime

# Memo-table names (see PerfStats for the matching counter categories).
LINEAGE_TABLE = "refine.lineage"
ITERBOUND_TABLE = "bounds.iterbound"
SHARED_BOUND_TABLE = "bound.shared"
UNRESTRICTED_TABLE = "bounds.unrestricted"
PROC_BOUNDS_TABLE = "bounds.proc"

# The fault site that corrupts a reused parent fixpoint (REPRO_FAULTS
# spec ``refine.delta:corrupt``): fires on the serve path of
# :func:`lookup_iterbound` for split children, replacing the served
# iteration bound with a zero-iteration claim.  This collapses the
# child's running time, so both the equivalence sweep (digest mismatch
# vs from-scratch) and diffcheck's soundness oracle must flag it — the
# sabotage self-test of the differential battery.
FAULT_SITE = "refine.delta"


def _corrupted_iterbound():
    from repro.bounds.lemmas import IterationBound
    from repro.bounds.cost import Poly

    return IterationBound(lower=Poly.ZERO, upper=Poly.ZERO, exact=True)


def _maybe_corrupt(bound, fire_key: str):
    from repro.resilience import faults

    if faults.maybe_fire(FAULT_SITE, key=fire_key) == "corrupt":
        return _corrupted_iterbound()
    return bound


# -- per-loop iteration bounds --------------------------------------------------


def delta_touches(delta, blocks) -> bool:
    """Does the split's perturbed constructor touch this block set?

    A loop whose body contains the split branch (or either endpoint of
    the decided edge) is *dirty*: the occurrence constraint reshapes its
    product subgraph or its reachable invariants, so the parent artifact
    is presumed stale and the fixpoint re-runs.  Loops structurally
    disjoint from the perturbation are reuse candidates.
    """
    return (
        delta.block in blocks
        or delta.edge[0] in blocks
        or delta.edge[1] in blocks
    )


def lookup_iterbound(delta, key: tuple, fire_key: str):
    """Probe the reuse tiers for one loop's iteration bound.

    ``delta`` is the probing analysis's refinement delta (None for root
    trails).  Children probe their parent's lineage-indexed artifacts
    first (counted as ``refine.reuse``), then the global content-keyed
    memo; either hit is revalidated *by the key itself* — the key is an
    exact canonical encoding of every input the lemma matcher reads.
    Returns None on miss.
    """
    if delta is not None:
        parent = runtime.memo_table(LINEAGE_TABLE).get(delta.parent_lineage)
        bound = None if parent is None else parent.get(key)
        if bound is not None:
            runtime.STATS.hit("refine.reuse")
            return _maybe_corrupt(bound, fire_key)
        runtime.STATS.miss("refine.reuse")
    bound = runtime.memo_table(ITERBOUND_TABLE).get(key)
    if bound is not None:
        runtime.STATS.hit(ITERBOUND_TABLE)
        if delta is not None:
            return _maybe_corrupt(bound, fire_key)
        return bound
    runtime.STATS.miss(ITERBOUND_TABLE)
    return None


def store_iterbound(key: tuple, bound) -> None:
    runtime.memo_table(ITERBOUND_TABLE)[key] = bound


def publish_loop_artifacts(trail, artifacts: Dict[tuple, object]) -> None:
    """Index a finished analysis's per-loop artifacts by the trail's
    delta-lineage fingerprint, for its future children to probe."""
    if not artifacts:
        return
    index = runtime.memo_table(LINEAGE_TABLE)
    lineage = trail.lineage_fingerprint()
    existing = index.get(lineage)
    if existing is None:
        index[lineage] = dict(artifacts)
    else:
        existing.update(artifacts)


def lineage_artifacts(lineage: str) -> Optional[Dict[tuple, object]]:
    """The published artifact map of one lineage (tests/introspection)."""
    return runtime.memo_table(LINEAGE_TABLE).get(lineage)


# -- whole bound results shared across drivers ----------------------------------


def shared_bound_key(scope: tuple, trail) -> tuple:
    from repro.perf.fingerprint import dfa_structure_key

    return scope + (trail.fingerprint(), dfa_structure_key(trail.dfa))


def lookup_shared_bound(key: tuple):
    result = runtime.memo_table(SHARED_BOUND_TABLE).get(key)
    if result is not None:
        runtime.STATS.hit(SHARED_BOUND_TABLE)
        return result
    runtime.STATS.miss(SHARED_BOUND_TABLE)
    return None


def store_shared_bound(key: tuple, result) -> None:
    # Degraded ⊤ substitutes describe a budget, not the trail — never
    # share them (mirrors the AnalysisCache disk-tier rule).
    if getattr(result, "degraded", False):
        return
    runtime.memo_table(SHARED_BOUND_TABLE)[key] = result


# -- interprocedural bound maps -------------------------------------------------


def proc_bounds_key(proc_bounds) -> tuple:
    """Canonical hashable key of an interprocedural bound map.

    ``CostBound``/``Poly`` are content-hashable, so the map keys by its
    full semantic content — two drivers whose callee analyses produced
    different bounds can never alias.
    """
    return tuple(
        (name, pb.bound, tuple(pb.param_symbols))
        for name, pb in sorted(proc_bounds.items())
    )
