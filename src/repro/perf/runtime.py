"""Process-wide switchboard of the perf layer: the enable flag, the
hit/miss statistics, and the registry of memo tables.

This module is a dependency leaf (it imports nothing from ``repro``) so
that the hot modules — the zone domain, the transfer functions, the
driver — can consult it without import cycles.

Design rules
------------
* **One flag.**  ``enabled()`` gates every memo and fast path of the
  perf layer at once.  With the flag off the tool behaves exactly like
  the unmemoized seed engine — that configuration is the "serial"
  baseline ``benchmarks/bench_perf.py`` measures speedups against.
* **Counters are per process.**  ``STATS`` accumulates hits/misses per
  category; callers that want a per-task view (the Blazer driver)
  snapshot before and diff after.
* **Tables are bounded.**  Every memo table obtained from
  :func:`memo_table` is wholesale-cleared when it exceeds
  ``TABLE_LIMIT`` entries — analyses are small, so this is a backstop
  against pathological long-running processes, not an LRU policy.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, Tuple

# Hard cap per memo table; crossing it clears the table (cheap, rare).
TABLE_LIMIT = 100_000

_ENABLED = os.environ.get("REPRO_PERF", "1") not in ("0", "false", "off")

# Sub-flag of the perf layer: the incremental re-analysis plane
# (docs/PERFORMANCE.md).  ``REPRO_PERF_INCREMENTAL=0`` keeps every
# PR-1..6 memo active but disables the delta-directed refinement reuse
# (parent loop artifacts, the shared cross-driver bound tier, the
# interned split derivations) — the exact pre-incremental engine.
# Nested under the main flag: incremental reuse is never active when
# the perf layer itself is off.
_INCREMENTAL = os.environ.get("REPRO_PERF_INCREMENTAL", "1") not in (
    "0",
    "false",
    "off",
)


def enabled() -> bool:
    """Is the perf layer (caching + fast paths) active in this process?"""
    return _ENABLED


def set_enabled(flag: bool) -> None:
    global _ENABLED
    _ENABLED = bool(flag)


def incremental_enabled() -> bool:
    """Is the incremental re-analysis plane active?  Implies ``enabled()``."""
    return _ENABLED and _INCREMENTAL


def set_incremental(flag: bool) -> None:
    global _INCREMENTAL
    _INCREMENTAL = bool(flag)


@contextmanager
def override(flag: bool) -> Iterator[None]:
    """Temporarily force the perf layer on or off."""
    global _ENABLED
    saved = _ENABLED
    _ENABLED = bool(flag)
    try:
        yield
    finally:
        _ENABLED = saved


@contextmanager
def override_incremental(flag: bool) -> Iterator[None]:
    """Temporarily force the incremental sub-flag on or off."""
    global _INCREMENTAL
    saved = _INCREMENTAL
    _INCREMENTAL = bool(flag)
    try:
        yield
    finally:
        _INCREMENTAL = saved


class PerfStats:
    """Hit/miss counters, one pair per cache category.

    Categories in use: ``zone.close``, ``bounds.transition`` (seeded
    loop transition relations), ``trail.regex`` (interned state
    eliminations), ``transfer`` (block effects), ``cfg_meta`` (input
    symbols / levels), ``taint``, ``bound`` (trail-keyed bound
    results).  Zone ``join``/``leq`` use zero-key single-slot identity
    memos on the states themselves and report no counters.

    The incremental plane (docs/PERFORMANCE.md) adds: ``refine.reuse``
    (parent loop artifacts revalidated and served to a split child),
    ``bounds.iterbound`` (whole iteration-bound results),
    ``bounds.unrestricted`` (whole-CFG fallback bounds),
    ``bounds.proc`` (interprocedural bound maps), ``bound.shared``
    (the cross-driver bound tier) and ``refine.split`` (interned DFA
    split derivations), plus the one-sided event ``refine.dirty``
    (loops skipped as touched by the split constructor).
    """

    def __init__(self) -> None:
        self._counts: Dict[str, list] = {}
        self._events: Dict[str, int] = {}

    def hit(self, category: str) -> None:
        self._counts.setdefault(category, [0, 0])[0] += 1

    def miss(self, category: str) -> None:
        self._counts.setdefault(category, [0, 0])[1] += 1

    def event(self, name: str, n: int = 1) -> None:
        """Count a one-sided event (quarantines, injected faults, …) —
        things with no hit/miss duality."""
        self._events[name] = self._events.get(name, 0) + n

    def events_snapshot(self) -> Dict[str, int]:
        return dict(self._events)

    def reset_event(self, name: str) -> None:
        """Zero one event counter (e.g. ``cache.quarantine`` when the
        cache that was quarantining entries has been cleared)."""
        self._events.pop(name, None)

    def discount_event(self, name: str, n: int) -> None:
        """Subtract one contributor's share from an event counter,
        dropping it entirely when nothing remains.  This is how a
        cleared cache retracts *its own* quarantines from the shared
        process-wide counter without zeroing what other cache instances
        contributed."""
        remaining = self._events.get(name, 0) - n
        if remaining > 0:
            self._events[name] = remaining
        else:
            self._events.pop(name, None)

    def events_delta(self, before: Dict[str, int]) -> Dict[str, int]:
        """Per-event counts accumulated since ``before``."""
        out: Dict[str, int] = {}
        for name, count in self._events.items():
            prior = before.get(name, 0)
            if count != prior:
                out[name] = count - prior
        return out

    @property
    def hits(self) -> int:
        return sum(pair[0] for pair in self._counts.values())

    @property
    def misses(self) -> int:
        return sum(pair[1] for pair in self._counts.values())

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> Dict[str, Tuple[int, int]]:
        return {cat: (pair[0], pair[1]) for cat, pair in self._counts.items()}

    def delta(self, before: Dict[str, Tuple[int, int]]) -> Dict[str, Tuple[int, int]]:
        """Per-category (hits, misses) accumulated since ``before``."""
        out: Dict[str, Tuple[int, int]] = {}
        for cat, (h, m) in self.snapshot().items():
            h0, m0 = before.get(cat, (0, 0))
            if h != h0 or m != m0:
                out[cat] = (h - h0, m - m0)
        return out

    def clear(self) -> None:
        self._counts.clear()
        self._events.clear()


STATS = PerfStats()

_TABLES: Dict[str, dict] = {}


def memo_table(name: str) -> dict:
    """A named process-wide memo table (created on first use)."""
    table = _TABLES.get(name)
    if table is None:
        table = _TABLES[name] = {}
    elif len(table) > TABLE_LIMIT:
        table.clear()
    return table


def clear_caches() -> None:
    """Drop every memo table (used by tests and long-lived servers)."""
    for table in _TABLES.values():
        table.clear()


def cfg_memo(cfg) -> dict:
    """The memo dict attached to one CFG object (lazily created).

    Attaching to the CFG itself (rather than keying a global table by
    ``id(cfg)``) ties the memo's lifetime to the graph's and rules out
    id-reuse aliasing after garbage collection.
    """
    memo = getattr(cfg, "_perf_memo", None)
    if memo is None:
        memo = {}
        cfg._perf_memo = memo
    elif len(memo) > TABLE_LIMIT:
        memo.clear()
    return memo
