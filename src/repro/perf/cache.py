"""The analysis cache: trail-keyed bound results and derived structures.

One :class:`AnalysisCache` is owned by each :class:`~repro.core.blazer.
Blazer` instance, so its entries are implicitly keyed by that driver's
fixed configuration (numeric domain, summary registry, interprocedural
bounds) and only the *varying* inputs — the trail and its CFG — appear
in the key.  Keys are the content fingerprints of
:mod:`repro.perf.fingerprint`, which makes the cache robust to the
driver re-deriving an equal trail through a different refinement route
(the common case in the attack phase, where occurrence splits on the
two edges of one branch produce pairwise-equal sibling languages).

Invalidation: there is none, by construction — every cached value is a
pure function of its content-addressed key, and the cache dies with its
driver.  ``repro.perf.runtime.clear_caches()`` clears the process-wide
memo tables (domain closures, transfer effects) the same way.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.perf import runtime
from repro.perf.fingerprint import trail_fingerprint


class AnalysisCache:
    """Memoized analysis results for one driver instance."""

    def __init__(self, stats: runtime.PerfStats = runtime.STATS):
        self._stats = stats
        self._bounds: Dict[str, object] = {}
        self._regions: Dict[tuple, object] = {}

    # -- trail-keyed bound results ------------------------------------------------

    def bound_result(self, trail, compute: Callable[[], object]):
        """The memoized ``BoundAnalysis.compute()`` result for ``trail``.

        Falls through to ``compute()`` (uncached) when the perf layer is
        disabled.
        """
        if not runtime.enabled():
            return compute()
        # Trail objects cache their own fingerprint; fall back to the
        # free function for bare trail-likes.
        fp = getattr(trail, "fingerprint", None)
        key = fp() if fp is not None else trail_fingerprint(trail)
        cached = self._bounds.get(key)
        if cached is not None:
            self._stats.hit("bound")
            return cached
        self._stats.miss("bound")
        result = compute()
        self._bounds[key] = result
        return result

    # -- generic derived structures -----------------------------------------------

    def derived(self, category: str, key: tuple, compute: Callable[[], object]):
        """Memoize any derived structure under ``(category, key)``."""
        if not runtime.enabled():
            return compute()
        full_key = (category,) + key
        if full_key in self._regions:
            self._stats.hit(category)
            return self._regions[full_key]
        self._stats.miss(category)
        result = compute()
        self._regions[full_key] = result
        return result

    def clear(self) -> None:
        self._bounds.clear()
        self._regions.clear()

    def __len__(self) -> int:
        return len(self._bounds) + len(self._regions)
