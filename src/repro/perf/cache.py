"""The analysis cache: trail-keyed bound results and derived structures.

One :class:`AnalysisCache` is owned by each :class:`~repro.core.blazer.
Blazer` instance, so its entries are implicitly keyed by that driver's
fixed configuration (numeric domain, summary registry, interprocedural
bounds) and only the *varying* inputs — the trail and its CFG — appear
in the key.  Keys are the content fingerprints of
:mod:`repro.perf.fingerprint`, which makes the cache robust to the
driver re-deriving an equal trail through a different refinement route
(the common case in the attack phase, where occurrence splits on the
two edges of one branch produce pairwise-equal sibling languages).

Invalidation: there is none, by construction — every cached value is a
pure function of its content-addressed key, and the cache dies with its
driver.  ``repro.perf.runtime.clear_caches()`` clears the process-wide
memo tables (domain closures, transfer effects) the same way.

Self-healing (docs/RESILIENCE.md): every entry is stored alongside a
checksum of its rendered content, verified on read.  A mismatch —
memory corruption, a buggy mutation of a supposedly-immutable cached
object, or an injected ``cache.get:corrupt`` fault — **quarantines**
the entry: it is evicted, counted (``cache.quarantine`` on
:data:`repro.perf.runtime.STATS`), and transparently recomputed.  A
corrupt cache can therefore cost time but never wrong answers.
"""

from __future__ import annotations

import hashlib
import logging
from typing import Callable, Dict, Optional, Tuple

from repro.obs.trace import span as trace_span
from repro.perf import runtime
from repro.perf.disktier import DiskTier
from repro.perf.fingerprint import trail_fingerprint
from repro.resilience import faults
from repro.util.errors import CacheCorruption

log = logging.getLogger(__name__)


def entry_digest(value: object) -> str:
    """Checksum of an entry's rendered content.

    ``str()`` is the cheapest stable rendering the cached objects offer
    (BoundResult, CostBound and the derived structures all render their
    semantic content); hashing it costs microseconds against analysis
    steps that cost milliseconds.
    """
    return hashlib.sha1(str(value).encode("utf-8", "replace")).hexdigest()


class AnalysisCache:
    """Memoized analysis results for one driver instance.

    ``disk`` attaches an optional persistent tier below the in-memory
    one (docs/SERVICE.md): trail-keyed bound results missing from
    memory are looked up there (category ``bound.disk``) before being
    recomputed, and fresh results are written through, so they survive
    the driver — and the process — that computed them.

    The in-memory tiers need no scope: they die with the driver, whose
    configuration is fixed.  The *disk* tier is shared across drivers,
    configurations, and programs, and a bound result is a function of
    the abstract domain, the summary registry, and every callee body —
    not just its trail.  ``disk_scope`` (the
    :func:`~repro.perf.fingerprint.analysis_scope_fingerprint` of the
    owning driver) therefore namespaces every persisted entry; an entry
    written under one scope is invisible to every other.  *Degraded*
    bound results (⊤ substitutes after budget exhaustion) are never
    written or served — they describe a request's deadline, not the
    trail.
    """

    def __init__(
        self,
        stats: runtime.PerfStats = runtime.STATS,
        disk: Optional[DiskTier] = None,
        disk_scope: str = "",
    ):
        self._stats = stats
        self._disk = disk
        self._disk_scope = disk_scope
        self._bounds: Dict[str, Tuple[object, str]] = {}
        self._regions: Dict[tuple, Tuple[object, str]] = {}
        self.quarantined = 0

    # -- integrity ----------------------------------------------------------------

    def _checked(self, category: str, key, entry: Tuple[object, str]):
        """Return the entry's value, or raise :class:`CacheCorruption`.

        The ``cache.get`` fault site garbles the *stored checksum* (not
        the value) so an injected corruption is detected exactly the way
        a real one would be.
        """
        value, digest = entry
        if faults.maybe_fire("cache.get", key=str(key)) == "corrupt":
            digest = "corrupted:" + digest
        if entry_digest(value) != digest:
            raise CacheCorruption(
                "cache entry %r/%r failed its checksum" % (category, key),
                key=str(key),
                category=category,
            )
        return value

    def _quarantine(self, category: str, exc: CacheCorruption) -> None:
        self.quarantined += 1
        self._stats.event("cache.quarantine")
        log.warning("quarantined corrupt cache entry: %s", exc)

    # -- trail-keyed bound results ------------------------------------------------

    def bound_result(self, trail, compute: Callable[[], object]):
        """The memoized ``BoundAnalysis.compute()`` result for ``trail``.

        Falls through to ``compute()`` (uncached) when the perf layer is
        disabled.
        """
        if not runtime.enabled():
            return compute()
        # Trail objects cache their own fingerprint; fall back to the
        # free function for bare trail-likes.
        fp = getattr(trail, "fingerprint", None)
        key = fp() if fp is not None else trail_fingerprint(trail)
        entry = self._bounds.get(key)
        if entry is not None:
            try:
                value = self._checked("bound", key, entry)
            except CacheCorruption as exc:
                del self._bounds[key]
                self._quarantine("bound", exc)
            else:
                self._stats.hit("bound")
                return value
        self._stats.miss("bound")
        if self._disk is not None:
            with trace_span("cache.disk_get", key=key):
                value = self._disk.get_pickled(self._disk_key(key))
            if value is not None and not getattr(value, "degraded", False):
                self._stats.hit("bound.disk")
                self._bounds[key] = (value, entry_digest(value))
                return value
            self._stats.miss("bound.disk")
        result = compute()
        self._bounds[key] = (result, entry_digest(result))
        if self._disk is not None and not getattr(result, "degraded", False):
            with trace_span("cache.disk_put", key=key):
                self._disk.put_pickled(self._disk_key(key), result)
        return result

    def _disk_key(self, key: str) -> str:
        if self._disk_scope:
            return "bound/%s/%s" % (self._disk_scope, key)
        return "bound/" + key

    # -- generic derived structures -----------------------------------------------

    def derived(self, category: str, key: tuple, compute: Callable[[], object]):
        """Memoize any derived structure under ``(category, key)``."""
        if not runtime.enabled():
            return compute()
        full_key = (category,) + key
        entry = self._regions.get(full_key)
        if entry is not None:
            try:
                value = self._checked(category, full_key, entry)
            except CacheCorruption as exc:
                del self._regions[full_key]
                self._quarantine(category, exc)
            else:
                self._stats.hit(category)
                return value
        self._stats.miss(category)
        result = compute()
        self._regions[full_key] = (result, entry_digest(result))
        return result

    def clear(self) -> None:
        """Empty the in-memory tiers and reset quarantine bookkeeping.

        A cleared cache has no entries left to distrust, so it retracts
        *its own* quarantines from the shared ``cache.quarantine``
        counter in :class:`PerfStats` — and only its own: other cache
        instances reporting to the same stats object keep their counts.
        The disk tier (if any) is deliberately left alone — it outlives
        drivers by design; use ``DiskTier.clear()`` to purge it.
        """
        self._bounds.clear()
        self._regions.clear()
        if self.quarantined:
            self._stats.discount_event("cache.quarantine", self.quarantined)
        self.quarantined = 0

    def __len__(self) -> int:
        return len(self._bounds) + len(self._regions)
