"""Worker-pool fan-out helpers shared by the driver and the bench suite.

Three backends behind one function, in degradation order:

* ``"process"`` — :class:`concurrent.futures.ProcessPoolExecutor`; the
  only backend that buys wall-clock parallelism on CPython.  Requires
  the work function and its arguments to be picklable and importable
  from the worker (module-level functions only).
* ``"thread"`` — :class:`~concurrent.futures.ThreadPoolExecutor`; used
  for in-driver leaf fan-out (closures over live analysis state cannot
  cross a process boundary) and as the automatic fallback on platforms
  where process pools are unavailable (no ``fork``, restricted
  sandboxes).
* ``"serial"`` — a plain loop; always works, chosen whenever
  ``jobs <= 1``.

Results are always returned **in input order** regardless of backend or
completion order, so callers stay deterministic.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

BACKENDS = ("auto", "process", "thread", "serial")


def default_jobs() -> int:
    """A sensible worker count for this machine (respects affinity)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: None/0 → machine default, else max(1, n)."""
    if jobs is None or jobs == 0:
        return default_jobs()
    return max(1, int(jobs))


def process_pool_usable() -> bool:
    """Can this platform actually run a process pool?"""
    try:
        import multiprocessing

        return len(multiprocessing.get_all_start_methods()) > 0
    except Exception:  # pragma: no cover - exotic platforms
        return False


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    jobs: int = 1,
    backend: str = "auto",
) -> List[R]:
    """Apply ``fn`` to every item, fanning out across ``jobs`` workers.

    ``backend="auto"`` picks ``process`` when possible and degrades to
    ``thread`` then ``serial``.  Exceptions raised by ``fn`` propagate
    to the caller (the pools re-raise on result collection).
    """
    if backend not in BACKENDS:
        raise ValueError("unknown backend %r (expected one of %s)" % (backend, BACKENDS))
    items = list(items)
    if jobs <= 1 or len(items) <= 1 or backend == "serial":
        return [fn(item) for item in items]
    workers = min(jobs, len(items))
    if backend in ("auto", "process") and process_pool_usable():
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(fn, items))
        except (OSError, ValueError, ImportError):
            if backend == "process":
                raise
            # auto: fall through to threads
    if backend == "process":
        # Explicit request but pools unusable: degrade loudly-but-soundly.
        backend = "thread"
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))


def thread_map(fn: Callable[[T], R], items: Iterable[T], jobs: int) -> List[R]:
    """In-process fan-out (shared memory, shared caches); input order."""
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        return list(pool.map(fn, items))
