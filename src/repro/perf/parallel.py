"""Worker-pool fan-out helpers shared by the driver and the bench suite.

Three backends behind one function, in degradation order:

* ``"process"`` — :class:`concurrent.futures.ProcessPoolExecutor`; the
  only backend that buys wall-clock parallelism on CPython.  Requires
  the work function and its arguments to be picklable and importable
  from the worker (module-level functions only).
* ``"thread"`` — :class:`~concurrent.futures.ThreadPoolExecutor`; used
  for in-driver leaf fan-out (closures over live analysis state cannot
  cross a process boundary) and as the automatic fallback on platforms
  where process pools are unavailable (no ``fork``, restricted
  sandboxes).
* ``"serial"`` — a plain loop; always works, chosen whenever
  ``jobs <= 1``.

Results are always returned **in input order** regardless of backend or
completion order, so callers stay deterministic.

Two collection disciplines:

* :func:`parallel_map` — fail-fast: the first exception propagates to
  the caller (the pools re-raise on result collection).
* :func:`try_map` — fault-isolating: each slot independently holds the
  item's result *or* the exception it raised, worker crashes surface as
  :class:`~repro.util.errors.WorkerCrashed` and per-task timeouts as
  :class:`~repro.util.errors.ResourceExhausted`, so one bad task never
  takes down the suite.  This is what the resilient benchmark runner
  builds its retry logic on (docs/RESILIENCE.md).
"""

from __future__ import annotations

import logging
import os
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar, Union

from repro.util.errors import ResourceExhausted, WorkerCrashed

log = logging.getLogger(__name__)

T = TypeVar("T")
R = TypeVar("R")

BACKENDS = ("auto", "process", "thread", "serial")


def default_jobs() -> int:
    """A sensible worker count for this machine (respects affinity)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: None/0 → machine default.

    Negative values are a configuration error, not a request for the
    minimum — reject them loudly instead of silently clamping.
    """
    if jobs is None or jobs == 0:
        return default_jobs()
    jobs = int(jobs)
    if jobs < 0:
        raise ValueError(
            "jobs must be >= 0 (0 = one per CPU), got %d" % jobs
        )
    return jobs


def process_pool_usable() -> bool:
    """Can this platform actually run a process pool?

    Rejection is logged (never silently swallowed) so a run that quietly
    degraded to threads can be diagnosed from the logs.
    """
    try:
        import multiprocessing

        usable = len(multiprocessing.get_all_start_methods()) > 0
    except (ImportError, OSError, NotImplementedError) as exc:
        # ImportError: _multiprocessing extension absent (minimal
        # builds); OSError: no /dev/shm or fork rejected by the sandbox;
        # NotImplementedError: platform has no start method at all.
        log.warning("process pool backend unavailable: %s", exc)
        return False
    if not usable:  # pragma: no cover - empty start-method list
        log.warning(
            "process pool backend unavailable: no multiprocessing start methods"
        )
    return usable


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    jobs: int = 1,
    backend: str = "auto",
) -> List[R]:
    """Apply ``fn`` to every item, fanning out across ``jobs`` workers.

    ``backend="auto"`` picks ``process`` when possible and degrades to
    ``thread`` then ``serial``.  Exceptions raised by ``fn`` propagate
    to the caller (the pools re-raise on result collection).
    """
    if backend not in BACKENDS:
        raise ValueError("unknown backend %r (expected one of %s)" % (backend, BACKENDS))
    items = list(items)
    if jobs <= 1 or len(items) <= 1 or backend == "serial":
        return [fn(item) for item in items]
    workers = min(jobs, len(items))
    if backend in ("auto", "process") and process_pool_usable():
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(fn, items))
        except (OSError, ValueError, ImportError):
            if backend == "process":
                raise
            # auto: fall through to threads
    if backend == "process":
        # Explicit request but pools unusable: degrade loudly-but-soundly.
        backend = "thread"
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))


def thread_map(fn: Callable[[T], R], items: Iterable[T], jobs: int) -> List[R]:
    """In-process fan-out (shared memory, shared caches); input order."""
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        return list(pool.map(fn, items))


def thread_map_chunked(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int,
    chunk_size: Optional[int] = None,
) -> List[R]:
    """:func:`thread_map` with coarse work units: items are grouped into
    chunks (~4 per worker) and each chunk runs serially inside one
    thread task, so the per-item pool round-trip — future allocation,
    queue hop, result box — is paid once per *chunk*.  That overhead is
    pure loss for the driver's leaf fan-out, where one leaf's bound
    computation is often microseconds against a warm cache.  Input
    order; fail-fast like :func:`thread_map`.
    """
    items = list(items)
    n = len(items)
    if jobs <= 1 or n <= 1:
        return [fn(item) for item in items]
    workers = min(jobs, n)
    if chunk_size is None:
        chunk_size = max(1, -(-n // (workers * 4)))
    chunks = [items[i : i + chunk_size] for i in range(0, n, chunk_size)]

    def run_chunk(chunk: List[T]) -> List[R]:
        return [fn(item) for item in chunk]

    with ThreadPoolExecutor(max_workers=min(workers, len(chunks))) as pool:
        return [out for chunk_out in pool.map(run_chunk, chunks) for out in chunk_out]


# -- fault-isolating collection ---------------------------------------------


def collect_outcome(
    future,
    index: int = 0,
    label: str = "",
    task_timeout: Optional[float] = None,
):
    """Await one pool future with :func:`try_map`'s failure mapping.

    Returns ``(outcome, timed_out)`` where ``outcome`` is the result or
    the mapped exception instance (``BrokenExecutor`` →
    :class:`WorkerCrashed`, timeout → :class:`ResourceExhausted` of kind
    ``"task_timeout"``) and ``timed_out`` says the worker never
    answered — its pool can only be abandoned, not joined.
    ``KeyboardInterrupt`` propagates.  Shared by :func:`try_map` and the
    analysis-service worker pool (docs/SERVICE.md), so one job's crash
    is one job's failure everywhere.
    """
    try:
        return future.result(timeout=task_timeout), False
    except FutureTimeoutError:
        future.cancel()
        return (
            ResourceExhausted(
                "task %s produced no result within %.6gs"
                % (label or index, task_timeout or 0.0),
                kind="task_timeout",
                site="worker.run",
                elapsed=task_timeout or 0.0,
            ),
            True,
        )
    except BrokenExecutor as exc:
        return (
            WorkerCrashed(
                "worker pool broke while running task %s: %s"
                % (label or index, exc),
                task=str(label or index),
            ),
            False,
        )
    except KeyboardInterrupt:
        raise
    except Exception as exc:
        return exc, False


def try_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    jobs: int = 1,
    backend: str = "auto",
    task_timeout: Optional[float] = None,
    on_result: Optional[Callable[[int, Union[R, Exception]], None]] = None,
) -> List[Union[R, Exception]]:
    """Like :func:`parallel_map`, but each slot holds the item's result
    *or* the exception it raised — the suite-level primitive that makes
    one crashing task a per-item outcome instead of a run-wide abort.

    Failure mapping (always in input order):

    * an exception from ``fn`` → that exception instance;
    * a dead worker process (``BrokenExecutor``) →
      :class:`WorkerCrashed`; the pool is broken, so every still-pending
      item collects its own :class:`WorkerCrashed` immediately;
    * ``task_timeout`` seconds without a result →
      :class:`ResourceExhausted` (kind ``"task_timeout"``); the pool is
      then abandoned without waiting (a truly hung worker cannot be
      joined).

    ``on_result(index, outcome)`` is invoked as each slot settles, in
    input order — the journal hook: results are durable before the next
    collection step.  ``KeyboardInterrupt`` is never captured: the pool
    is shut down (without waiting) and the interrupt propagates so the
    caller can flush state and exit with a distinct code.
    """
    if backend not in BACKENDS:
        raise ValueError("unknown backend %r (expected one of %s)" % (backend, BACKENDS))
    items = list(items)

    def settle(index: int, outcome):
        if on_result is not None:
            on_result(index, outcome)
        return outcome

    if jobs <= 1 or len(items) <= 1 or backend == "serial":
        out: List[Union[R, Exception]] = []
        for i, item in enumerate(items):
            try:
                outcome: Union[R, Exception] = fn(item)
            except Exception as exc:
                outcome = exc
            out.append(settle(i, outcome))
        return out

    workers = min(jobs, len(items))
    use_process = backend in ("auto", "process") and process_pool_usable()
    if use_process:
        pool = ProcessPoolExecutor(max_workers=workers)
    else:
        pool = ThreadPoolExecutor(max_workers=workers)

    results: List[Union[R, Exception]] = [None] * len(items)  # type: ignore[list-item]
    hung = False
    try:
        futures = [pool.submit(fn, item) for item in items]
        for i, future in enumerate(futures):
            outcome, timed_out = collect_outcome(
                future, index=i, label=str(items[i]), task_timeout=task_timeout
            )
            hung = hung or timed_out
            results[i] = settle(i, outcome)
    except KeyboardInterrupt:
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    else:
        # A hung worker can never be joined; abandon it instead of
        # deadlocking in shutdown (the zombie dies with the parent).
        pool.shutdown(wait=not hung, cancel_futures=True)
    return results
