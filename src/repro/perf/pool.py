"""Persistent warm-worker pool with chunked, dynamically fed dispatch.

``try_map`` (repro.perf.parallel) builds a fresh ``ProcessPoolExecutor``
per call and submits one future per item.  That shape is right for
fault-isolation tests, but wrong for throughput: every call pays pool
startup, every *item* pays a task round-trip, and oversubscribing a
small machine (``--jobs 4`` on one core) makes each task *slower* than
serial while the harness happily reports the fan-out as a win.  This
module is the coarse-grained counterpart (docs/PERFORMANCE.md):

* **Warm, persistent workers** — one :class:`WarmPool` outlives many
  ``map_chunked`` calls (and, via :func:`shared_pool`, many runner
  instances — the analysis service reuses one pool across requests).
  Workers run :func:`_warm_worker` once at birth: import the heavy
  analysis modules and optionally open the shared disk tier, so the
  first real task pays no import or index-build latency.  Under the
  ``fork`` start method the import step is effectively free (the child
  inherits the parent's modules); under ``spawn`` it is the whole point.
* **Oversubscription clamp** — :func:`effective_workers` caps the pool
  at the machine's usable CPU count.  Extra workers on a saturated
  machine add contention, not parallelism, and contention inflates
  per-task wall clocks (the committed ``BENCH_table1.json`` regression
  this PR fixes).
* **Chunked dynamic dispatch** — items are grouped into chunks (several
  work units per task round-trip) and chunks are *fed* to the pool as
  workers finish, rather than submitted all at once: a worker that
  lands a long chunk simply receives fewer chunks later, which is the
  work-stealing rebalance that keeps stragglers from serializing the
  tail.  Inside a chunk each item is individually guarded, so one
  raising item costs one slot, exactly like ``try_map``.

Results always settle in **input order** (the journal hook contract of
the resilient suite runner).
"""

from __future__ import annotations

import atexit
import logging
import threading
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar, Union

from repro.perf.parallel import default_jobs, process_pool_usable
from repro.util.errors import WorkerCrashed

log = logging.getLogger(__name__)

T = TypeVar("T")
R = TypeVar("R")

# Modules a warm worker pre-imports: the benchmark registry (compiles
# every benchmark source on import) and the driver stack it pulls in.
WARM_MODULES: Tuple[str, ...] = (
    "repro.benchsuite",
    "repro.core.blazer",
    "repro.domains.zone",
)


def effective_workers(jobs: int) -> int:
    """Clamp a requested fan-out to what the machine can actually run.

    ``--jobs 4`` on a one-core box must mean one warm worker, not four
    processes time-slicing one core: the work is CPU-bound, so the extra
    processes cannot overlap anything and only add scheduler contention
    (and, under the harness's in-worker wall clocks, make every
    benchmark look slower than serial).
    """
    return max(1, min(int(jobs), default_jobs()))


def _warm_worker(
    modules: Tuple[str, ...],
    perf_flag: Optional[bool],
    disk_prime: Optional[str],
) -> None:
    """Per-worker initializer: run once, before the first task."""
    import importlib

    for name in modules:
        try:
            importlib.import_module(name)
        except Exception:  # pragma: no cover - a missing optional module
            log.warning("warm import of %s failed", name, exc_info=True)
    if perf_flag is not None:
        from repro.perf import runtime

        runtime.set_enabled(perf_flag)
    if disk_prime:
        try:
            from repro.perf.disktier import DiskTier

            DiskTier(disk_prime)  # opens/creates the index once per worker
        except Exception:  # pragma: no cover - unwritable prime path
            log.warning("disk-tier prime of %s failed", disk_prime, exc_info=True)
    # Everything imported so far — including the heap inherited from the
    # parent under ``fork`` — is permanent for this worker's lifetime.
    # Freezing it takes those objects out of every future GC pass: a
    # worker forked from a parent with a large heap (the bench harness
    # after its serial baseline) would otherwise re-traverse millions of
    # inherited objects on each gen-2 collection, a measured ~30% tax on
    # allocation-heavy analyses.
    import gc

    gc.collect()
    gc.freeze()


def _prewarm_probe() -> bool:
    """No-op task: submitting it forces the executor to spawn workers."""
    return True


def _run_chunk(
    fn: Callable[[T], R], chunk: Sequence[T]
) -> List[Tuple[bool, Union[R, Exception]]]:
    """Worker-side chunk body: per-item isolation inside one task."""
    out: List[Tuple[bool, Union[R, Exception]]] = []
    for item in chunk:
        try:
            out.append((True, fn(item)))
        except Exception as exc:  # noqa: BLE001 - isolation is the contract
            out.append((False, exc))
    return out


def chunk_size_for(n_items: int, workers: int) -> int:
    """Chunk size targeting ~4 chunks per worker: coarse enough that
    task round-trips stop dominating, fine enough that a straggler chunk
    can be rebalanced around."""
    return max(1, -(-n_items // (workers * 4)))


class WarmPool:
    """A persistent process pool with warm workers and chunked dispatch.

    Thread-safe for sequential reuse (one ``map_chunked`` at a time per
    pool; the shared registry serializes via its own lock).  A pool
    whose executor broke (a worker died) transparently rebuilds the
    executor on the next call — the broken call itself reports
    :class:`WorkerCrashed` for the affected items, matching ``try_map``.
    """

    def __init__(
        self,
        jobs: int,
        perf_flag: Optional[bool] = None,
        modules: Tuple[str, ...] = WARM_MODULES,
        disk_prime: Optional[str] = None,
    ):
        self.workers = effective_workers(jobs)
        self._perf_flag = perf_flag
        self._modules = tuple(modules)
        self._disk_prime = disk_prime
        self._pool: Optional[ProcessPoolExecutor] = None
        self._lock = threading.Lock()

    # -- executor lifecycle -------------------------------------------------

    def _executor(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_warm_worker,
                initargs=(self._modules, self._perf_flag, self._disk_prime),
            )
        return self._pool

    def _discard_executor(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        with self._lock:
            self._discard_executor()

    def prewarm(self) -> None:
        """Start (fork) the workers now and wait for one round-trip.

        Useful before a measurement session: under ``fork`` the workers
        snapshot the parent heap at fork time, so forking *early* —
        before the caller allocates its own bulk — keeps the children
        lean, and the round-trip proves the initializers ran.
        """
        with self._lock:
            pool = self._executor()
            pool.submit(_prewarm_probe).result()

    def __enter__(self) -> "WarmPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- dispatch -----------------------------------------------------------

    def map_chunked(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        chunk_size: Optional[int] = None,
        on_result: Optional[Callable[[int, Union[R, Exception]], None]] = None,
    ) -> List[Union[R, Exception]]:
        """Apply ``fn`` to every item through the warm pool.

        Returns one slot per item, in input order: the result, or the
        exception that item raised (a dead worker maps every item of the
        affected — and every not-yet-submitted — chunk to
        :class:`WorkerCrashed`).  ``on_result(index, outcome)`` fires in
        input order as the settled prefix grows, so journals stay
        crash-consistent exactly as with ``try_map``.

        Chunks are fed dynamically: at most ``workers`` chunks are in
        flight; each completion submits the next pending chunk, so fast
        workers drain the queue while a straggler finishes its one chunk.
        """
        items = list(items)
        if not items:
            return []
        n = len(items)
        if chunk_size is None:
            chunk_size = chunk_size_for(n, self.workers)
        chunks: List[Tuple[int, List[T]]] = [
            (start, items[start : start + chunk_size])
            for start in range(0, n, chunk_size)
        ]
        results: List[Union[R, Exception]] = [None] * n  # type: ignore[list-item]
        filled = [False] * n
        settled = 0

        def fill(start: int, chunk: Sequence[T], outcome) -> None:
            if isinstance(outcome, Exception):
                for k in range(len(chunk)):
                    results[start + k] = outcome
                    filled[start + k] = True
            else:
                for k, (_ok, value) in enumerate(outcome):
                    results[start + k] = value
                    filled[start + k] = True

        def settle_prefix() -> None:
            nonlocal settled
            while settled < n and filled[settled]:
                if on_result is not None:
                    on_result(settled, results[settled])
                settled += 1

        with self._lock:
            pool = self._executor()
            next_chunk = 0
            live: Dict[object, Tuple[int, List[T]]] = {}
            broken = False
            try:
                while next_chunk < len(chunks) and len(live) < self.workers:
                    start, chunk = chunks[next_chunk]
                    live[pool.submit(_run_chunk, fn, chunk)] = (start, chunk)
                    next_chunk += 1
                while live:
                    done, _ = wait(live, return_when=FIRST_COMPLETED)
                    for future in done:
                        start, chunk = live.pop(future)
                        try:
                            outcome = future.result()
                        except BrokenExecutor as exc:
                            broken = True
                            outcome = WorkerCrashed(
                                "worker pool broke while running chunk at %d: %s"
                                % (start, exc),
                                task=str(items[start]),
                            )
                        except KeyboardInterrupt:
                            raise
                        except Exception as exc:  # chunk-level failure
                            outcome = exc
                        fill(start, chunk, outcome)
                    settle_prefix()
                    while (
                        not broken
                        and next_chunk < len(chunks)
                        and len(live) < self.workers
                    ):
                        start, chunk = chunks[next_chunk]
                        live[pool.submit(_run_chunk, fn, chunk)] = (start, chunk)
                        next_chunk += 1
                    if broken:
                        break
            except KeyboardInterrupt:
                self._discard_executor()
                raise
            if broken:
                self._discard_executor()
                crash = WorkerCrashed(
                    "worker pool broke with %d chunk(s) unscheduled"
                    % (len(chunks) - next_chunk),
                    task="pool",
                )
                for future, (start, chunk) in live.items():
                    fill(start, chunk, crash)
                while next_chunk < len(chunks):
                    start, chunk = chunks[next_chunk]
                    fill(start, chunk, crash)
                    next_chunk += 1
                settle_prefix()
        return results


def warm_executor(
    workers: int,
    disk_prime: Optional[str] = None,
    modules: Tuple[str, ...] = WARM_MODULES,
) -> ProcessPoolExecutor:
    """A plain ``ProcessPoolExecutor`` whose workers run the warm
    initializer — for callers that manage their own pool lifecycle (the
    analysis daemon's process-isolation tier) but still want workers
    that have imported the analysis stack before their first job."""
    return ProcessPoolExecutor(
        max_workers=workers,
        initializer=_warm_worker,
        initargs=(tuple(modules), None, disk_prime),
    )


# -- process-wide shared pools -------------------------------------------------

_SHARED: Dict[Tuple[int, Optional[bool], Optional[str]], WarmPool] = {}
_SHARED_LOCK = threading.Lock()


def shared_pool(
    jobs: int,
    perf_flag: Optional[bool] = None,
    disk_prime: Optional[str] = None,
) -> WarmPool:
    """The process-wide warm pool for a configuration (created once).

    Successive suite runs — and the analysis service's successive
    requests — reuse the same warm workers instead of paying pool
    startup per run.  Pools are keyed by (clamped worker count, perf
    flag, disk-prime path) and shut down at interpreter exit.
    """
    key = (effective_workers(jobs), perf_flag, disk_prime)
    with _SHARED_LOCK:
        pool = _SHARED.get(key)
        if pool is None:
            pool = _SHARED[key] = WarmPool(
                jobs, perf_flag=perf_flag, disk_prime=disk_prime
            )
        return pool


def shutdown_shared() -> None:
    """Shut down every shared pool (atexit, and tests)."""
    with _SHARED_LOCK:
        for pool in _SHARED.values():
            pool.shutdown()
        _SHARED.clear()


atexit.register(shutdown_shared)


def warm_pool_usable() -> bool:
    """Process pools available on this platform?"""
    return process_pool_usable()
