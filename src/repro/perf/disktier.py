"""The persistent disk tier: checksum-verified JSONL key→payload store.

This is the durable layer below the in-memory caches (docs/SERVICE.md):
the analysis service keeps completed verdicts here so they survive
daemon restarts, and :class:`~repro.perf.cache.AnalysisCache` can spill
trail-keyed bound results here so a fresh driver — in this process or
another — starts warm.

The storage format deliberately reuses the crash-safe JSONL journal of
:mod:`repro.resilience.journal` (append + fsync per record, forgiving
loader, last-writer-wins per key), so a torn final line after a crash
costs one entry, never the tier.  On top of the journal this module
adds the PR 2 integrity discipline: every payload is stored alongside a
SHA-256 of its canonical JSON and verified on read.  A mismatch
**quarantines** the entry — evicted from the in-memory index, counted
(``disk.quarantine`` on :data:`repro.perf.runtime.STATS`), and the
caller recomputes — so a corrupt file can cost time but never wrong
answers.

Two payload disciplines:

* :meth:`DiskTier.get` / :meth:`DiskTier.put` — JSON-safe dict payloads
  (service verdicts);
* :meth:`DiskTier.get_pickled` / :meth:`DiskTier.put_pickled` —
  arbitrary Python values via pickle + base64 inside the JSON record
  (bound results).  Unpicklable values are skipped silently: the disk
  tier is an accelerator, never a correctness dependency.

Concurrent writers (pool workers sharing one path) are safe because
records are single appended lines and the loader takes the last record
per key; readers see a consistent prefix.
"""

from __future__ import annotations

import base64
import hashlib
import json
import logging
import pickle
from typing import Any, Dict, Optional

from repro.perf import runtime
from repro.resilience.journal import SuiteJournal

log = logging.getLogger(__name__)

QUARANTINE_EVENT = "disk.quarantine"


def payload_digest(payload: Any) -> str:
    """SHA-256 over the canonical JSON encoding of ``payload``."""
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


class DiskTier:
    """One JSONL file of checksummed ``key → payload`` entries."""

    def __init__(self, path: str, stats: runtime.PerfStats = runtime.STATS):
        self._journal = SuiteJournal(path)
        self._stats = stats
        self._entries: Dict[str, Dict[str, Any]] = {}
        self.quarantined = 0
        self.refresh()

    @property
    def path(self) -> str:
        return self._journal.path

    def refresh(self) -> None:
        """Re-read the file, picking up other processes' appends."""
        self._entries = self._journal.load()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    # -- integrity ----------------------------------------------------------

    def _quarantine(self, key: str, why: str) -> None:
        self._entries.pop(key, None)
        self.quarantined += 1
        self._stats.event(QUARANTINE_EVENT)
        log.warning("quarantined corrupt disk-tier entry %r (%s)", key, why)

    # -- JSON payloads ------------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        """The payload stored under ``key``, or None (absent/corrupt)."""
        record = self._entries.get(key)
        if record is None:
            return None
        body = record.get("result")
        if not isinstance(body, dict) or "payload" not in body:
            self._quarantine(key, "malformed record")
            return None
        payload = body["payload"]
        if payload_digest(payload) != body.get("digest"):
            self._quarantine(key, "checksum mismatch")
            return None
        return payload

    def put(self, key: str, payload: Any) -> None:
        """Durably store ``payload`` under ``key`` (fsync'd append)."""
        body = {"digest": payload_digest(payload), "payload": payload}
        self._journal.record_result(key, body)
        self._entries[key] = {"name": key, "result": body}

    # -- pickled payloads ---------------------------------------------------

    def get_pickled(self, key: str) -> Optional[object]:
        """Unpickle the value stored under ``key`` (None when absent,
        corrupt, or not unpicklable in this process)."""
        payload = self.get(key)
        if not isinstance(payload, dict) or "pickle" not in payload:
            return None
        try:
            return pickle.loads(base64.b64decode(payload["pickle"]))
        except Exception as exc:  # unpicklable here: treat as corrupt
            self._quarantine(key, "unpickle failed: %s" % exc)
            return None

    def put_pickled(self, key: str, value: object) -> bool:
        """Store an arbitrary value; False (and no write) if it cannot
        be pickled — the caller just loses the warm start."""
        try:
            blob = base64.b64encode(pickle.dumps(value)).decode("ascii")
        except Exception as exc:
            log.debug("disk tier: cannot pickle %r entry: %s", key, exc)
            return False
        self.put(key, {"pickle": blob})
        return True

    def clear(self) -> None:
        """Drop the file and the index (used by tests and cache purges)."""
        self._journal.clear()
        self._entries.clear()
        self.quarantined = 0
