"""Content-addressed fingerprints for the cacheable analysis inputs.

A fingerprint is a hex SHA-256 over a *canonical* textual encoding of
the object's structure, so it is stable across processes and Python
hash randomization — which is what lets the suite runner compare
verdicts computed in different worker processes, and what makes the
trail-keyed bound cache sound:

* :func:`dfa_fingerprint` canonicalizes by renumbering states in BFS
  order from the initial state, visiting transitions with symbols in
  sorted-``repr`` order.  Two isomorphic DFAs therefore fingerprint
  identically regardless of their internal state numbering.
* :func:`cfg_fingerprint` encodes the procedure signature, every block's
  instruction listing (with weights) and terminator, and the register
  kinds — everything the bound analysis reads.
* :func:`trail_fingerprint` combines the CFG fingerprint with the trail
  DFA's.  Deliberately *language-keyed*: the split provenance and the
  human-readable description are excluded, so two trails denoting the
  same language share a fingerprint (and a cached bound) even when they
  were reached by different refinement routes.
* :func:`module_fingerprint` combines the CFG fingerprints of several
  procedures — all of a module's, or the call-graph closure of one
  entry point.  This is the key ingredient whenever a result depends on
  *callee bodies* through interprocedural summaries: a procedure's
  analysis outcome is a function of every CFG it can reach, not just
  its own, so any cross-program cache key must hash the closure.
"""

from __future__ import annotations

import hashlib
from collections import deque
from typing import Dict, List, Optional, Set

from repro.perf import runtime


def _digest(parts: List[str]) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


def dfa_canonical(dfa) -> str:
    """A canonical textual encoding of a DFA (up to isomorphism of the
    reachable part)."""
    index = {dfa.initial: 0}
    order = [dfa.initial]
    queue = deque([dfa.initial])
    outgoing = {}
    for (src, symbol), dst in dfa.transitions.items():
        outgoing.setdefault(src, []).append((symbol, dst))
    for src in outgoing:
        outgoing[src].sort(key=lambda pair: repr(pair[0]))
    lines: List[str] = []
    while queue:
        state = queue.popleft()
        for symbol, dst in outgoing.get(state, []):
            if dst not in index:
                index[dst] = len(index)
                order.append(dst)
                queue.append(dst)
            lines.append("%d %r %d" % (index[state], symbol, index[dst]))
    accepting = sorted(index[s] for s in dfa.accepting if s in index)
    alphabet = sorted(repr(s) for s in dfa.alphabet)
    return "\n".join(
        ["states=%d" % len(index), "accepting=%r" % (accepting,)]
        + lines
        + ["alphabet=%s" % ";".join(alphabet)]
    )


def dfa_fingerprint(dfa) -> str:
    return _digest([dfa_canonical(dfa)])


def cfg_fingerprint(cfg) -> str:
    memo = runtime.cfg_memo(cfg)
    cached = memo.get("fingerprint")
    if cached is not None:
        return cached
    parts: List[str] = [
        "cfg %s entry=%d exit=%d" % (cfg.name, cfg.entry, cfg.exit_id),
        "params=%s"
        % ";".join(
            "%s:%s:%s" % (p.name, p.declared, p.level.value) for p in cfg.params
        ),
        "ret=%s" % cfg.ret,
        "regs=%s" % ";".join("%s:%s" % kv for kv in sorted(cfg.reg_kinds.items())),
    ]
    for bid in cfg.block_ids():
        parts.append(str(cfg.blocks[bid]))
    memo["fingerprint"] = fp = _digest(parts)
    return fp


def trail_fingerprint(trail) -> str:
    """Language-keyed trail fingerprint: CFG structure + trail DFA."""
    return _digest([cfg_fingerprint(trail.cfg), dfa_canonical(trail.dfa)])


def dfa_structure_key(dfa) -> tuple:
    """A hashable key over a DFA's *exact* state structure.

    Stricter than :func:`dfa_fingerprint`: two isomorphic DFAs with
    different state numbering get different keys.  Used wherever a
    cached value is consumed together with the DFA's raw state numbers
    (product-node invariants, accepting-state checks), where serving an
    isomorphism-class hit would mislabel states.
    """
    return (
        dfa.num_states,
        dfa.initial,
        frozenset(dfa.accepting),
        frozenset(dfa.transitions.items()),
    )


def delta_fingerprint(parent_lineage: str, child_fp: str, delta) -> str:
    """Lineage fingerprint of a split child (see :func:`lineage_fingerprint`)."""
    return _digest(
        [
            "split",
            parent_lineage,
            child_fp,
            "%s b%d %r %s" % (delta.kind, delta.block, delta.edge, delta.polarity),
        ]
    )


def lineage_fingerprint(trail) -> str:
    """Delta-lineage fingerprint: content fingerprint *plus* the split
    route that produced the trail.

    The incremental plane indexes parent artifacts by this key rather
    than the language-keyed :func:`trail_fingerprint`: two trails can
    denote the same language yet carry *different* refinement deltas
    (split at a different constructor, or in a different order), and the
    delta is what directs which loops are probed without recomputation.
    Keying by lineage guarantees a reused fixpoint artifact is only ever
    consulted under the exact split that produced it — a structurally
    different split route gets a fresh index entry and full content
    revalidation (the stale-key regression in
    ``tests/perf/test_incremental.py``).
    """
    delta = getattr(trail, "delta", None)
    if delta is None:
        return _digest(["root", trail_fingerprint(trail)])
    return delta_fingerprint(delta.parent_lineage, trail_fingerprint(trail), delta)


def reachable_procs(cfgs: Dict[str, object], root: str) -> Set[str]:
    """Names of the procedures ``root`` can reach through calls to
    *defined* procedures (``root`` included)."""
    from repro.bounds.interproc import call_graph

    graph = call_graph(cfgs)
    seen = {root}
    stack = [root]
    while stack:
        for callee in graph.get(stack.pop(), ()):
            if callee not in seen:
                seen.add(callee)
                stack.append(callee)
    return seen


def module_fingerprint(cfgs: Dict[str, object], root: Optional[str] = None) -> str:
    """Combined fingerprint of a group of procedure bodies: the whole
    module, or (with ``root``) just the procedures ``root`` can reach.

    Interprocedural summaries make callee bodies outcome-relevant
    (``CallInstr`` renders callees by name only, so a single CFG's
    fingerprint says nothing about what its calls *do*); hashing the
    reachable closure restores the content-addressing guarantee for
    whole-analysis keys.
    """
    names = sorted(cfgs) if root is None else sorted(reachable_procs(cfgs, root))
    return _digest(["%s=%s" % (name, cfg_fingerprint(cfgs[name])) for name in names])


def analysis_scope_fingerprint(
    domain: str, summaries_fp: str, cfgs: Dict[str, object]
) -> str:
    """Scope key for bound results shared *across* driver instances.

    A persisted :class:`~repro.bounds.analysis.BoundResult` is a
    function of more than its trail: the abstract domain, the call
    summary registry (``max_bits``), and the bounds of every defined
    callee all feed ``BoundAnalysis.compute()``.  Entries written under
    one scope must never be served under another, so the disk tier
    prefixes its keys with this digest (docs/SERVICE.md).
    """
    return _digest(
        [
            "domain=%s" % domain,
            "summaries=%s" % summaries_fp,
            "module=%s" % module_fingerprint(cfgs),
        ]
    )
