"""The asyncio client: one connection, many requests in flight.

Where the blocking :class:`~repro.service.client.ServiceClient` sends
one request and reads one response, this client *pipelines*: every
request carries a generated ``id``, a single reader task matches the
(possibly reordered) responses back to their futures, and a thousand
``submit``\\ s can share one socket — which is exactly how the loadgen
harness simulates a thousand clients without a thousand sockets when it
wants to, and how real callers overlap a slow analysis with cheap
status probes.

Same robustness contract as the blocking client: bounded, jittered
retries on transport failures (reconnect and resend — every verb is
idempotent, submissions are content-keyed server-side) and on explicit
``overloaded`` responses, honoring the daemon's ``retry_after`` hint;
an exhausted overload budget raises
:class:`~repro.util.errors.ServiceOverloaded`.
"""

from __future__ import annotations

import asyncio
import itertools
import random
from typing import Any, Dict, Optional

from repro.service import protocol
from repro.service.client import (
    DEFAULT_CONNECT_TIMEOUT,
    DEFAULT_RETRIES,
    RETRY_BACKOFF,
    RETRY_BACKOFF_CAP,
)
from repro.util.errors import ServiceError, ServiceOverloaded

_CLIENT_IDS = itertools.count(1)


class AsyncServiceClient:
    """A pipelining NDJSON client bound to one service address."""

    def __init__(
        self,
        address: str,
        connect_timeout: Optional[float] = DEFAULT_CONNECT_TIMEOUT,
        retries: int = DEFAULT_RETRIES,
        rng: Optional[random.Random] = None,
    ):
        self.address = address
        self._parsed = protocol.parse_address(address)
        self._connect_timeout = connect_timeout
        self._retries = max(0, int(retries))
        self._rng = rng or random.Random()
        self._prefix = "c%d" % next(_CLIENT_IDS)
        self._seq = 0
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._pending: Dict[str, "asyncio.Future[Dict[str, Any]]"] = {}

    # -- connection ---------------------------------------------------------

    async def connect(self) -> "AsyncServiceClient":
        if self._writer is not None:
            return self
        try:
            if self._parsed[0] == "unix":
                opener = asyncio.open_unix_connection(self._parsed[1])
            else:
                opener = asyncio.open_connection(self._parsed[1], self._parsed[2])
            self._reader, self._writer = await asyncio.wait_for(
                opener, self._connect_timeout
            )
        except (OSError, asyncio.TimeoutError) as exc:
            raise ServiceError(
                "cannot reach analysis service at %s: %s" % (self.address, exc)
            ) from exc
        self._reader_task = asyncio.ensure_future(self._read_loop())
        return self

    async def close(self) -> None:
        writer, self._writer = self._writer, None
        self._reader = None
        task, self._reader_task = self._reader_task, None
        if writer is not None:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if task is not None:
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._fail_pending(ServiceError("connection to %s closed" % self.address))

    async def __aenter__(self) -> "AsyncServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- reader side --------------------------------------------------------

    async def _read_loop(self) -> None:
        reader = self._reader
        assert reader is not None
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                response = protocol.decode_message(line)
                future = self._pending.pop(str(response.get("id")), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - surface to the waiters
            self._fail_pending(
                ServiceError(
                    "reader on %s failed: %s" % (self.address, exc)
                )
            )
            return
        self._fail_pending(
            ServiceError(
                "analysis service at %s closed the connection mid-request"
                % self.address
            )
        )

    def _fail_pending(self, error: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)

    # -- request plumbing ---------------------------------------------------

    async def _backoff(self, attempt: int, floor: float = 0.0) -> None:
        delay = min(RETRY_BACKOFF * (2.0 ** (attempt - 1)), RETRY_BACKOFF_CAP)
        delay = max(floor, delay) * self._rng.uniform(0.5, 1.0)
        if floor > 0:
            delay = max(delay, floor)
        if delay > 0:
            await asyncio.sleep(delay)

    async def _request_once(self, message: Dict[str, Any]) -> Dict[str, Any]:
        await self.connect()
        assert self._writer is not None
        self._seq += 1
        request_id = "%s-%d" % (self._prefix, self._seq)
        wired = dict(message)
        wired["id"] = request_id
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Dict[str, Any]]" = loop.create_future()
        self._pending[request_id] = future
        try:
            self._writer.write(protocol.encode_message(wired))
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            self._pending.pop(request_id, None)
            await self.close()
            raise ServiceError(
                "analysis service at %s dropped the connection: %s"
                % (self.address, exc)
            ) from exc
        try:
            return await future
        except ServiceError:
            await self.close()
            raise
        finally:
            self._pending.pop(request_id, None)

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one message, return the raw response dict; bounded
        jittered retries (reconnect + resend) on transport failures."""
        attempt = 0
        while True:
            try:
                return await self._request_once(message)
            except ServiceError:
                attempt += 1
                if attempt > self._retries:
                    raise
                await self._backoff(attempt)

    async def _checked(self, message: Dict[str, Any]) -> Dict[str, Any]:
        attempt = 0
        while True:
            response = await self.request(message)
            if response.get("ok"):
                return response
            if response.get("overloaded"):
                retry_after = float(response.get("retry_after", 0.0) or 0.0)
                attempt += 1
                if attempt > self._retries:
                    raise ServiceOverloaded(
                        "service %s request shed by %s after %d attempt(s) (%s)"
                        % (
                            message.get("op"),
                            self.address,
                            attempt,
                            response.get("error", "overloaded"),
                        ),
                        retry_after=retry_after,
                    )
                await self._backoff(attempt, floor=retry_after)
                continue
            raise ServiceError(
                "service %s request failed: %s"
                % (message.get("op"), response.get("error", "unknown error"))
            )

    # -- verbs --------------------------------------------------------------

    async def ping(self) -> Dict[str, Any]:
        return await self._checked({"op": "ping"})

    async def health(self) -> Dict[str, Any]:
        return await self._checked({"op": "health"})

    async def ready(self) -> bool:
        return bool((await self._checked({"op": "ready"})).get("ready"))

    async def submit(
        self,
        source: str,
        proc: Optional[str] = None,
        wait: bool = True,
        priority: int = 0,
        wait_timeout: Optional[float] = None,
        **knobs: Any,
    ) -> Dict[str, Any]:
        message: Dict[str, Any] = {
            "op": "submit",
            "source": source,
            "wait": wait,
            "priority": priority,
        }
        if proc is not None:
            message["proc"] = proc
        if wait_timeout is not None:
            message["wait_timeout"] = wait_timeout
        for name, value in knobs.items():
            if value is not None:
                message[name] = value
        return await self._checked(message)

    async def status(self, job: Optional[str] = None) -> Dict[str, Any]:
        message: Dict[str, Any] = {"op": "status"}
        if job is not None:
            message["job"] = job
        return await self._checked(message)

    async def result(
        self,
        job: str,
        wait: bool = False,
        wait_timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        message: Dict[str, Any] = {"op": "result", "job": job, "wait": wait}
        if wait_timeout is not None:
            message["wait_timeout"] = wait_timeout
        return await self._checked(message)

    async def stats(self) -> Dict[str, Any]:
        return await self._checked({"op": "stats"})

    async def metrics(self, format: str = "text") -> Dict[str, Any]:
        return await self._checked({"op": "metrics", "format": format})

    async def drain(self) -> Dict[str, Any]:
        return await self._checked({"op": "drain"})

    async def shutdown(self) -> Dict[str, Any]:
        response = await self._checked({"op": "shutdown"})
        await self.close()
        return response
