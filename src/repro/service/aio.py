"""The asyncio service tier: one event loop in front of sharded pools.

The thread-per-connection daemon (:mod:`repro.service.daemon`) is the
right shape for tens of clients; at a thousand it pays a thread stack
and a scheduler seat per connection.  This tier replaces the front end
with one event loop::

    asyncio server ──▶ per-connection reader ──▶ admission gates
                                                   │ admitted
    ResultStore (memory ▸ disk) ◀── settle ◀── shard pools (N × workers)

and keeps everything behind the socket byte-compatible: same NDJSON
protocol, same verbs, same result dicts, same fingerprint coalescing —
a blocking :class:`~repro.service.client.ServiceClient` cannot tell the
tiers apart.  What changes is scale and failure behavior:

* **Pipelining.**  Requests carrying an ``id`` are handled concurrently
  and answered out of order (the response echoes the id); requests
  without one keep the strictly-ordered contract the blocking client
  relies on.
* **Admission control at the door.**  A queue-depth gate
  (:class:`~repro.service.admission.AdmissionController`) sheds work
  with an explicit ``overloaded`` + ``retry_after`` answer before it
  costs a fingerprint, and a per-connection
  :class:`~repro.service.admission.TokenBucket` stops one chatty client
  from monopolizing the gate.
* **Bounded backpressure.**  Each shard accepts at most
  ``shard_inflight`` unsettled jobs; beyond that the submission is shed,
  so a burst cannot build an unbounded promise queue between the
  acceptor and the workers.
* **Quarantine.**  Worker *crashes* count against the owning shard's
  circuit breaker (:mod:`repro.service.shard`); a tripped shard's
  fingerprint range reroutes to its neighbors while the pool rebuilds in
  a background task, and crashed jobs are re-run on a healthy shard —
  a crash costs latency, never a lost job.
* **Graceful drain.**  SIGTERM (or the ``drain``/``shutdown`` verbs)
  stops accepting, lets in-flight jobs settle, flushes the responses and
  the disk tier, then exits — the rolling-restart contract
  (docs/SERVICE.md runbook).
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import signal
import time
from collections import OrderedDict, deque
from concurrent.futures import BrokenExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.obs import exporters as obs_exporters
from repro.obs.metrics import Family, MetricsRegistry, REGISTRY as GLOBAL_REGISTRY
from repro.service import protocol
from repro.service.admission import AdmissionController, TokenBucket
from repro.service.daemon import (
    BOUNDS_FILE,
    PROMETHEUS_CONTENT_TYPE,
    VERDICTS_FILE,
    ServiceStats,
)
from repro.service.jobs import SETTLED_RETENTION, fingerprint_job, intake_payload
from repro.service.shard import Shard, ShardManager
from repro.service.store import ResultStore
from repro.util.errors import ProtocolError, ReproError, WorkerCrashed

log = logging.getLogger(__name__)

# Default ceiling on unsettled jobs daemon-wide before the admission
# gate sheds; sized for "burst of distinct programs", not connections —
# coalesced and cache-hit submissions never count against it.
MAX_PENDING = 256

# Default per-shard unsettled-job bound (the acceptor→shard backpressure).
SHARD_INFLIGHT = 64

# Seconds stop() waits for in-flight jobs to settle before tearing down.
DRAIN_TIMEOUT = 30.0

# Distinct (source, proc, knobs) fingerprints memoized; load traffic
# replays a small program set, so this converts the dominant submit cost
# (compile + hash) into a dict hit.
FINGERPRINT_CACHE = 512


@dataclass
class AsyncJob:
    """One in-flight analysis on the event loop (loop-confined state)."""

    id: str
    key: str
    payload: Dict[str, Any]
    priority: int = 0
    shard: Optional[int] = None
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    attempts: int = 0
    waiters: int = 1
    done: asyncio.Event = field(default_factory=asyncio.Event, repr=False)

    @property
    def settled(self) -> bool:
        return self.state in ("done", "failed")

    def snapshot(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "job": self.id,
            "key": self.key,
            "state": self.state,
            "priority": self.priority,
            "proc": self.payload.get("proc"),
            "waiters": self.waiters,
            "attempts": self.attempts,
            "submitted_at": round(self.submitted_at, 6),
        }
        if self.shard is not None:
            out["shard"] = self.shard
        if self.started_at is not None:
            out["started_at"] = round(self.started_at, 6)
        if self.finished_at is not None:
            out["finished_at"] = round(self.finished_at, 6)
        if self.error is not None:
            out["error"] = self.error
        return out


class AsyncAnalysisDaemon:
    """The sharded asyncio daemon bound to one socket address.

    All mutable routing state (active jobs, shard inflight counters,
    settled retention) is touched only from the event loop — the only
    cross-thread traffic is ``concurrent.futures`` bridged with
    ``asyncio.wrap_future`` and the thread-safe stats/metrics objects.
    """

    def __init__(
        self,
        address: str,
        shards: int = 2,
        workers_per_shard: int = 1,
        cache_dir: Optional[str] = None,
        isolation: str = "process",
        max_pending: int = MAX_PENDING,
        shard_inflight: int = SHARD_INFLIGHT,
        rate: Optional[float] = None,
        burst: Optional[float] = None,
        default_deadline: Optional[float] = None,
        task_timeout: Optional[float] = None,
        default_priority: int = 0,
        crash_retries: Optional[int] = None,
        drain_timeout: float = DRAIN_TIMEOUT,
    ):
        self._requested_address = protocol.parse_address(address)
        self._bound_address: Optional[protocol.Address] = None
        self._default_deadline = default_deadline
        self._task_timeout = task_timeout
        self._default_priority = default_priority
        self._drain_timeout = drain_timeout
        self._rate = rate
        self._burst = burst
        # A crashed attempt reroutes; give it enough lives to walk past
        # every quarantined shard plus the probe.
        self._crash_retries = (
            max(2, shards) if crash_retries is None else max(0, crash_retries)
        )
        self._cache_dir = cache_dir
        self._bounds_path: Optional[str] = None
        store_path: Optional[str] = None
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)
            store_path = os.path.join(cache_dir, VERDICTS_FILE)
            self._bounds_path = os.path.join(cache_dir, BOUNDS_FILE)
        self.store = ResultStore(store_path)
        self.stats = ServiceStats()
        self.shards = ShardManager(
            shards,
            workers_per_shard=workers_per_shard,
            isolation=isolation,
            disk_prime=store_path,
        )
        self.isolation = self.shards.shards[0].isolation  # post-degrade truth
        self.admission = AdmissionController(max_pending)
        self.shard_inflight = max(1, shard_inflight)
        # Loop-confined job state.
        self._active: Dict[str, AsyncJob] = {}  # key → unsettled job
        self._jobs: Dict[str, AsyncJob] = {}  # id → job (bounded below)
        self._settled: Deque[str] = deque()
        self._seq = 0
        self._job_tasks: Set[asyncio.Task] = set()
        self._conn_tasks: Set[asyncio.Task] = set()
        self._rebuilding: Set[int] = set()
        # Fingerprinting is CPU work (compile + hash): memoize and
        # offload misses so the loop never blocks on a parser.
        self._fp_cache: "OrderedDict[str, Tuple[str, str]]" = OrderedDict()
        self._fp_executor = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-aio-fp"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False
        self._stopped = False
        self._stop_event = asyncio.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        # Metrics: native families for loop-side observations, pull-time
        # collectors for everything already counted elsewhere.
        self.registry = MetricsRegistry()
        self._job_seconds = self.registry.histogram(
            "repro_service_job_seconds",
            "Wall seconds per executed job by outcome",
            labelnames=("outcome",),
        )
        self._submit_seconds = self.registry.histogram(
            "repro_service_submit_seconds",
            "Wall seconds from submit accept to settled response",
            labelnames=("disposition",),
        )
        self.registry.register_collector(self._service_families)
        obs_exporters.register_perf_collector(self.registry)

    # -- lifecycle ----------------------------------------------------------

    @property
    def address(self) -> str:
        bound = self._bound_address or self._requested_address
        return protocol.format_address(bound)

    @property
    def running(self) -> bool:
        return self._server is not None and not self._stopped

    async def start(self) -> "AsyncAnalysisDaemon":
        if self._server is not None:
            raise ReproError("async daemon already started")
        self._loop = asyncio.get_running_loop()
        addr = self._requested_address
        if addr[0] == "unix":
            if os.path.exists(addr[1]) and self._socket_stale(addr):
                os.unlink(addr[1])
            self._server = await asyncio.start_unix_server(
                self._serve_connection, path=addr[1]
            )
            self._bound_address = addr
        else:
            self._server = await asyncio.start_server(
                self._serve_connection, host=addr[1], port=addr[2]
            )
            host, port = self._server.sockets[0].getsockname()[:2]
            self._bound_address = ("tcp", addr[1], port)
        log.info(
            "async analysis daemon listening on %s (%d shard(s) × %d worker(s), "
            "%s isolation)",
            self.address,
            self.shards.count,
            self.shards.shards[0].workers,
            self.isolation,
        )
        return self

    @staticmethod
    def _socket_stale(addr: protocol.Address) -> bool:
        try:
            probe = protocol.connect_socket(addr, timeout=0.2)
        except OSError:
            return True
        probe.close()
        return False

    def request_stop(self) -> None:
        """Signal-handler-safe stop request: serve_forever wakes and
        runs the full drain + stop sequence (the SIGTERM hook)."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        loop.call_soon_threadsafe(self._stop_event.set)

    async def serve_forever(self) -> None:
        """Serve until :meth:`request_stop` (or SIGTERM/SIGINT when the
        loop allows signal handlers), then drain and stop."""
        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        installed: List[int] = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self._stop_event.set)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        try:
            await self._stop_event.wait()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await self.stop()

    async def stop(self, drain_timeout: Optional[float] = None) -> None:
        """Graceful drain, same order as the sync tier: close the
        listener first, settle in-flight jobs (bounded by
        ``drain_timeout``), flush responses and the disk tier, then tear
        the shards down."""
        if self._stopped:
            return
        self._draining = True
        timeout = self._drain_timeout if drain_timeout is None else drain_timeout
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        if self._job_tasks and timeout:
            done, pending = await asyncio.wait(
                set(self._job_tasks), timeout=timeout
            )
            if pending:
                log.warning(
                    "drain timed out after %.1fs with %d job(s) unsettled",
                    timeout,
                    len(pending),
                )
                for task in pending:
                    task.cancel()
        # Let connection handlers flush the just-settled responses.
        if self._conn_tasks:
            await asyncio.wait(set(self._conn_tasks), timeout=2.0)
            for task in self._conn_tasks:
                task.cancel()
        flushed = self.store.flush()
        self.shards.shutdown()
        self._fp_executor.shutdown(wait=False)
        bound = self._bound_address
        if bound is not None and bound[0] == "unix":
            try:
                os.unlink(bound[1])
            except OSError:
                pass
        self._stopped = True
        self._stop_event.set()
        log.info(
            "async analysis daemon on %s stopped (store at shutdown: %s)",
            self.address,
            flushed,
        )

    async def __aenter__(self) -> "AsyncAnalysisDaemon":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- connection handling -------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.bump("connections")
        bucket = (
            TokenBucket(self._rate, self._burst) if self._rate is not None else None
        )
        write_lock = asyncio.Lock()
        tasks: Set[asyncio.Task] = set()
        me = asyncio.current_task()
        if me is not None:
            self._conn_tasks.add(me)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    return
                if not line:
                    return
                line = line.strip()
                if not line:
                    continue
                try:
                    message = protocol.decode_message(line)
                except ProtocolError as exc:
                    await self._send(
                        writer, write_lock, protocol.error_response("?", str(exc))
                    )
                    return
                if "id" in message:
                    # Pipelined: handle concurrently, match by echoed id.
                    task = asyncio.ensure_future(
                        self._answer(message, writer, write_lock, bucket)
                    )
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
                else:
                    await self._answer(message, writer, write_lock, bucket)
                if message.get("op") == "shutdown":
                    return
        except asyncio.CancelledError:
            # Drain-time teardown: absorb the cancel so the task ends
            # cleanly (the stream machinery would log it otherwise) and
            # fall through to close the writer.
            pass
        except (ConnectionError, OSError):
            pass  # client went away mid-message; nothing to salvage
        finally:
            try:
                if tasks:
                    await asyncio.gather(*tasks, return_exceptions=True)
            except asyncio.CancelledError:
                pass
            if me is not None:
                self._conn_tasks.discard(me)
            try:
                writer.close()
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass

    async def _answer(
        self,
        message: Dict[str, Any],
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        bucket: Optional[TokenBucket],
    ) -> None:
        try:
            response = await self._dispatch(message, bucket)
        except asyncio.CancelledError:
            raise
        except Exception:  # noqa: BLE001 - a request must never kill the loop
            log.exception("request dispatch failed")
            response = protocol.error_response(
                str(message.get("op")), "internal service error"
            )
        await self._send(writer, write_lock, protocol.attach_id(response, message))

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        response: Dict[str, Any],
    ) -> None:
        data = protocol.encode_message(response)
        async with write_lock:
            try:
                writer.write(data)
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # reader side will see EOF and wind the handler down

    # -- dispatch -----------------------------------------------------------

    async def _dispatch(
        self, message: Dict[str, Any], bucket: Optional[TokenBucket]
    ) -> Dict[str, Any]:
        op = message.get("op")
        if op not in protocol.OPS:
            self.stats.bump("rejected")
            return protocol.error_response(
                str(op), "unknown op %r (expected one of %s)" % (op, protocol.OPS)
            )
        try:
            if op == "ping":
                return protocol.ok_response("ping", address=self.address)
            if op == "health":
                return self._handle_health()
            if op == "ready":
                return protocol.ok_response(
                    "ready", ready=self.running and not self._draining
                )
            if op == "submit":
                return await self._handle_submit(message, bucket)
            if op == "status":
                return self._handle_status(message)
            if op == "result":
                return await self._handle_result(message)
            if op == "stats":
                return self._handle_stats()
            if op == "metrics":
                return self._handle_metrics(message)
            if op == "drain":
                return self._handle_drain()
            return self._handle_shutdown()
        except ReproError as exc:
            self.stats.bump("rejected")
            return protocol.error_response(op, str(exc))

    def _handle_health(self) -> Dict[str, Any]:
        return protocol.ok_response(
            "health",
            address=self.address,
            state="draining" if self._draining else "running",
            uptime_seconds=round(self.stats.uptime_seconds, 3),
            pending=len(self._active),
            shards=self.shards.snapshot(),
        )

    def _handle_drain(self) -> Dict[str, Any]:
        log.info("drain requested over the wire")
        self._draining = True
        server = self._server
        if server is not None:
            server.close()
        return protocol.ok_response(
            "drain", draining=True, pending=len(self._active)
        )

    def _handle_shutdown(self) -> Dict[str, Any]:
        log.info("shutdown requested over the wire")
        self._draining = True
        self._stop_event.set()
        return protocol.ok_response("shutdown", stopping=True)

    # -- submit path --------------------------------------------------------

    async def _handle_submit(
        self, message: Dict[str, Any], bucket: Optional[TokenBucket]
    ) -> Dict[str, Any]:
        started = time.perf_counter()
        if self._draining:
            self.stats.bump("rejected")
            return protocol.overloaded_response(
                "submit", 1.0, reason="draining", draining=True
            )
        # Admission gates run before the (comparatively expensive)
        # fingerprint: a shed request costs two integer comparisons.
        if bucket is not None:
            wait = bucket.try_acquire()
            if wait > 0.0:
                self.stats.bump("rejected")
                return protocol.overloaded_response(
                    "submit", wait, reason="rate limited"
                )
        retry_after = self.admission.admit(len(self._active))
        if retry_after is not None:
            self.stats.bump("rejected")
            return protocol.overloaded_response(
                "submit", retry_after, pending=len(self._active)
            )
        payload = intake_payload(message)
        key, proc = await self._fingerprint(payload)
        payload["proc"] = proc
        self.stats.bump("submitted")
        cached, tier = self.store.get(key)
        if cached is not None:
            self.stats.bump("hits_memory" if tier == "memory" else "hits_disk")
            self._submit_seconds.labels(disposition="cached").observe(
                time.perf_counter() - started
            )
            return protocol.ok_response(
                "submit", key=key, state="done", cached=tier, result=cached
            )
        job = self._active.get(key)
        coalesced = job is not None
        if job is not None:
            job.waiters += 1
            self.stats.bump("coalesced")
        else:
            deadline = payload.get("deadline", self._default_deadline)
            if deadline is not None:
                payload["deadline"] = deadline
            if self._bounds_path is not None:
                payload["disk_cache"] = self._bounds_path
            shard = self.shards.route(key)
            if shard is None:
                self.stats.bump("rejected")
                return protocol.overloaded_response(
                    "submit",
                    self.shards.shards[0].breaker.reset_seconds,
                    reason="all shards quarantined",
                )
            if shard.inflight >= self.shard_inflight:
                # Bounded backpressure: the shard already carries its
                # fill of unsettled work, so the burst waits client-side.
                self.stats.bump("rejected")
                return protocol.overloaded_response(
                    "submit",
                    0.25,
                    reason="shard backlog",
                    shard=shard.index,
                )
            self._seq += 1
            job = AsyncJob(
                id="ajob-%d" % self._seq,
                key=key,
                payload=payload,
                priority=int(message.get("priority", self._default_priority)),
                shard=shard.index,
            )
            self._active[key] = job
            self._jobs[job.id] = job
            task = asyncio.ensure_future(self._run_job(job, shard))
            self._job_tasks.add(task)
            task.add_done_callback(self._job_tasks.discard)
        if message.get("wait", True):
            timeout = message.get("wait_timeout")
            try:
                await asyncio.wait_for(
                    asyncio.shield(job.done.wait()),
                    None if timeout is None else float(timeout),
                )
            except asyncio.TimeoutError:
                self._submit_seconds.labels(disposition="timeout").observe(
                    time.perf_counter() - started
                )
                return self._job_response(job, coalesced=coalesced, timed_out=True)
        self._submit_seconds.labels(disposition="executed").observe(
            time.perf_counter() - started
        )
        return self._job_response(job, coalesced=coalesced)

    async def _fingerprint(self, payload: Dict[str, Any]) -> Tuple[str, str]:
        cache_key = json.dumps(payload, sort_keys=True, default=str)
        hit = self._fp_cache.get(cache_key)
        if hit is not None:
            self._fp_cache.move_to_end(cache_key)
            return hit
        loop = asyncio.get_running_loop()
        # fingerprint_job raises ReproError on malformed programs — let
        # it propagate; _dispatch turns it into the error response.
        result = await loop.run_in_executor(
            self._fp_executor, fingerprint_job, payload
        )
        self._fp_cache[cache_key] = result
        self._fp_cache.move_to_end(cache_key)
        while len(self._fp_cache) > FINGERPRINT_CACHE:
            self._fp_cache.popitem(last=False)
        return result

    def _job_response(self, job: AsyncJob, **fields: Any) -> Dict[str, Any]:
        response = protocol.ok_response("submit", **job.snapshot())
        if job.state == "done":
            response["result"] = job.result
        response.update(fields)
        return response

    # -- job execution ------------------------------------------------------

    async def _run_job(self, job: AsyncJob, shard: Shard) -> None:
        job.state = "running"
        job.started_at = time.time()
        started = time.perf_counter()
        label = "failed"
        try:
            label = await self._settle_job(job, shard)
        except asyncio.CancelledError:
            if not job.settled:
                self._finish(job, error="daemon stopped before job settled")
            raise
        except Exception as exc:  # noqa: BLE001 - a job must settle, period
            log.exception("job runner failed on %s", job.id)
            if not job.settled:
                self._finish(job, error="internal job-runner failure: %s" % exc)
        finally:
            self._job_seconds.labels(outcome=label).observe(
                time.perf_counter() - started
            )

    async def _settle_job(self, job: AsyncJob, shard: Shard) -> str:
        """Run ``job`` to settled, rerouting across shards on crashes;
        returns the outcome label for the latency histogram."""
        current: Optional[Shard] = shard
        crashes = 0
        while True:
            if current is None:
                current = self.shards.route(job.key)
            if current is None:
                self.stats.bump("failed")
                self._finish(
                    job, error="WorkerCrashed: every shard is quarantined"
                )
                return "failed"
            job.shard = current.index
            job.attempts += 1
            current.inflight += 1
            self.stats.bump("executed")
            try:
                outcome = await self._execute_on(current, job)
            finally:
                current.inflight -= 1
            if isinstance(outcome, WorkerCrashed):
                crashes += 1
                self._record_crash(current)
                if crashes <= self._crash_retries:
                    self.stats.bump("retried")
                    current = None  # re-route: the breaker walk decides
                    continue
                self.stats.bump("failed")
                self._finish(
                    job, error="%s: %s" % (type(outcome).__name__, outcome)
                )
                return "failed"
            current.breaker.record_success()
            if isinstance(outcome, BaseException):
                # A job-level failure (injected fault, bad input): the
                # shard is fine, the job is not.
                self.stats.bump("failed")
                self._finish(
                    job, error="%s: %s" % (type(outcome).__name__, outcome)
                )
                return "failed"
            self.stats.bump("completed")
            degraded = bool(outcome.get("degraded"))
            if degraded:
                self.stats.bump("degraded")
            self.store.put(job.key, outcome)
            self._finish(job, result=outcome)
            return "degraded" if degraded else "completed"

    async def _execute_on(self, shard: Shard, job: AsyncJob) -> Any:
        """One attempt on one shard → result dict or exception instance.

        A ``BrokenExecutor`` (killed worker process), a submission the
        broken pool refused, or a task timeout all come back as
        :class:`WorkerCrashed` — the caller's signal to blame the shard
        and reroute.  Everything else the job raised is its own failure.
        """
        try:
            future = shard.submit(job.payload)
        except Exception as exc:  # pool broken beyond accepting work
            return WorkerCrashed(
                "shard %d refused the job: %s" % (shard.index, exc), task=job.id
            )
        wrapped = asyncio.wrap_future(future)
        try:
            return await asyncio.wait_for(wrapped, self._task_timeout)
        except asyncio.TimeoutError:
            future.cancel()
            return WorkerCrashed(
                "job %s exceeded the task timeout (%.1fs) on shard %d"
                % (job.id, self._task_timeout or 0.0, shard.index),
                task=job.id,
            )
        except BrokenExecutor as exc:
            return WorkerCrashed(
                "worker process died on shard %d: %s" % (shard.index, exc),
                task=job.id,
            )
        except asyncio.CancelledError:
            raise
        except KeyboardInterrupt as exc:  # injected interrupt (thread shards)
            return exc
        except Exception as exc:  # noqa: BLE001 - job failure is data
            return exc

    def _record_crash(self, shard: Shard) -> None:
        tripped = shard.breaker.record_failure()
        if (tripped or shard.broken()) and shard.index not in self._rebuilding:
            # Quarantined: reroute happens naturally (route() skips open
            # breakers); rebuild the pool off-loop, then half-open the
            # breaker so the next routed job probes the fresh pool.
            self._rebuilding.add(shard.index)
            task = asyncio.ensure_future(self._rebuild_shard(shard))
            self._job_tasks.add(task)
            task.add_done_callback(self._job_tasks.discard)

    async def _rebuild_shard(self, shard: Shard) -> None:
        log.warning("shard %d quarantined; rebuilding its pool", shard.index)
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(self._fp_executor, shard.rebuild)
        finally:
            self._rebuilding.discard(shard.index)
            shard.breaker.force_probe()

    def _finish(self, job: AsyncJob, result=None, error=None) -> None:
        job.result = result
        job.error = error
        job.state = "failed" if error is not None else "done"
        job.finished_at = time.time()
        if self._active.get(job.key) is job:
            del self._active[job.key]
        if job.id in self._jobs:
            self._settled.append(job.id)
        while len(self._settled) > SETTLED_RETENTION:
            self._jobs.pop(self._settled.popleft(), None)
        job.done.set()

    # -- read-side verbs ----------------------------------------------------

    def _handle_status(self, message: Dict[str, Any]) -> Dict[str, Any]:
        job_id = message.get("job")
        if job_id is not None:
            job = self._jobs.get(str(job_id))
            if job is None:
                return protocol.error_response("status", "no job %r" % job_id)
            return protocol.ok_response("status", **job.snapshot())
        jobs = list(self._jobs.values())
        return protocol.ok_response(
            "status",
            address=self.address,
            shards=self.shards.count,
            isolation=self.isolation,
            queue_depth=len(self._active),
            jobs=[j.snapshot() for j in jobs[-50:]],
        )

    async def _handle_result(self, message: Dict[str, Any]) -> Dict[str, Any]:
        job_id = message.get("job")
        if job_id is None:
            return protocol.error_response("result", "result needs a 'job' id")
        job = self._jobs.get(str(job_id))
        if job is None:
            return protocol.error_response("result", "no job %r" % job_id)
        if message.get("wait") and not job.settled:
            timeout = message.get("wait_timeout")
            try:
                await asyncio.wait_for(
                    asyncio.shield(job.done.wait()),
                    None if timeout is None else float(timeout),
                )
            except asyncio.TimeoutError:
                pass
        response = protocol.ok_response("result", **job.snapshot())
        if job.state == "done":
            response["result"] = job.result
        return response

    def _handle_stats(self) -> Dict[str, Any]:
        counters = self.stats.snapshot()
        return protocol.ok_response(
            "stats",
            address=self.address,
            shards=self.shards.count,
            isolation=self.isolation,
            uptime_seconds=round(self.stats.uptime_seconds, 3),
            queue_depth=len(self._active),
            shed=self.admission.shed,
            quarantined=self.shards.quarantined(),
            store=self.store.stats(),
            shard_states=self.shards.snapshot(),
            **counters,
        )

    def _service_families(self) -> List[Family]:
        counters = [
            ({"event": name}, value)
            for name, value in sorted(self.stats.snapshot().items())
        ]
        shard_states = [
            ({"shard": str(s["shard"]), "state": str(s["state"])}, 1)
            for s in self.shards.snapshot()
        ]
        return [
            Family.constant(
                "repro_service_events_total",
                "counter",
                "Daemon lifecycle counters (submissions, cache hits, "
                "failures, ...)",
                counters,
            ),
            Family.constant(
                "repro_service_queue_depth",
                "gauge",
                "Jobs currently unsettled (queued and running)",
                [({}, len(self._active))],
            ),
            Family.constant(
                "repro_service_shed_total",
                "counter",
                "Submissions shed by the queue-depth admission gate",
                [({}, self.admission.shed)],
            ),
            Family.constant(
                "repro_service_shards",
                "gauge",
                "Shard breaker states (1 per shard/state pair)",
                shard_states,
            ),
            Family.constant(
                "repro_service_uptime_seconds",
                "gauge",
                "Seconds since the daemon's stats epoch (monotonic clock)",
                [({}, round(self.stats.uptime_seconds, 3))],
            ),
        ]

    def _handle_metrics(self, message: Dict[str, Any]) -> Dict[str, Any]:
        fmt = message.get("format", "text")
        registries = (GLOBAL_REGISTRY, self.registry)
        if fmt == "json":
            return protocol.ok_response(
                "metrics",
                format="json",
                metrics=obs_exporters.metrics_snapshot(*registries),
            )
        if fmt != "text":
            return protocol.error_response(
                "metrics", "unknown metrics format %r (want 'text' or 'json')" % fmt
            )
        return protocol.ok_response(
            "metrics",
            format="text",
            content_type=PROMETHEUS_CONTENT_TYPE,
            text=obs_exporters.prometheus_text(*registries),
        )


def run_daemon(daemon: AsyncAnalysisDaemon) -> None:
    """Blocking entry point: run ``daemon`` until stop (``repro serve
    --aio`` and tests that want a daemon in a thread)."""
    asyncio.run(daemon.serve_forever())
