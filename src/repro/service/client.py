"""A blocking client for the analysis service.

One persistent connection, one request/response in flight at a time —
the protocol is strictly ordered, so the client is a thin convenience
over :mod:`repro.service.protocol`: it connects lazily, frames the
message, and raises :class:`~repro.util.errors.ServiceError` when the
daemon answers ``ok: false`` or hangs up mid-request.  Job *failures*
are not client errors: a ``state: "failed"`` response comes back as
data, exactly as received.

Robustness (docs/SERVICE.md):

* **Timeouts.**  ``connect_timeout`` (default 5 s) bounds the TCP/unix
  connect — a dead daemon fails fast instead of blocking forever.
  ``timeout`` is the per-read socket timeout and defaults to None
  because a ``submit`` with ``wait: true`` legitimately blocks for the
  analysis duration; set it when you want a hard ceiling.
* **Bounded retry with jitter.**  ``retries`` (default 2) re-runs a
  request after ``ConnectionRefusedError``/missing-socket connects,
  after a connection dropped mid-request (every verb is idempotent:
  submissions are content-keyed and coalesce/cache server-side), and
  after an explicit ``overloaded`` response — honoring the daemon's
  ``retry_after`` hint plus full jitter, so a shedding daemon is not
  hit by a synchronized retry herd.  An exhausted overload budget
  raises :class:`~repro.util.errors.ServiceOverloaded`.

>>> with ServiceClient("unix:/tmp/repro.sock") as client:
...     reply = client.submit(source, proc="login", wait=True)
...     reply["result"]["status"]
'safe'
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Callable, Dict, Optional

from repro.service import protocol
from repro.util.errors import ServiceError, ServiceOverloaded

DEFAULT_CONNECT_TIMEOUT = 5.0
DEFAULT_RETRIES = 2

# Backoff schedule for connect/transport retries: base * 2^k, capped,
# then scaled by full jitter in [0.5, 1.0].
RETRY_BACKOFF = 0.1
RETRY_BACKOFF_CAP = 2.0


def wait_for_service(
    address: str, timeout: float = 5.0, interval: float = 0.05
) -> None:
    """Block until a daemon answers ``ping`` at ``address`` (or raise).

    The boot-ordering helper: ``repro serve`` binds its socket in a
    subprocess, and callers (tests, scripts) need a moment of patience
    before the first real request.
    """
    parsed = protocol.parse_address(address)
    deadline = time.monotonic() + timeout
    last_error: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            sock = protocol.connect_socket(parsed, timeout=interval * 4)
        except OSError as exc:
            last_error = exc
            time.sleep(interval)
            continue
        sock.close()
        return
    raise ServiceError(
        "no analysis service at %s after %.1fs (%s)"
        % (address, timeout, last_error or "no connection attempt succeeded")
    )


class ServiceClient:
    """A blocking NDJSON client bound to one service address."""

    def __init__(
        self,
        address: str,
        timeout: Optional[float] = None,
        connect_timeout: Optional[float] = DEFAULT_CONNECT_TIMEOUT,
        retries: int = DEFAULT_RETRIES,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
    ):
        self.address = address
        self._parsed = protocol.parse_address(address)
        self._timeout = timeout
        self._connect_timeout = connect_timeout
        self._retries = max(0, int(retries))
        self._sleep = sleep
        self._rng = rng or random.Random()
        self._sock: Optional[socket.socket] = None
        self._wire = None

    # -- connection --------------------------------------------------------

    def connect(self) -> "ServiceClient":
        if self._sock is None:
            try:
                self._sock = protocol.connect_socket(
                    self._parsed, timeout=self._connect_timeout
                )
            except OSError as exc:
                raise ServiceError(
                    "cannot reach analysis service at %s: %s" % (self.address, exc)
                ) from exc
            # Per-read timeout after connecting: None means "wait for
            # the analysis", a float means "fail this read loudly".
            self._sock.settimeout(self._timeout)
            self._wire = self._sock.makefile("rwb")
        return self

    def close(self) -> None:
        if self._wire is not None:
            try:
                self._wire.close()
            except OSError:
                pass
            self._wire = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request plumbing --------------------------------------------------

    def _backoff(self, attempt: int, floor: float = 0.0) -> None:
        """Sleep before retry ``attempt`` (1-based): capped exponential
        with full jitter, never below the daemon's own hint."""
        delay = min(RETRY_BACKOFF * (2.0 ** (attempt - 1)), RETRY_BACKOFF_CAP)
        delay = max(floor, delay) * self._rng.uniform(0.5, 1.0)
        if floor > 0:
            delay = max(delay, floor)
        if delay > 0:
            self._sleep(delay)

    def _request_once(self, message: Dict[str, Any]) -> Dict[str, Any]:
        self.connect()
        assert self._wire is not None
        try:
            protocol.send_message(self._wire, message)
            response = protocol.read_message(self._wire)
        except (OSError, ValueError) as exc:
            self.close()
            raise ServiceError(
                "analysis service at %s dropped the connection: %s"
                % (self.address, exc)
            ) from exc
        if response is None:
            self.close()
            raise ServiceError(
                "analysis service at %s closed the connection mid-request"
                % self.address
            )
        return response

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one message and return the raw response dict.

        Retries transport failures (connection refused, daemon hung up
        mid-request) up to the bounded budget with jittered backoff;
        raises :class:`ServiceError` once it is exhausted.  Returns
        ``ok: false`` responses as-is — use the verb helpers for
        checked calls.
        """
        attempt = 0
        while True:
            try:
                return self._request_once(message)
            except ServiceError:
                attempt += 1
                if attempt > self._retries:
                    raise
                self._backoff(attempt)

    def _checked(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """``request`` + ok-check + bounded retry on ``overloaded``."""
        attempt = 0
        while True:
            response = self.request(message)
            if response.get("ok"):
                return response
            if response.get("overloaded"):
                retry_after = float(response.get("retry_after", 0.0) or 0.0)
                attempt += 1
                if attempt > self._retries:
                    raise ServiceOverloaded(
                        "service %s request shed by %s after %d attempt(s) (%s)"
                        % (
                            message.get("op"),
                            self.address,
                            attempt,
                            response.get("error", "overloaded"),
                        ),
                        retry_after=retry_after,
                    )
                self._backoff(attempt, floor=retry_after)
                continue
            raise ServiceError(
                "service %s request failed: %s"
                % (message.get("op"), response.get("error", "unknown error"))
            )

    # -- verbs -------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self._checked({"op": "ping"})

    def health(self) -> Dict[str, Any]:
        return self._checked({"op": "health"})

    def ready(self) -> bool:
        """Readiness as a bool (the load-balancer probe)."""
        return bool(self._checked({"op": "ready"}).get("ready"))

    def submit(
        self,
        source: str,
        proc: Optional[str] = None,
        wait: bool = True,
        priority: int = 0,
        wait_timeout: Optional[float] = None,
        **knobs: Any,
    ) -> Dict[str, Any]:
        """Submit one analysis job.  ``knobs`` are the
        :data:`repro.core.blazer.JOB_FIELDS` configuration fields
        (``domain``, ``observer``, ``threshold``, ``deadline``, ...)."""
        message: Dict[str, Any] = {
            "op": "submit",
            "source": source,
            "wait": wait,
            "priority": priority,
        }
        if proc is not None:
            message["proc"] = proc
        if wait_timeout is not None:
            message["wait_timeout"] = wait_timeout
        for name, value in knobs.items():
            if value is not None:
                message[name] = value
        return self._checked(message)

    def status(self, job: Optional[str] = None) -> Dict[str, Any]:
        message: Dict[str, Any] = {"op": "status"}
        if job is not None:
            message["job"] = job
        return self._checked(message)

    def result(
        self,
        job: str,
        wait: bool = False,
        wait_timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        message: Dict[str, Any] = {"op": "result", "job": job, "wait": wait}
        if wait_timeout is not None:
            message["wait_timeout"] = wait_timeout
        return self._checked(message)

    def stats(self) -> Dict[str, Any]:
        return self._checked({"op": "stats"})

    def metrics(self, format: str = "text") -> Dict[str, Any]:
        """The daemon's unified metrics snapshot: Prometheus text
        exposition under ``text`` (the default; response field ``text``),
        a JSON snapshot under ``json`` (response field ``metrics``)."""
        return self._checked({"op": "metrics", "format": format})

    def drain(self) -> Dict[str, Any]:
        """Ask the daemon to drain gracefully (keep serving reads)."""
        return self._checked({"op": "drain"})

    def shutdown(self) -> Dict[str, Any]:
        response = self._checked({"op": "shutdown"})
        self.close()
        return response
