"""The daemon's result store: a memory tier over the persistent tier.

``get`` answers from process memory first (free), then from the
disk-backed :class:`~repro.perf.disktier.DiskTier` (checksum-verified
JSONL — survives daemon restarts and is shared across worker
processes), promoting disk hits into memory.  ``put`` writes through.

What is cached is a *policy* decision made here, once: only settled
results that are **not degraded** persist.  A degraded verdict says "a
budget ran out", which is a fact about that request's deadline, not
about the program — serving it to a patient caller would waste their
larger budget.  Failed jobs are never cached for the same reason:
crashes and injected faults are circumstances, not answers.

The memory tier is a bounded LRU (``max_memory`` entries): a resident
daemon's footprint must not grow with every distinct submission it has
ever answered.  Evicting a memory entry costs at most a disk re-read —
the persistent tier keeps everything.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.perf.disktier import DiskTier

# Default memory-tier capacity; the working set of distinct verdicts a
# daemon serves hot.  Verdict dicts are small (a few KB), so this is
# megabytes, not gigabytes.
MEMORY_TIER_LIMIT = 1024


def cacheable(result: Dict[str, Any]) -> bool:
    """May this job result be served to future identical requests?"""
    return not result.get("degraded", False)


class ResultStore:
    """Two result tiers behind one ``get``/``put`` pair."""

    def __init__(self, path: Optional[str] = None, max_memory: int = MEMORY_TIER_LIMIT):
        self._lock = threading.Lock()
        self._memory: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._max_memory = max(1, max_memory)
        self._disk = DiskTier(path) if path else None

    @property
    def disk_path(self) -> Optional[str]:
        return self._disk.path if self._disk is not None else None

    def get(self, key: str) -> Tuple[Optional[Dict[str, Any]], Optional[str]]:
        """``(result, tier)`` where tier is ``"memory"``/``"disk"``/None."""
        with self._lock:
            result = self._memory.get(key)
            if result is not None:
                self._memory.move_to_end(key)
                return result, "memory"
            if self._disk is not None:
                payload = self._disk.get(key)
                if isinstance(payload, dict):
                    self._remember(key, payload)
                    return payload, "disk"
            return None, None

    def _remember(self, key: str, result: Dict[str, Any]) -> None:
        """Insert into the memory LRU, evicting least-recently-used
        entries beyond capacity (lock held by the caller)."""
        self._memory[key] = result
        self._memory.move_to_end(key)
        while len(self._memory) > self._max_memory:
            self._memory.popitem(last=False)

    def put(self, key: str, result: Dict[str, Any]) -> bool:
        """Write through both tiers; False when the result is not
        cacheable (degraded) and was dropped."""
        if not cacheable(result):
            return False
        with self._lock:
            self._remember(key, result)
            if self._disk is not None:
                self._disk.put(key, result)
        return True

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            out: Dict[str, Any] = {"memory_entries": len(self._memory)}
            if self._disk is not None:
                out["disk_entries"] = len(self._disk)
                out["disk_quarantined"] = self._disk.quarantined
                out["disk_path"] = self._disk.path
            return out

    def flush(self) -> Dict[str, Any]:
        """The drain hook: make sure everything settled is durable and
        report the tier sizes.

        Writes are already write-through with an fsync per record
        (:class:`~repro.perf.disktier.DiskTier` over the crash-safe
        journal), so there is no buffered state to push out; flushing
        re-reads the disk index — folding in any records appended by
        worker processes sharing the file — and returns the final
        stats, which the drain path logs as its durability receipt.
        """
        with self._lock:
            if self._disk is not None:
                self._disk.refresh()
        return self.stats()

    def clear(self) -> None:
        with self._lock:
            self._memory.clear()
            if self._disk is not None:
                self._disk.clear()
