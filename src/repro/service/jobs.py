"""Jobs, request fingerprints, and the coalescing priority queue.

A *job* is one analysis request in flight.  Its identity for
deduplication is :func:`job_key` — a content fingerprint, not the raw
request text: the structural part reuses
:func:`repro.perf.fingerprint.module_fingerprint` over the compiled
CFGs of the requested procedure *and every procedure it can reach
through calls* (interprocedural summaries make callee bodies
outcome-relevant, so two programs with an identical entry procedure but
different callee implementations must never share a key), so two
submissions that differ only in formatting or comments (or that reach
identical CFGs from different spellings) coalesce onto a single Blazer
execution.  The configuration knobs that can change the outcome
(domain, observer, bit width, budget limits —
:data:`repro.core.blazer.JOB_FIELDS`) are hashed alongside, so a
5-second-deadline request never collides with an unbudgeted one.

:class:`JobQueue` is the scheduler's heart: a priority heap (higher
``priority`` first, FIFO within a priority) under one condition
variable.  ``submit`` returns an existing queued/running job when the
key matches — *coalescing*: the duplicate submission costs a dict
lookup, both waiters get the same result object, and the daemon counts
it.  Completed jobs leave the active index, so a resubmission after
completion is answered by the result store tiers instead
(:mod:`repro.service.store`).
"""

from __future__ import annotations

import hashlib
import heapq
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Deque, List, Optional, Tuple

from repro.core.blazer import JOB_FIELDS, resolve_proc
from repro.core.pdsc import PDSC_JOB_FIELDS
from repro.leakage.job import LEAKAGE_JOB_FIELDS
from repro.util.errors import ReproError

# kind → the payload fields that participate in its fingerprint.  The
# implicit default kind "analyze" (Blazer) predates the discriminator,
# so its knob set stays exactly JOB_FIELDS and its fingerprints are
# unchanged; other kinds additionally hash the kind itself, so a pdsc
# request never coalesces with a Blazer request over the same program.
KIND_FIELDS = {
    "analyze": JOB_FIELDS,
    "pdsc": PDSC_JOB_FIELDS,
    "leakage": LEAKAGE_JOB_FIELDS,
}

# Job lifecycle: queued → running → done | failed.
STATES = ("queued", "running", "done", "failed")

# Settled jobs kept around for `status`/`result` lookups.  A resident
# daemon must not grow with its lifetime submission count: beyond this
# many settled jobs the oldest are evicted (their results live on in the
# ResultStore; only the lifecycle record goes away).
SETTLED_RETENTION = 512


def job_key(payload: Dict[str, Any]) -> str:
    """The content fingerprint identical submissions share."""
    return fingerprint_job(payload)[0]


def intake_payload(message: Dict[str, Any]) -> Dict[str, Any]:
    """Copy the job-defining fields of a wire ``submit`` message into a
    fresh payload: ``source``/``proc``/``kind`` plus the knob set of
    the declared kind.  This is the single definition both front ends
    (sync daemon and asyncio tier) use, so a ``kind: "pdsc"`` request
    keeps its kind-specific knobs (``epsilon``, ...) on the way in.
    Unknown kinds keep only the core fields and are rejected with the
    canonical error by :func:`fingerprint_job`.
    """
    payload = {
        k: message[k]
        for k in ("source", "proc", "kind")
        if message.get(k) is not None
    }
    kind = str(message.get("kind") or "analyze")
    for knob in KIND_FIELDS.get(kind, ()):
        if knob not in payload and message.get(knob) is not None:
            payload[knob] = message[knob]
    return payload


def fingerprint_job(payload: Dict[str, Any]) -> Tuple[str, str]:
    """``(key, proc)``: the content fingerprint identical submissions
    share, plus the procedure it resolved to.

    Compiles the payload's program and fingerprints the requested
    procedure's CFG plus every outcome-relevant knob.  Raises
    :class:`~repro.util.errors.ReproError` when the program is
    malformed or the procedure does not exist — submit-time validation,
    so a bad request fails its sender instead of a worker.
    """
    from repro.bytecode import compile_program, verify_module
    from repro.ir import lift_module
    from repro.lang import frontend
    from repro.perf.fingerprint import module_fingerprint

    source = payload.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ReproError("job payload needs a non-empty 'source'")
    kind = str(payload.get("kind") or "analyze")
    fields = KIND_FIELDS.get(kind)
    if fields is None:
        raise ReproError(
            "unknown job kind %r (available: %s)"
            % (kind, ", ".join(sorted(KIND_FIELDS)))
        )
    module = compile_program(frontend(source))
    verify_module(module)
    cfgs = lift_module(module)
    proc = resolve_proc(cfgs, payload.get("proc"))
    h = hashlib.sha256()
    # The call-graph closure, not just cfgs[proc]: the analysis reads
    # callee bodies through interprocedural summaries, so they are part
    # of the request's content.
    h.update(module_fingerprint(cfgs, proc).encode("ascii"))
    knobs = {
        k: payload.get(k)
        for k in fields
        if k not in ("source", "proc", "kind") and payload.get(k) is not None
    }
    if kind != "analyze":
        knobs["kind"] = kind
    h.update(json.dumps(knobs, sort_keys=True, separators=(",", ":")).encode("utf-8"))
    return h.hexdigest(), proc


@dataclass
class Job:
    """One submission's lifecycle record."""

    id: str
    key: str
    payload: Dict[str, Any]
    priority: int = 0
    deadline: Optional[float] = None  # per-job wall-clock Budget seconds
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    attempts: int = 0  # execution attempts consumed (1 = no retries)
    waiters: int = 1  # submissions coalesced onto this job
    done: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def settled(self) -> bool:
        return self.state in ("done", "failed")

    def snapshot(self) -> Dict[str, Any]:
        """The JSON-safe view the ``status`` verb returns."""
        out: Dict[str, Any] = {
            "job": self.id,
            "key": self.key,
            "state": self.state,
            "priority": self.priority,
            "proc": self.payload.get("proc"),
            "waiters": self.waiters,
            "attempts": self.attempts,
            "submitted_at": round(self.submitted_at, 6),
        }
        if self.deadline is not None:
            out["deadline"] = self.deadline
        if self.started_at is not None:
            out["started_at"] = round(self.started_at, 6)
        if self.finished_at is not None:
            out["finished_at"] = round(self.finished_at, 6)
        if self.error is not None:
            out["error"] = self.error
        return out


class JobQueue:
    """Priority queue of jobs with in-flight deduplication.

    Thread-safe; one lock + condition covers the heap and the indexes.
    ``submit`` coalesces onto an *active* (queued or running) job with
    the same key; settled jobs never absorb new submissions — result
    reuse after completion is the store's business, not the queue's.

    Settled jobs are retained for ``max_settled`` lookups and then
    evicted oldest-first, so the queue's footprint is bounded by the
    *concurrent* load, not the lifetime submission count.  Eviction only
    drops the queue's own reference: handlers still blocked on an
    evicted job's ``done`` event hold the object alive themselves.
    """

    def __init__(self, max_settled: int = SETTLED_RETENTION):
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._heap: List[Tuple[int, int, str]] = []  # (-priority, seq, job id)
        self._seq = 0
        self._jobs: Dict[str, Job] = {}
        self._active: Dict[str, Job] = {}  # key → queued/running job
        self._settled: Deque[str] = deque()  # settled job ids, oldest first
        self._max_settled = max(1, max_settled)
        self._closed = False
        self.coalesced = 0

    def submit(
        self,
        payload: Dict[str, Any],
        key: str,
        priority: int = 0,
        deadline: Optional[float] = None,
    ) -> Tuple[Job, bool]:
        """Enqueue a job (or coalesce).  Returns ``(job, coalesced)``."""
        with self._cond:
            if self._closed:
                raise ReproError("job queue is closed")
            existing = self._active.get(key)
            if existing is not None:
                existing.waiters += 1
                self.coalesced += 1
                return existing, True
            self._seq += 1
            job = Job(
                id="job-%d" % self._seq,
                key=key,
                payload=payload,
                priority=priority,
                deadline=deadline,
            )
            self._jobs[job.id] = job
            self._active[key] = job
            heapq.heappush(self._heap, (-priority, self._seq, job.id))
            self._cond.notify()
            return job, False

    def pop(self, timeout: Optional[float] = None) -> Optional[Job]:
        """The highest-priority queued job, marked running; None on
        timeout or when the queue has been closed and drained."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self._heap:
                if self._closed:
                    return None
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                self._cond.wait(remaining)
            _, _, job_id = heapq.heappop(self._heap)
            job = self._jobs[job_id]
            job.state = "running"
            job.started_at = time.time()
            return job

    def finish(
        self,
        job: Job,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
    ) -> None:
        """Settle a job: exactly one of ``result`` / ``error``."""
        with self._cond:
            job.result = result
            job.error = error
            job.state = "failed" if error is not None else "done"
            job.finished_at = time.time()
            if self._active.get(job.key) is job:
                del self._active[job.key]
            if job.id in self._jobs:
                self._settled.append(job.id)
            while len(self._settled) > self._max_settled:
                self._jobs.pop(self._settled.popleft(), None)
            # Wake wait_idle: a drain is watching the active index empty.
            self._cond.notify_all()
        job.done.set()

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted job has settled (the active index
        is empty).  This is the drain primitive: ``close()`` stops new
        submissions, the workers keep popping until the heap is empty,
        and ``wait_idle`` tells the caller when the last in-flight job
        has been settled — *then* it is safe to tear the daemon down.

        Returns False if ``timeout`` elapsed with work still in flight.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._active:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cond.wait(remaining)
            return True

    def pending(self) -> int:
        """Unsettled jobs (queued *and* running) — the admission-control
        load signal, as opposed to :meth:`depth` (queued only)."""
        with self._lock:
            return len(self._active)

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def depth(self) -> int:
        """Queued (not yet running) jobs."""
        with self._lock:
            return len(self._heap)

    def close(self) -> None:
        """Stop accepting submissions and wake every blocked ``pop``."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
