"""The analysis service: a resident daemon that amortizes the Blazer
pipeline across requests (docs/SERVICE.md).

One-shot ``repro analyze`` pays full process startup and a cold cache
per query.  The service keeps the expensive pieces resident: a
:class:`~repro.service.daemon.AnalysisDaemon` owns a prioritized
:class:`~repro.service.jobs.JobQueue` (identical in-flight submissions
coalesce onto one job, keyed by content fingerprints), a crash-isolated
worker pool, and a persistent disk-backed result store shared across
restarts and worker processes.  Clients speak a newline-delimited-JSON
protocol over a Unix or TCP socket via
:class:`~repro.service.client.ServiceClient`, or from the shell with
``repro serve`` / ``repro submit`` / ``repro status``.

For high-concurrency deployments the asyncio tier
(:class:`~repro.service.aio.AsyncAnalysisDaemon`, ``repro serve
--aio``) puts one event loop in front of N breaker-guarded worker
shards (:mod:`repro.service.shard`) with admission control
(:mod:`repro.service.admission`), pipelined connections
(:class:`~repro.service.aioclient.AsyncServiceClient`), and graceful
SIGTERM drain — same wire protocol, same results.
"""

from repro.service.admission import AdmissionController, TokenBucket
from repro.service.client import ServiceClient
from repro.service.daemon import AnalysisDaemon
from repro.service.jobs import Job, JobQueue, job_key
from repro.service.store import ResultStore

__all__ = [
    "AdmissionController",
    "AnalysisDaemon",
    "AsyncAnalysisDaemon",
    "AsyncServiceClient",
    "ServiceClient",
    "Job",
    "JobQueue",
    "TokenBucket",
    "job_key",
    "ResultStore",
]


def __getattr__(name):  # lazy: keep `import repro.service` free of asyncio
    if name == "AsyncAnalysisDaemon":
        from repro.service.aio import AsyncAnalysisDaemon

        return AsyncAnalysisDaemon
    if name == "AsyncServiceClient":
        from repro.service.aioclient import AsyncServiceClient

        return AsyncServiceClient
    raise AttributeError("module %r has no attribute %r" % (__name__, name))
