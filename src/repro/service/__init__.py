"""The analysis service: a resident daemon that amortizes the Blazer
pipeline across requests (docs/SERVICE.md).

One-shot ``repro analyze`` pays full process startup and a cold cache
per query.  The service keeps the expensive pieces resident: a
:class:`~repro.service.daemon.AnalysisDaemon` owns a prioritized
:class:`~repro.service.jobs.JobQueue` (identical in-flight submissions
coalesce onto one job, keyed by content fingerprints), a crash-isolated
worker pool, and a persistent disk-backed result store shared across
restarts and worker processes.  Clients speak a newline-delimited-JSON
protocol over a Unix or TCP socket via
:class:`~repro.service.client.ServiceClient`, or from the shell with
``repro serve`` / ``repro submit`` / ``repro status``.
"""

from repro.service.client import ServiceClient
from repro.service.daemon import AnalysisDaemon
from repro.service.jobs import Job, JobQueue, job_key
from repro.service.store import ResultStore

__all__ = [
    "AnalysisDaemon",
    "ServiceClient",
    "Job",
    "JobQueue",
    "job_key",
    "ResultStore",
]
