"""Chaos-aware load generator with a zero-loss correctness ledger.

``repro loadgen`` is the proof harness for the async service tier
(docs/SERVICE.md): it boots an in-process
:class:`~repro.service.aio.AsyncAnalysisDaemon` (or targets a running
one with ``--connect``), replays a mixed benchmark + generated-program
workload from N concurrent clients, and *audits* the run rather than
merely timing it:

* **Ground truth first.**  Every distinct program's expected verdict
  digest is computed serially through the seed engine
  (:func:`repro.core.blazer.analyze_job`) before any load or fault
  plan exists.  A digest is the cross-process equality witness, so the
  audit is exact: a wrongly-settled job cannot hide behind load.
* **A ledger, not a counter.**  Each client request becomes exactly one
  ledger entry — ``done`` (digest checked), ``failed`` (the daemon
  settled it as failed), or ``lost`` (the harness deadline expired
  first).  The acceptance bar is zero lost, zero wrong digests, and
  failures only when a fault plan makes them legitimate.
* **Chaos.**  ``faults`` takes a ``REPRO_FAULTS`` spec string
  (worker crash / delay / corrupt — docs/RESILIENCE.md) installed only
  for the load phase; ``crash`` kinds require process isolation and are
  forced ``pool``-only so a worker dies, never the harness.
* **Rolling restart.**  ``restart_after`` drains the daemon gracefully
  mid-run and boots a fresh one on the same address and cache dir;
  clients ride through on retries, and previously-settled jobs must be
  served from the disk tier.

Latency lands both in an :mod:`repro.obs.metrics` histogram — whose
interpolated :meth:`~repro.obs.metrics.Child.quantile` estimates are
published next to the exact percentiles so the two views can be
compared — and in the raw list the report's p50/p99 come from.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import random
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.blazer import analyze_job
from repro.obs.metrics import MetricsRegistry
from repro.resilience import faults
from repro.service.aio import AsyncAnalysisDaemon
from repro.service.aioclient import AsyncServiceClient
from repro.util.errors import ReproError, ServiceError, ServiceOverloaded

log = logging.getLogger(__name__)

# How a client paces itself when the daemon sheds or vanishes: sleep
# this floor (scaled by jitter and the daemon's retry_after hint) and
# try again until the harness deadline says the request is lost.
RETRY_FLOOR = 0.05
RETRY_CEIL = 1.0


@dataclass
class LoadgenConfig:
    """One load scenario (CLI flags map 1:1 — see ``repro loadgen``)."""

    clients: int = 1000
    requests_per_client: int = 4
    shards: int = 2
    workers_per_shard: int = 1
    isolation: str = "thread"
    generated: int = 12  # diffcheck-generated programs in the mix
    seed: int = 20260808
    connect: Optional[str] = None  # external daemon; None boots in-process
    address: Optional[str] = None  # explicit bind address for the in-process daemon
    cache_dir: Optional[str] = None
    max_pending: int = 256
    shard_inflight: int = 64
    rate: Optional[float] = None
    task_timeout: Optional[float] = None
    faults: Optional[str] = None  # REPRO_FAULTS spec for the load phase
    restart_after: Optional[int] = None  # settled count triggering drain+restart
    deadline: float = 120.0  # harness wall ceiling; beyond it requests are lost
    client_retries: int = 2  # AsyncServiceClient transport/overload budget

    @property
    def total_requests(self) -> int:
        return self.clients * self.requests_per_client


@dataclass
class _RunState:
    """Shared mutable run state (loop-confined)."""

    daemon: Optional[AsyncAnalysisDaemon] = None
    address: str = ""
    settled: int = 0
    restarts: int = 0
    ledger: List[Dict[str, Any]] = field(default_factory=list)
    latencies: List[float] = field(default_factory=list)


# -- workload ---------------------------------------------------------------


def build_workload(config: LoadgenConfig) -> List[Dict[str, Any]]:
    """The program mix: every micro benchmark plus ``generated``
    deterministic diffcheck programs for campaign ``seed``."""
    from repro.benchsuite import MICRO_BENCHMARKS
    from repro.diffcheck.generator import GeneratorConfig, generate_program

    programs: List[Dict[str, Any]] = [
        {"name": b.name, "source": b.source, "proc": b.proc}
        for b in MICRO_BENCHMARKS
    ]
    gen_config = GeneratorConfig()
    for index in range(max(0, config.generated)):
        generated = generate_program(config.seed, index, gen_config)
        programs.append(
            {"name": generated.name, "source": generated.source, "proc": "main"}
        )
    return programs


def compute_expected(programs: List[Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """Serial seed-engine ground truth, computed before load and before
    any fault plan is active."""
    expected: Dict[str, Dict[str, Any]] = {}
    for program in programs:
        result = analyze_job(
            {"source": program["source"], "proc": program["proc"]}
        )
        expected[program["name"]] = {
            "digest": result["digest"],
            "status": result["status"],
        }
    return expected


# -- fault plan -------------------------------------------------------------


def _activate_faults(config: LoadgenConfig) -> Optional[str]:
    """Install the chaos plan for the load phase; returns the normalized
    spec text (also exported for pool workers), or None."""
    if not config.faults:
        return None
    plan = faults.FaultPlan.from_string(config.faults, seed=config.seed)
    for spec in plan.specs:
        if spec.kind == "crash":
            if config.isolation != "process":
                raise ReproError(
                    "crash faults need --isolation process: a crash in a "
                    "thread shard would kill the daemon, not a worker"
                )
            # A worker dies, never the harness — and at most once across
            # the run: hit counters are per process, so a bare crash@1
            # would kill every freshly-rebuilt worker on its first job
            # and no amount of rerouting could ever settle anything.
            spec.pool_only = True
            spec.once = True
        if spec.kind == "interrupt" and config.isolation != "process":
            raise ReproError(
                "interrupt faults need --isolation process under loadgen"
            )
    ledger: Optional[str] = None
    if any(spec.once for spec in plan.specs):
        import tempfile

        ledger = tempfile.mkdtemp(prefix="repro-fault-ledger-")
        os.environ[faults.ENV_LEDGER] = ledger
        plan.ledger = ledger
    text = plan.describe()
    os.environ[faults.ENV_FAULTS] = text  # crosses the pool boundary
    os.environ[faults.ENV_SEED] = str(config.seed)
    faults.install(plan)
    return text


def _deactivate_faults(active: Optional[str]) -> None:
    if active is None:
        return
    os.environ.pop(faults.ENV_FAULTS, None)
    os.environ.pop(faults.ENV_SEED, None)
    os.environ.pop(faults.ENV_LEDGER, None)
    faults.clear()


# -- the clients ------------------------------------------------------------


async def _one_request(
    client: AsyncServiceClient,
    program: Dict[str, Any],
    expected: Dict[str, Dict[str, Any]],
    state: _RunState,
    rng: random.Random,
    deadline_ts: float,
) -> Dict[str, Any]:
    """Drive one logical request to a settled ledger entry, retrying
    through overload, drain, and restart until the harness deadline."""
    entry: Dict[str, Any] = {"program": program["name"], "attempts": 0}
    while True:
        remaining = deadline_ts - time.monotonic()
        if remaining <= 0:
            entry["outcome"] = "lost"
            return entry
        entry["attempts"] += 1
        started = time.perf_counter()
        try:
            response = await asyncio.wait_for(
                client.submit(
                    program["source"], proc=program["proc"], wait=True
                ),
                timeout=remaining,
            )
        except ServiceOverloaded as exc:
            pause = min(RETRY_CEIL, max(RETRY_FLOOR, exc.retry_after or 0.0))
            await asyncio.sleep(pause * rng.uniform(0.5, 1.5))
            continue
        except (ServiceError, asyncio.TimeoutError):
            # Daemon draining/restarting (dead socket, dropped line):
            # pause, reconnect, resend — submissions are idempotent.
            await asyncio.sleep(RETRY_FLOOR * rng.uniform(1.0, 3.0))
            continue
        latency = time.perf_counter() - started
        job_state = response.get("state")
        if job_state == "done":
            state.latencies.append(latency)
            digest = (response.get("result") or {}).get("digest")
            want = expected[program["name"]]["digest"]
            entry["outcome"] = "done"
            entry["digest_ok"] = digest == want
            entry["cached"] = response.get("cached")
            state.settled += 1
            return entry
        if job_state == "failed":
            state.latencies.append(latency)
            entry["outcome"] = "failed"
            entry["error"] = response.get("error")
            state.settled += 1
            return entry
        # queued/running (a wait that returned early): ask again.
        await asyncio.sleep(RETRY_FLOOR)


async def _client_task(
    cid: int,
    config: LoadgenConfig,
    programs: List[Dict[str, Any]],
    expected: Dict[str, Dict[str, Any]],
    state: _RunState,
    deadline_ts: float,
) -> None:
    rng = random.Random(config.seed * 7919 + cid)
    client = AsyncServiceClient(
        state.address, retries=config.client_retries, rng=rng
    )
    try:
        for r in range(config.requests_per_client):
            # Deterministic mixed draw: every client walks the program
            # list at a coprime stride, so the mix hits every program.
            program = programs[(cid * 13 + r * 7) % len(programs)]
            entry = await _one_request(
                client, program, expected, state, rng, deadline_ts
            )
            entry["client"] = cid
            entry["request"] = r
            state.ledger.append(entry)
    finally:
        await client.close()


# -- restart controller -----------------------------------------------------


def _boot_daemon(config: LoadgenConfig, address: str) -> AsyncAnalysisDaemon:
    return AsyncAnalysisDaemon(
        address,
        shards=config.shards,
        workers_per_shard=config.workers_per_shard,
        cache_dir=config.cache_dir,
        isolation=config.isolation,
        max_pending=config.max_pending,
        shard_inflight=config.shard_inflight,
        rate=config.rate,
        task_timeout=config.task_timeout,
    )


async def _restart_controller(
    config: LoadgenConfig, state: _RunState, deadline_ts: float
) -> None:
    """Drain the daemon gracefully once ``restart_after`` requests have
    settled, then boot a fresh one on the same address and cache dir —
    the rolling-restart scenario.  Clients ride through on retries."""
    assert config.restart_after is not None
    while state.settled < config.restart_after:
        if time.monotonic() >= deadline_ts:
            return
        await asyncio.sleep(0.02)
    old = state.daemon
    assert old is not None
    log.info(
        "loadgen restart: draining daemon after %d settled request(s)",
        state.settled,
    )
    await old.stop(drain_timeout=min(15.0, config.deadline / 4))
    fresh = _boot_daemon(config, state.address)
    await fresh.start()
    state.daemon = fresh
    state.restarts += 1


# -- report -----------------------------------------------------------------


def verify_ledger(
    report: Dict[str, Any], faults_active: bool
) -> List[str]:
    """The acceptance audit: the list of violations (empty = pass)."""
    violations: List[str] = []
    if report["requests_settled"] + report["requests_lost"] != report["requests"]:
        violations.append(
            "ledger accounts for %d of %d requests"
            % (report["requests_settled"] + report["requests_lost"], report["requests"])
        )
    if report["requests_lost"]:
        violations.append("%d request(s) lost" % report["requests_lost"])
    if report["wrong_digests"]:
        violations.append(
            "%d settled job(s) with a digest differing from the seed engine"
            % report["wrong_digests"]
        )
    if report["requests_failed"] and not faults_active:
        violations.append(
            "%d job(s) failed with no fault plan active"
            % report["requests_failed"]
        )
    if report["duplicate_entries"]:
        violations.append(
            "%d duplicate ledger entr(ies)" % report["duplicate_entries"]
        )
    return violations


def _percentile(sorted_values: List[float], q: float) -> Optional[float]:
    if not sorted_values:
        return None
    rank = max(0, min(len(sorted_values) - 1, int(round(q * len(sorted_values))) - 1))
    return sorted_values[rank]


# -- entry points -----------------------------------------------------------


async def _run(config: LoadgenConfig) -> Dict[str, Any]:
    _raise_fd_soft_limit(config.clients * 2 + 256)
    programs = build_workload(config)
    expected = compute_expected(programs)

    state = _RunState()
    registry = MetricsRegistry()
    hist = registry.histogram(
        "repro_loadgen_request_seconds",
        "Client-observed wall seconds per settled loadgen request",
    )

    if config.connect:
        state.address = config.connect
    else:
        state.address = config.address or "unix:%s" % os.path.join(
            config.cache_dir or ".", "loadgen-%d.sock" % os.getpid()
        )
        state.daemon = _boot_daemon(config, state.address)
        await state.daemon.start()

    active_faults = _activate_faults(config)
    started = time.perf_counter()
    deadline_ts = time.monotonic() + config.deadline
    try:
        tasks = [
            asyncio.ensure_future(
                _client_task(cid, config, programs, expected, state, deadline_ts)
            )
            for cid in range(config.clients)
        ]
        if config.restart_after is not None and state.daemon is not None:
            tasks.append(
                asyncio.ensure_future(
                    _restart_controller(config, state, deadline_ts)
                )
            )
        await asyncio.gather(*tasks)
    finally:
        _deactivate_faults(active_faults)
        elapsed = time.perf_counter() - started
        daemon_stats: Optional[Dict[str, Any]] = None
        if state.daemon is not None:
            daemon_stats = {
                **state.daemon.stats.snapshot(),
                "shed": state.daemon.admission.shed,
                "quarantined": state.daemon.shards.quarantined(),
                "shard_states": state.daemon.shards.snapshot(),
                "store": state.daemon.store.stats(),
            }
            await state.daemon.stop()

    for latency in state.latencies:
        hist.observe(latency)
    child = hist.labels()
    ordered = sorted(state.latencies)
    ledger = state.ledger
    done = sum(1 for e in ledger if e.get("outcome") == "done")
    failed = sum(1 for e in ledger if e.get("outcome") == "failed")
    lost = sum(1 for e in ledger if e.get("outcome") == "lost")
    wrong = sum(
        1 for e in ledger if e.get("outcome") == "done" and not e.get("digest_ok")
    )
    seen = set()
    duplicates = 0
    for e in ledger:
        key = (e.get("client"), e.get("request"))
        if key in seen:
            duplicates += 1
        seen.add(key)
    report: Dict[str, Any] = {
        "config": asdict(config),
        "programs": len(programs),
        "requests": config.total_requests,
        "requests_settled": done + failed,
        "requests_done": done,
        "requests_failed": failed,
        "requests_lost": lost,
        "wrong_digests": wrong,
        "duplicate_entries": duplicates,
        "retry_attempts": sum(e.get("attempts", 1) - 1 for e in ledger),
        "restarts": state.restarts,
        "faults": active_faults,
        "elapsed_seconds": round(elapsed, 4),
        "throughput_rps": round((done + failed) / elapsed, 2) if elapsed else 0.0,
        "latency_seconds": {
            "count": len(ordered),
            "mean": round(sum(ordered) / len(ordered), 6) if ordered else None,
            "p50": _round6(_percentile(ordered, 0.50)),
            "p99": _round6(_percentile(ordered, 0.99)),
            "max": _round6(ordered[-1]) if ordered else None,
            # The obs-histogram view of the same data: interpolated
            # estimates from the log-scale buckets, for cross-checking.
            "histogram_p50": _round6(child.quantile(0.50)),
            "histogram_p99": _round6(child.quantile(0.99)),
        },
        "daemon": daemon_stats,
    }
    report["violations"] = verify_ledger(report, faults_active=bool(active_faults))
    report["ok"] = not report["violations"]
    return report


def _round6(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(value, 6)


def _raise_fd_soft_limit(needed: int) -> None:
    """A thousand client sockets needs fd headroom; lift the soft limit
    toward the hard one when it is in the way (best effort)."""
    try:
        import resource

        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        if soft != resource.RLIM_INFINITY and soft < needed:
            target = needed if hard == resource.RLIM_INFINITY else min(needed, hard)
            if target > soft:
                resource.setrlimit(resource.RLIMIT_NOFILE, (target, hard))
    except (ImportError, ValueError, OSError):  # pragma: no cover
        pass


def run_loadgen(config: LoadgenConfig) -> Dict[str, Any]:
    """Blocking entry point: run the scenario, return the audit report."""
    return asyncio.run(_run(config))


def write_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
