"""The service wire protocol: newline-delimited JSON over a socket.

One request per line, one response per line, always in order — no
framing headers, no multiplexing, nothing a shell one-liner or a
language without our client can't speak::

    {"op": "submit", "source": "proc f(...) {...}", "wait": true}
    {"ok": true, "op": "submit", "job": "job-1", "state": "done", ...}

Verbs (full field reference in docs/SERVICE.md):

``submit``
    enqueue an analysis job (or coalesce onto an identical in-flight
    one, or answer straight from the result store); ``wait`` blocks the
    connection until the job settles.
``status``
    one job's state, or the queue/worker overview when no job is named.
``result``
    a settled job's result; ``wait`` blocks until it settles.
``stats``
    daemon counters (submissions, coalesced, cache tiers, failures).
``metrics``
    the daemon's unified metrics registry (docs/OBSERVABILITY.md):
    Prometheus text exposition by default, a JSON snapshot with
    ``format: "json"``.
``ping`` / ``health`` / ``ready``
    liveness probe / process health (answers even while draining) /
    readiness (ok only while accepting new work — load balancers and
    rolling restarts key off this one).
``drain`` / ``shutdown``
    graceful drain (stop accepting, settle in-flight jobs, flush the
    disk tier) / orderly stop.

Responses always carry ``ok``; protocol-level failures (unknown verb,
malformed JSON, bad request) come back as ``{"ok": false, "error": ...}``
— job *failures* are data, not protocol errors, and arrive with
``ok: true, state: "failed"``.

Overload is a first-class response, not a dropped connection: a shed
request comes back ``{"ok": false, "error": "overloaded",
"overloaded": true, "retry_after": seconds}`` and clients back off
(with jitter) and retry.

Requests may carry an ``id`` field; the response echoes it verbatim.
That is what makes *pipelining* safe: the async daemon handles a
connection's requests concurrently and responses may interleave, so an
``id``-carrying client matches them back up.  Requests without ``id``
are answered strictly in order (the blocking client's contract).

Addresses are strings so they fit CLI flags and config files:
``unix:/path/to.sock`` (or any bare path containing ``/``) and
``tcp:host:port`` (or bare ``host:port``).
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Optional, Tuple, Union

from repro.util.errors import ProtocolError

PROTOCOL_VERSION = 1

# A line longer than this is a protocol violation, not a big request —
# it protects the daemon from unframed garbage on the socket.
MAX_LINE_BYTES = 16 * 1024 * 1024

OPS = (
    "submit",
    "status",
    "result",
    "stats",
    "metrics",
    "ping",
    "health",
    "ready",
    "drain",
    "shutdown",
)

Address = Union[Tuple[str, str], Tuple[str, str, int]]  # ("unix", path) | ("tcp", host, port)


# -- framing -----------------------------------------------------------------


def encode_message(message: Dict[str, Any]) -> bytes:
    """One message as one JSON line (compact, key-sorted, ``\\n``-terminated)."""
    try:
        text = json.dumps(message, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise ProtocolError("unencodable message: %s" % exc)
    return text.encode("utf-8") + b"\n"


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one received line into a message dict."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError("message exceeds %d bytes" % MAX_LINE_BYTES)
    try:
        message = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("malformed message line: %s" % exc)
    if not isinstance(message, dict):
        raise ProtocolError(
            "message must be a JSON object, got %s" % type(message).__name__
        )
    return message


def send_message(wire, message: Dict[str, Any]) -> None:
    """Write one message to a file-like binary wire and flush it."""
    wire.write(encode_message(message))
    wire.flush()


def read_message(wire) -> Optional[Dict[str, Any]]:
    """Read one message; None on a cleanly closed connection (EOF)."""
    line = wire.readline(MAX_LINE_BYTES + 1)
    if not line:
        return None
    if not line.endswith(b"\n") and len(line) > MAX_LINE_BYTES:
        raise ProtocolError("message exceeds %d bytes" % MAX_LINE_BYTES)
    line = line.strip()
    if not line:
        return {}
    return decode_message(line)


# -- responses ---------------------------------------------------------------


def ok_response(op: str, **fields: Any) -> Dict[str, Any]:
    response = {"ok": True, "op": op, "v": PROTOCOL_VERSION}
    response.update(fields)
    return response


def error_response(op: str, message: str, **fields: Any) -> Dict[str, Any]:
    response = {"ok": False, "op": op, "v": PROTOCOL_VERSION, "error": message}
    response.update(fields)
    return response


def overloaded_response(
    op: str, retry_after: float, reason: str = "overloaded", **fields: Any
) -> Dict[str, Any]:
    """The explicit load-shed answer: retryable, with a backoff hint."""
    return error_response(
        op,
        reason,
        overloaded=True,
        retry_after=round(float(retry_after), 4),
        **fields,
    )


def attach_id(response: Dict[str, Any], message: Dict[str, Any]) -> Dict[str, Any]:
    """Echo a request's ``id`` (if any) onto its response, in place."""
    if "id" in message:
        response["id"] = message["id"]
    return response


# -- addresses ---------------------------------------------------------------


def parse_address(text: str) -> Address:
    """Parse an address string into ``("unix", path)`` or
    ``("tcp", host, port)``."""
    text = text.strip()
    if not text:
        raise ProtocolError("empty service address")
    if text.startswith("unix:"):
        path = text[len("unix:"):]
        if not path:
            raise ProtocolError("unix address needs a socket path")
        return ("unix", path)
    if text.startswith("tcp:"):
        rest = text[len("tcp:"):]
        host, sep, port = rest.rpartition(":")
        if not sep or not host:
            raise ProtocolError("tcp address must be tcp:host:port, got %r" % text)
        return ("tcp", host, _port(port, text))
    if "/" in text or text.endswith(".sock"):
        return ("unix", text)
    host, sep, port = text.rpartition(":")
    if sep and host:
        return ("tcp", host, _port(port, text))
    raise ProtocolError(
        "cannot parse service address %r (want unix:/path, tcp:host:port, "
        "a socket path, or host:port)" % text
    )


def _port(value: str, text: str) -> int:
    try:
        port = int(value)
    except ValueError:
        raise ProtocolError("bad port in service address %r" % text)
    if not 0 <= port <= 65535:
        raise ProtocolError("port out of range in service address %r" % text)
    return port


def format_address(address: Address) -> str:
    if address[0] == "unix":
        return "unix:%s" % address[1]
    return "tcp:%s:%d" % (address[1], address[2])


def unix_supported() -> bool:
    return hasattr(socket, "AF_UNIX")


def bind_socket(address: Address, backlog: int = 32) -> socket.socket:
    """Create, bind, and listen on a server socket for ``address``."""
    if address[0] == "unix":
        if not unix_supported():  # pragma: no cover - non-POSIX
            raise ProtocolError("unix sockets are not supported on this platform")
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            server.bind(address[1])
        except OSError:
            server.close()
            raise
    else:
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            server.bind((address[1], address[2]))
        except OSError:
            server.close()
            raise
    server.listen(backlog)
    return server


def connect_socket(address: Address, timeout: Optional[float] = None) -> socket.socket:
    """A connected client socket for ``address``."""
    if address[0] == "unix":
        if not unix_supported():  # pragma: no cover - non-POSIX
            raise ProtocolError("unix sockets are not supported on this platform")
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        target: Any = address[1]
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        target = (address[1], address[2])
    sock.settimeout(timeout)
    try:
        sock.connect(target)
    except OSError:
        sock.close()
        raise
    return sock
