"""Admission control: decide *at the door* instead of collapsing inside.

Two cooperating mechanisms (docs/SERVICE.md):

* :class:`TokenBucket` — a per-connection rate limit.  Each connection
  gets ``rate`` submissions per second with bursts up to ``burst``; a
  submission that finds the bucket empty is answered ``overloaded``
  with a ``retry_after`` telling the client exactly when a token will
  exist.  One abusive client therefore cannot starve the others — its
  surplus is shed on *its* connection.
* :class:`AdmissionController` — a queue-depth gate shared by the whole
  daemon.  When the number of pending (queued + running) jobs reaches
  ``max_pending``, new work is shed with ``overloaded`` and a
  ``retry_after`` that grows with the overshoot, which spreads the
  retrying herd instead of synchronizing it.

Shedding is the *sound* degradation: an ``overloaded`` response is an
explicit "not now", never a dropped connection and never a wrong
verdict — the client retries (with jitter, :mod:`repro.service.client`)
and the work happens when there is capacity for it.

``clock`` is injectable monotonic seconds, so the token schedule is
testable without sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional


class TokenBucket:
    """The standard leaky-bucket rate limiter, refilled lazily.

    ``try_acquire`` either takes a token (returns 0.0) or returns the
    seconds until one will be available — the ``retry_after`` the
    protocol hands back.  Thread-safe so the sync daemon's per-connection
    handler threads can share buckets with the asyncio tier's loop.
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ValueError("rate must be > 0 tokens/second")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, self.rate)
        if self.burst < 1.0:
            raise ValueError("burst must allow at least one token")
        self._clock = clock
        self._lock = threading.Lock()
        self._tokens = self.burst
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._stamp = now

    def try_acquire(self, n: float = 1.0) -> float:
        """Take ``n`` tokens now (return 0.0) or report the wait."""
        with self._lock:
            self._refill()
            if self._tokens >= n:
                self._tokens -= n
                return 0.0
            return (n - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill()
            return self._tokens


class AdmissionController:
    """Queue-depth-aware load shedding for the whole daemon.

    ``admit(pending)`` answers ``None`` (admitted) or a ``retry_after``
    in seconds (shed).  The retry hint scales linearly with how far past
    the limit the queue is — a lightly overloaded daemon asks for a
    short pause, a deeply overloaded one pushes the herd further out —
    and is capped so clients never park for minutes on a stale hint.
    """

    def __init__(
        self,
        max_pending: int,
        base_retry_after: float = 0.25,
        max_retry_after: float = 5.0,
    ):
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.max_pending = int(max_pending)
        self.base_retry_after = base_retry_after
        self.max_retry_after = max_retry_after
        self._lock = threading.Lock()
        self.shed = 0  # lifetime rejections, for stats/metrics

    def admit(self, pending: int) -> Optional[float]:
        if pending < self.max_pending:
            return None
        with self._lock:
            self.shed += 1
        overshoot = 1.0 + (pending - self.max_pending) / max(1, self.max_pending)
        return min(self.max_retry_after, self.base_retry_after * overshoot)
