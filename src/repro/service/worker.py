"""The worker-side job body: what one analysis job actually runs.

Module-level and picklable on purpose — under ``isolation="process"``
the daemon ships ``execute_job`` to a pool worker by name, exactly like
:func:`repro.benchsuite.runner.run_benchmark`.  The heavy objects
(driver, partition tree) never cross back: the return value is the
JSON-safe result dict of :func:`repro.core.blazer.analyze_job`.

The entry fires the ``worker.run`` fault site (keyed by the job's
procedure name, falling back to the request key), so the deterministic
chaos harness of docs/RESILIENCE.md can crash or fail exactly one
service job: ``REPRO_FAULTS=worker.run:error:match=<proc>``.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.blazer import analyze_job
from repro.resilience import faults


def execute_job(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one job payload to a result dict (the pool-worker function)."""
    faults.maybe_fire(
        "worker.run", key=str(payload.get("proc") or payload.get("key") or "")
    )
    return analyze_job(payload)
