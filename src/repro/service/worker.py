"""The worker-side job body: what one analysis job actually runs.

Module-level and picklable on purpose — under ``isolation="process"``
the daemon ships ``execute_job`` to a pool worker by name, exactly like
:func:`repro.benchsuite.runner.run_benchmark`.  The heavy objects
(driver, partition tree) never cross back: the return value is the
JSON-safe result dict of the kind's job function.

Payloads carry a ``kind`` discriminator: ``"analyze"`` (the default
when absent — every pre-kind client keeps working) runs Blazer's
decomposition via :func:`repro.core.blazer.analyze_job`; ``"pdsc"``
runs the property-directed self-composition checker via
:func:`repro.core.pdsc.pdsc_job`; ``"leakage"`` runs the quantitative
leakage + constant-time analysis via
:func:`repro.leakage.job.leakage_job`.  Unknown kinds fail the job — but
submissions are validated earlier, at fingerprint time, so a bad kind
normally fails its sender instead of a worker.

The entry fires the ``worker.run`` fault site (keyed by the job's
procedure name, falling back to the request key), so the deterministic
chaos harness of docs/RESILIENCE.md can crash or fail exactly one
service job: ``REPRO_FAULTS=worker.run:error:match=<proc>``.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.blazer import analyze_job
from repro.core.pdsc import pdsc_job
from repro.leakage.job import leakage_job
from repro.resilience import faults
from repro.util.errors import AnalysisError

# kind → job body.  "analyze" is the implicit default for payloads
# predating the discriminator.
JOB_KINDS = {
    "analyze": analyze_job,
    "pdsc": pdsc_job,
    "leakage": leakage_job,
}


def execute_job(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one job payload to a result dict (the pool-worker function)."""
    faults.maybe_fire(
        "worker.run", key=str(payload.get("proc") or payload.get("key") or "")
    )
    kind = str(payload.get("kind") or "analyze")
    run = JOB_KINDS.get(kind)
    if run is None:
        raise AnalysisError(
            "unknown job kind %r (available: %s)"
            % (kind, ", ".join(sorted(JOB_KINDS)))
        )
    return run(payload)
