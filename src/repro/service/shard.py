"""Sharded worker pools with circuit-breaker quarantine.

The async service tier (:mod:`repro.service.aio`) does not own one big
worker pool: it owns N *shards*, each a small executor of warm workers,
and routes every job by its content fingerprint —
``int(key[:16], 16) % shards``.  Two properties fall out:

* **Stable routing.**  A fingerprint always lands on the same shard, so
  coalescing, per-shard caches, and crash blast radius are all keyed
  consistently: a poisoned input can only take down the shard its
  fingerprint range maps to.
* **Quarantine and reroute.**  Each shard carries a
  :class:`~repro.resilience.breaker.CircuitBreaker`.  Worker *crashes*
  (a killed process → ``BrokenExecutor``) count against the shard;
  job-level failures (an ``InjectedFault``, a budget timeout) do not —
  they are facts about the job, not the shard.  When a shard's breaker
  opens, :meth:`ShardManager.route` walks to the next live shard, so
  the crashed fingerprint range is *rerouted* while the owner rebuilds
  the broken executor in the background and then
  :meth:`~repro.resilience.breaker.CircuitBreaker.force_probe`\\ s the
  breaker: the next routed job is the trial balloon that closes it.

Shards are plain synchronous objects — ``submit`` returns a
``concurrent.futures.Future`` — so the asyncio tier bridges with
``asyncio.wrap_future`` and nothing here needs an event loop.
"""

from __future__ import annotations

import logging
import threading
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Dict, List, Optional

from repro.perf.parallel import process_pool_usable
from repro.perf.pool import warm_executor
from repro.resilience.breaker import CircuitBreaker
from repro.service.worker import execute_job

log = logging.getLogger(__name__)

# Crashes a shard absorbs before its breaker opens and its fingerprint
# range reroutes.  Low on purpose: a dead worker process is expensive
# (every queued job on that executor fails) and rarely transient.
SHARD_FAILURE_THRESHOLD = 2

# Seconds an open shard rests before the breaker half-opens by itself.
# Rebuilds normally finish much sooner and force_probe immediately.
SHARD_RESET_SECONDS = 30.0


class Shard:
    """One worker pool plus the breaker that judges it.

    ``isolation="process"`` builds a warm ``ProcessPoolExecutor``
    (:func:`repro.perf.pool.warm_executor` — workers pre-import the
    analysis stack); ``"thread"`` a ``ThreadPoolExecutor`` running
    :func:`~repro.service.worker.execute_job` in-process (the fallback
    when process pools are unusable, and the cheap mode for tests).

    The executor is created lazily and replaced wholesale by
    :meth:`rebuild`; ``inflight`` is maintained by the routing tier
    (the asyncio daemon touches it only from its event loop).
    """

    def __init__(
        self,
        index: int,
        workers: int = 1,
        isolation: str = "process",
        disk_prime: Optional[str] = None,
        breaker: Optional[CircuitBreaker] = None,
    ):
        if isolation == "process" and not process_pool_usable():
            isolation = "thread"
        self.index = index
        self.workers = max(1, int(workers))
        self.isolation = isolation
        self._disk_prime = disk_prime
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=SHARD_FAILURE_THRESHOLD,
            reset_seconds=SHARD_RESET_SECONDS,
        )
        self._lock = threading.Lock()
        self._executor: Optional[Executor] = None
        self.inflight = 0  # jobs routed here and not yet settled
        self.executed = 0  # lifetime jobs submitted to this shard
        self.rebuilds = 0  # executors discarded after crashes

    # -- executor lifecycle -------------------------------------------------

    def _build(self) -> Executor:
        if self.isolation == "process":
            return warm_executor(self.workers, disk_prime=self._disk_prime)
        return ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="repro-shard-%d" % self.index,
        )

    def executor(self) -> Executor:
        with self._lock:
            if self._executor is None:
                self._executor = self._build()
            return self._executor

    def submit(self, payload: Dict[str, Any]) -> "Future[Dict[str, Any]]":
        """One job into this shard's pool (may raise if the executor is
        broken beyond accepting work — the caller treats that exactly
        like a crashed future)."""
        self.executed += 1
        return self.executor().submit(execute_job, payload)

    def broken(self) -> bool:
        """Has the current executor lost a worker process?"""
        with self._lock:
            pool = self._executor
        return isinstance(pool, ProcessPoolExecutor) and bool(
            getattr(pool, "_broken", False)
        )

    def rebuild(self) -> None:
        """Discard the (broken) executor and build a fresh one, waiting
        for one probe round-trip so the new workers are genuinely up.

        Blocking by design — the asyncio tier runs it in a thread
        executor so a rebuild never stalls the event loop.
        """
        with self._lock:
            old, self._executor = self._executor, None
        if old is not None:
            old.shutdown(wait=False, cancel_futures=True)
        self.rebuilds += 1
        pool = self.executor()
        try:
            pool.submit(_probe).result(timeout=60.0)
        except Exception:  # pragma: no cover - probe failure is logged, not fatal
            log.exception("shard %d rebuild probe failed", self.index)
        log.info("shard %d rebuilt its %s pool", self.index, self.isolation)

    def shutdown(self) -> None:
        with self._lock:
            pool, self._executor = self._executor, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def snapshot(self) -> Dict[str, Any]:
        state = dict(self.breaker.snapshot())
        state.update(
            shard=self.index,
            isolation=self.isolation,
            workers=self.workers,
            inflight=self.inflight,
            executed=self.executed,
            rebuilds=self.rebuilds,
        )
        return state


def _probe() -> bool:
    """Round-trip no-op proving a rebuilt pool has live workers."""
    return True


class ShardManager:
    """N shards, fingerprint routing, and the quarantine walk."""

    def __init__(
        self,
        count: int = 2,
        workers_per_shard: int = 1,
        isolation: str = "process",
        disk_prime: Optional[str] = None,
    ):
        if count < 1:
            raise ValueError("need at least one shard")
        self.shards: List[Shard] = [
            Shard(
                i,
                workers=workers_per_shard,
                isolation=isolation,
                disk_prime=disk_prime,
            )
            for i in range(count)
        ]

    @property
    def count(self) -> int:
        return len(self.shards)

    def home(self, key: str) -> Shard:
        """The shard a fingerprint natively belongs to."""
        return self.shards[int(key[:16], 16) % len(self.shards)]

    def route(self, key: str) -> Optional[Shard]:
        """The shard that should run ``key`` right now: its home shard,
        or — when the home's breaker is open — the next shard whose
        breaker admits work.  None when every shard is quarantined
        (the caller sheds the request with ``overloaded``)."""
        start = self.home(key).index
        n = len(self.shards)
        for step in range(n):
            shard = self.shards[(start + step) % n]
            if shard.breaker.allow():
                return shard
        return None

    def prewarm(self) -> None:
        """Build every shard's executor now (start-up, not first-job)."""
        for shard in self.shards:
            shard.executor()

    def shutdown(self) -> None:
        for shard in self.shards:
            shard.shutdown()

    def snapshot(self) -> List[Dict[str, Any]]:
        return [shard.snapshot() for shard in self.shards]

    def quarantined(self) -> int:
        return sum(1 for s in self.shards if s.breaker.state != "closed")
