"""The analysis daemon: socket server + scheduler + worker pool.

Structure (one process, cooperating threads)::

    accept loop ──spawns──▶ connection handlers ──submit──▶ JobQueue
                                                              │ pop
    ResultStore (memory ▸ disk JSONL) ◀──put── worker threads ┘

* **Connection handlers** parse NDJSON requests, answer ``submit`` from
  the result store when they can (memory hit, then disk hit), coalesce
  identical in-flight submissions onto one queued job, and otherwise
  enqueue.  ``wait: true`` blocks the handler — not the daemon — on the
  job's completion event.
* **Worker threads** pop jobs by priority and run them through the same
  crash-safety machinery as the benchmark suite: under
  ``isolation="process"`` each job executes in a process pool and is
  collected with :func:`repro.perf.parallel.collect_outcome` (a killed
  worker process becomes that job's ``WorkerCrashed``, the pool is
  rebuilt, the daemon lives); under the default ``isolation="thread"``
  the job runs in the worker thread with per-job exception isolation.
  Failed jobs retry under a
  :class:`~repro.resilience.retry.RetryPolicy` via
  :func:`~repro.resilience.retry.run_with_retries`, with every retry
  attempt going through the *same* isolation path as the first — a job
  that keeps crashing its worker keeps killing pool workers, never the
  daemon.
* **Budgets**: every job gets a per-job deadline — its own, or the
  daemon's ``default_deadline`` — which becomes a cooperative
  :class:`~repro.resilience.budget.Budget` inside the worker, so a
  pathological request degrades to a sound "unknown" instead of
  starving the queue.

Failure semantics are the suite's, transplanted: one job's crash,
injected fault, timeout, or budget exhaustion settles *that job* and
nothing else (docs/SERVICE.md).
"""

from __future__ import annotations

import logging
import os
import socket
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Optional

from repro.obs import exporters as obs_exporters
from repro.obs.metrics import Family, MetricsRegistry, REGISTRY as GLOBAL_REGISTRY
from repro.obs.trace import span as trace_span
from repro.perf.parallel import collect_outcome, process_pool_usable, resolve_jobs
from repro.perf.pool import warm_executor
from repro.resilience.retry import RetryPolicy, run_with_retries
from repro.service import protocol
from repro.service.jobs import Job, JobQueue, fingerprint_job, intake_payload
from repro.service.store import ResultStore
from repro.service.worker import execute_job
from repro.util.errors import ProtocolError, ReproError

log = logging.getLogger(__name__)

ISOLATIONS = ("thread", "process")

# Default ceiling on how long stop() waits for in-flight jobs to settle
# before tearing the workers down anyway.
DRAIN_TIMEOUT = 30.0

VERDICTS_FILE = "verdicts.jsonl"
BOUNDS_FILE = "bounds.jsonl"

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ServiceStats:
    """Monotonic daemon counters (one lock, snapshot on read)."""

    FIELDS = (
        "submitted",
        "coalesced",
        "hits_memory",
        "hits_disk",
        "executed",
        "completed",
        "failed",
        "degraded",
        "retried",
        "rejected",
        "connections",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = {name: 0 for name in self.FIELDS}
        # Monotonic, like every other duration in the codebase: uptime
        # must not jump when the wall clock is stepped by NTP.
        self.started_at = time.monotonic()

    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self.started_at

    def bump(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counts[name] += n

    def __getitem__(self, name: str) -> int:
        with self._lock:
            return self._counts[name]

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)


class AnalysisDaemon:
    """A resident analysis service bound to one socket address.

    ``address`` is a :func:`repro.service.protocol.parse_address` string
    (``unix:/path`` or ``tcp:host:port``; TCP port 0 picks a free port —
    read the bound one back from :attr:`address`).  ``cache_dir``
    enables the persistent tiers: completed verdicts in
    ``verdicts.jsonl`` and trail-keyed bound results in ``bounds.jsonl``
    (handed to every worker as the driver's disk cache).
    """

    def __init__(
        self,
        address: str,
        workers: int = 1,
        cache_dir: Optional[str] = None,
        isolation: str = "thread",
        retries: int = 0,
        default_deadline: Optional[float] = None,
        task_timeout: Optional[float] = None,
        default_priority: int = 0,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        if isolation not in ISOLATIONS:
            raise ValueError(
                "unknown isolation %r (expected one of %s)" % (isolation, ISOLATIONS)
            )
        if isolation == "process" and not process_pool_usable():
            log.warning(
                "process isolation requested but process pools are unusable "
                "on this platform; degrading to thread isolation"
            )
            isolation = "thread"
        self._requested_address = protocol.parse_address(address)
        self.workers = resolve_jobs(workers)
        self.isolation = isolation
        self._task_timeout = task_timeout
        self._default_deadline = default_deadline
        self._default_priority = default_priority
        self._policy = retry_policy or RetryPolicy(retries=retries)
        self._cache_dir = cache_dir
        self._bounds_path: Optional[str] = None
        store_path: Optional[str] = None
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)
            store_path = os.path.join(cache_dir, VERDICTS_FILE)
            self._bounds_path = os.path.join(cache_dir, BOUNDS_FILE)
        self.queue = JobQueue()
        self.store = ResultStore(store_path)
        self.stats = ServiceStats()
        # The daemon's own metrics registry (docs/OBSERVABILITY.md).
        # Native families cover what only the workers see as it happens
        # (per-job latency, busy workers); everything already counted
        # elsewhere — ServiceStats, queue depth, the process-wide perf
        # stats — joins through pull-time collectors, so serving the
        # ``metrics`` op adds nothing to the submit/execute hot paths.
        self.registry = MetricsRegistry()
        self._job_seconds = self.registry.histogram(
            "repro_service_job_seconds",
            "Wall seconds per executed job by outcome",
            labelnames=("outcome",),
        )
        self._busy_workers = self.registry.gauge(
            "repro_service_busy_workers",
            "Worker threads currently executing a job",
        )
        self.registry.register_collector(self._service_families)
        obs_exporters.register_perf_collector(self.registry)
        self._server: Optional[socket.socket] = None
        self._bound_address: Optional[protocol.Address] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._threads: List[threading.Thread] = []
        self._stopping = threading.Event()
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._started = False
        # Requests currently being dispatched/answered by connection
        # handlers; the drain path waits for this to hit zero so the
        # last responses reach the wire before teardown.
        self._inflight_lock = threading.Lock()
        self._inflight = 0
        self._inflight_zero = threading.Event()
        self._inflight_zero.set()

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> str:
        """The bound address string (clients connect here)."""
        bound = self._bound_address or self._requested_address
        return protocol.format_address(bound)

    @property
    def running(self) -> bool:
        return self._started and not self._stopped.is_set()

    def start(self) -> "AnalysisDaemon":
        """Bind the socket and start the accept + worker threads."""
        if self._started:
            raise ReproError("daemon already started")
        self._started = True
        addr = self._requested_address
        if addr[0] == "unix" and os.path.exists(addr[1]):
            # A leftover socket file from a dead daemon refuses binds;
            # a live daemon holds it open, so only remove stale ones.
            if self._socket_stale(addr):
                os.unlink(addr[1])
        self._server = protocol.bind_socket(addr)
        self._server.settimeout(0.2)
        if addr[0] == "tcp":
            host, port = self._server.getsockname()[:2]
            self._bound_address = ("tcp", addr[1], port)
        else:
            self._bound_address = addr
        if self.isolation == "process":
            # Warm workers (repro.perf.pool): the first job a worker
            # sees should pay analysis cost, not import cost.
            self._pool = warm_executor(self.workers)
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name="repro-worker-%d" % index, daemon=True
            )
            thread.start()
            self._threads.append(thread)
        acceptor = threading.Thread(
            target=self._accept_loop, name="repro-accept", daemon=True
        )
        acceptor.start()
        self._threads.append(acceptor)
        log.info(
            "analysis daemon listening on %s (%d worker(s), %s isolation)",
            self.address,
            self.workers,
            self.isolation,
        )
        return self

    @staticmethod
    def _socket_stale(addr: protocol.Address) -> bool:
        try:
            probe = protocol.connect_socket(addr, timeout=0.2)
        except OSError:
            return True
        probe.close()
        return False

    def request_stop(self) -> None:
        """Ask for an orderly stop from a signal handler or another
        thread: :meth:`serve_forever` wakes and runs the full drain +
        stop sequence.  This is the SIGTERM hook (``repro serve``)."""
        self._stopping.set()

    def stop(self, drain_timeout: Optional[float] = DRAIN_TIMEOUT) -> None:
        """Graceful shutdown: stop accepting, settle in-flight jobs,
        flush the disk tier, then tear down.

        Order matters and is the opposite of the original
        implementation, which closed the listener *last* and joined
        workers on a short timeout while they might still be settling a
        job — losing that job's response.  Now:

        1. close the listener first (no new connections, no new work);
        2. close the queue (new submissions on live connections are
           rejected; workers keep popping until the heap is empty);
        3. wait — up to ``drain_timeout`` — for every in-flight job to
           settle and for the connection handlers to flush the last
           responses onto the wire;
        4. only then join the workers, shut the pool down, and flush
           the result store's disk tier.

        ``drain_timeout=0`` skips step 3 (the old, abrupt behavior, for
        tests that want teardown speed over settled jobs).
        """
        if self._stopped.is_set():
            return
        self._draining.set()
        self._stopping.set()
        server, self._server = self._server, None
        if server is not None:
            try:
                server.close()
            except OSError:
                pass
        self.queue.close()
        if drain_timeout is None or drain_timeout > 0:
            if not self.queue.wait_idle(drain_timeout):
                log.warning(
                    "drain timed out after %.1fs with %d job(s) unsettled",
                    drain_timeout or 0.0,
                    self.queue.pending(),
                )
            # Let handlers push the just-settled responses to the wire.
            self._inflight_zero.wait(timeout=2.0)
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=5.0)
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        flushed = self.store.flush()
        bound = self._bound_address
        if bound is not None and bound[0] == "unix":
            try:
                os.unlink(bound[1])
            except OSError:
                pass
        self._stopped.set()
        log.info(
            "analysis daemon on %s stopped (store at shutdown: %s)",
            self.address,
            flushed,
        )

    def serve_forever(self) -> None:
        """Block until :meth:`stop` (a ``shutdown`` request, or SIGINT
        in the caller)."""
        if not self._started:
            self.start()
        try:
            while not self._stopping.wait(0.2):
                pass
        finally:
            self.stop()

    def __enter__(self) -> "AnalysisDaemon":
        return self.start() if not self._started else self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- accept / connection handling --------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            server = self._server
            if server is None:
                return
            try:
                conn, _ = server.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # socket closed under us during stop()
            self.stats.bump("connections")
            handler = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            handler.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        wire = conn.makefile("rwb")
        try:
            while True:
                try:
                    message = protocol.read_message(wire)
                except ProtocolError as exc:
                    protocol.send_message(
                        wire, protocol.error_response("?", str(exc))
                    )
                    return
                if message is None:
                    return
                if not message:
                    continue
                self._begin_request()
                try:
                    response = self._dispatch(message)
                    protocol.send_message(wire, protocol.attach_id(response, message))
                finally:
                    self._end_request()
                if message.get("op") == "shutdown":
                    return
        except (OSError, ValueError):
            pass  # client went away mid-message; nothing to salvage
        finally:
            try:
                wire.close()
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass

    def _begin_request(self) -> None:
        with self._inflight_lock:
            self._inflight += 1
            self._inflight_zero.clear()

    def _end_request(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1
            if self._inflight == 0:
                self._inflight_zero.set()

    # -- request dispatch ---------------------------------------------------

    def _dispatch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        op = message.get("op")
        if op not in protocol.OPS:
            self.stats.bump("rejected")
            return protocol.error_response(
                str(op), "unknown op %r (expected one of %s)" % (op, protocol.OPS)
            )
        try:
            if op == "ping":
                return protocol.ok_response("ping", address=self.address)
            if op == "health":
                return self._handle_health()
            if op == "ready":
                return self._handle_ready()
            if op == "submit":
                return self._handle_submit(message)
            if op == "status":
                return self._handle_status(message)
            if op == "result":
                return self._handle_result(message)
            if op == "stats":
                return self._handle_stats()
            if op == "metrics":
                return self._handle_metrics(message)
            if op == "drain":
                return self._handle_drain()
            return self._handle_shutdown()
        except ReproError as exc:
            self.stats.bump("rejected")
            return protocol.error_response(op, str(exc))

    def _job_response(self, job: Job, **fields: Any) -> Dict[str, Any]:
        response = protocol.ok_response("submit", **job.snapshot())
        if job.state == "done":
            response["result"] = job.result
        response.update(fields)
        return response

    def _handle_health(self) -> Dict[str, Any]:
        """Process health: answers as long as the daemon is alive, even
        mid-drain (liveness, not readiness)."""
        return protocol.ok_response(
            "health",
            address=self.address,
            state="draining" if self._draining.is_set() else "running",
            uptime_seconds=round(self.stats.uptime_seconds, 3),
            pending=self.queue.pending(),
        )

    def _handle_ready(self) -> Dict[str, Any]:
        """Readiness: ok only while new submissions are being accepted.
        Load balancers and rolling restarts watch this field."""
        ready = self.running and not self._draining.is_set()
        return protocol.ok_response("ready", ready=ready)

    def _handle_drain(self) -> Dict[str, Any]:
        """Begin a graceful drain over the wire: stop admitting, keep
        answering status/result/health while in-flight jobs settle.
        A follow-up ``shutdown`` (or SIGTERM) completes the stop."""
        log.info("drain requested over the wire")
        self._draining.set()
        self.queue.close()
        return protocol.ok_response(
            "drain", draining=True, pending=self.queue.pending()
        )

    def _handle_submit(self, message: Dict[str, Any]) -> Dict[str, Any]:
        if self._draining.is_set():
            self.stats.bump("rejected")
            return protocol.overloaded_response(
                "submit", 1.0, reason="draining", draining=True
            )
        payload = intake_payload(message)
        key, proc = fingerprint_job(payload)  # validates; raises ReproError
        payload["proc"] = proc  # normalized for display and fault matching
        self.stats.bump("submitted")
        cached, tier = self.store.get(key)
        if cached is not None:
            self.stats.bump("hits_memory" if tier == "memory" else "hits_disk")
            return protocol.ok_response(
                "submit", key=key, state="done", cached=tier, result=cached
            )
        deadline = payload.get("deadline", self._default_deadline)
        if deadline is not None:
            payload["deadline"] = deadline
        if self._bounds_path is not None:
            payload["disk_cache"] = self._bounds_path
        priority = int(message.get("priority", self._default_priority))
        job, coalesced = self.queue.submit(
            payload, key, priority=priority, deadline=deadline
        )
        if coalesced:
            self.stats.bump("coalesced")
        if message.get("wait", True):
            timeout = message.get("wait_timeout")
            if not job.done.wait(None if timeout is None else float(timeout)):
                return self._job_response(job, coalesced=coalesced, timed_out=True)
        return self._job_response(job, coalesced=coalesced)

    def _handle_status(self, message: Dict[str, Any]) -> Dict[str, Any]:
        job_id = message.get("job")
        if job_id is not None:
            job = self.queue.get(str(job_id))
            if job is None:
                return protocol.error_response("status", "no job %r" % job_id)
            return protocol.ok_response("status", **job.snapshot())
        jobs = self.queue.jobs()
        return protocol.ok_response(
            "status",
            address=self.address,
            workers=self.workers,
            isolation=self.isolation,
            queue_depth=self.queue.depth(),
            jobs=[j.snapshot() for j in jobs[-50:]],
        )

    def _handle_result(self, message: Dict[str, Any]) -> Dict[str, Any]:
        job_id = message.get("job")
        if job_id is None:
            return protocol.error_response("result", "result needs a 'job' id")
        job = self.queue.get(str(job_id))
        if job is None:
            return protocol.error_response("result", "no job %r" % job_id)
        if message.get("wait") and not job.settled:
            timeout = message.get("wait_timeout")
            job.done.wait(None if timeout is None else float(timeout))
        response = protocol.ok_response("result", **job.snapshot())
        if job.state == "done":
            response["result"] = job.result
        return response

    def _handle_stats(self) -> Dict[str, Any]:
        counters = self.stats.snapshot()
        return protocol.ok_response(
            "stats",
            address=self.address,
            workers=self.workers,
            isolation=self.isolation,
            uptime_seconds=round(self.stats.uptime_seconds, 3),
            queue_depth=self.queue.depth(),
            store=self.store.stats(),
            **counters,
        )

    def _service_families(self) -> List[Family]:
        """Pull-time collector: the pre-existing daemon state as metric
        families (this is how ``ServiceStats`` was migrated onto the
        registry — its counters stay the source of truth)."""
        counters = [
            ({"event": name}, value)
            for name, value in sorted(self.stats.snapshot().items())
        ]
        return [
            Family.constant(
                "repro_service_events_total",
                "counter",
                "Daemon lifecycle counters (submissions, cache hits, "
                "failures, ...)",
                counters,
            ),
            Family.constant(
                "repro_service_queue_depth",
                "gauge",
                "Jobs currently queued and not yet popped by a worker",
                [({}, self.queue.depth())],
            ),
            Family.constant(
                "repro_service_workers",
                "gauge",
                "Size of the worker pool",
                [({}, self.workers)],
            ),
            Family.constant(
                "repro_service_uptime_seconds",
                "gauge",
                "Seconds since the daemon's stats epoch (monotonic clock)",
                [({}, round(self.stats.uptime_seconds, 3))],
            ),
        ]

    def _handle_metrics(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """The unified snapshot: the daemon's registry (service counters,
        queue depth, worker utilization, job latencies, perf cache
        hit/miss rates) merged with the process-wide one (span
        metrics)."""
        fmt = message.get("format", "text")
        registries = (GLOBAL_REGISTRY, self.registry)
        if fmt == "json":
            return protocol.ok_response(
                "metrics",
                format="json",
                metrics=obs_exporters.metrics_snapshot(*registries),
            )
        if fmt != "text":
            return protocol.error_response(
                "metrics", "unknown metrics format %r (want 'text' or 'json')" % fmt
            )
        return protocol.ok_response(
            "metrics",
            format="text",
            content_type=PROMETHEUS_CONTENT_TYPE,
            text=obs_exporters.prometheus_text(*registries),
        )

    def _handle_shutdown(self) -> Dict[str, Any]:
        log.info("shutdown requested over the wire")
        self._draining.set()
        self._stopping.set()
        self.queue.close()
        return protocol.ok_response("shutdown", stopping=True)

    # -- worker side --------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job = self.queue.pop(timeout=0.2)
            if job is None:
                if self._stopping.is_set():
                    return
                continue
            try:
                self._run_job(job)
            except BaseException:  # a worker thread must never die silently
                log.exception("worker loop failed on %s", job.id)
                if not job.settled:
                    self.queue.finish(job, error="internal worker failure")

    def _execute_once(self, job: Job) -> Any:
        """One execution attempt → result dict or Exception instance."""
        self.stats.bump("executed")
        if self._pool is not None:
            future = self._pool.submit(execute_job, job.payload)
            outcome, timed_out = collect_outcome(
                future, label=job.id, task_timeout=self._task_timeout
            )
            if timed_out or isinstance(outcome, Exception) and self._pool_broken():
                self._rebuild_pool()
            return outcome
        try:
            return execute_job(job.payload)
        except KeyboardInterrupt as exc:
            # An injected interrupt in a worker thread is a job failure,
            # not a daemon signal (real SIGINT lands on the main thread).
            return exc
        except Exception as exc:
            return exc

    def _pool_broken(self) -> bool:
        pool = self._pool
        return pool is not None and getattr(pool, "_broken", False)

    def _rebuild_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = warm_executor(self.workers)

    def _execute_attempt(self, job: Job) -> Any:
        """One *retry* attempt, raising on failure.

        Adapts :meth:`_execute_once` (outcome-or-exception) to the
        raise-on-failure contract of
        :func:`~repro.resilience.retry.run_with_retries`.  Critically,
        this goes through the same isolation path as the first attempt:
        under ``isolation="process"`` a retried job re-enters the
        process pool, so a job that crashes its worker on every attempt
        kills pool workers — never the daemon.
        """
        outcome = self._execute_once(job)
        if isinstance(outcome, BaseException):
            raise outcome
        return outcome

    def _run_job(self, job: Job) -> None:
        started = time.perf_counter()
        label = "error"  # only survives if _settle_job itself raises
        self._busy_workers.inc()
        try:
            with trace_span(
                "service.job",
                job=job.id,
                proc=job.payload.get("proc"),
                isolation=self.isolation,
            ):
                label = self._settle_job(job)
        finally:
            self._busy_workers.dec()
            self._job_seconds.labels(outcome=label).observe(
                time.perf_counter() - started
            )

    def _settle_job(self, job: Job) -> str:
        """Execute ``job`` to a settled state; returns the outcome label
        (``completed`` | ``degraded`` | ``failed``) for the job-latency
        histogram."""
        job.attempts = 1
        outcome = self._execute_once(job)
        if isinstance(outcome, Exception) and self._policy.retries:
            self.stats.bump("retried")
            try:
                outcome, attempts = run_with_retries(
                    self._execute_attempt, job, self._policy, outcome, label=job.id
                )
                job.attempts += attempts
            except ReproError as exc:  # WorkerCrashed after exhausted retries
                outcome = exc
            except KeyboardInterrupt as exc:
                outcome = exc
        if isinstance(outcome, BaseException):
            self.stats.bump("failed")
            self.queue.finish(
                job, error="%s: %s" % (type(outcome).__name__, outcome)
            )
            return "failed"
        self.stats.bump("completed")
        degraded = bool(outcome.get("degraded"))
        if degraded:
            self.stats.bump("degraded")
        self.store.put(job.key, outcome)
        self.queue.finish(job, result=outcome)
        return "degraded" if degraded else "completed"
