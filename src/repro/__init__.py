"""repro — a reproduction of "Decomposition Instead of Self-Composition
for Proving the Absence of Timing Channels" (PLDI 2017).

The package rebuilds the Blazer tool end to end in Python: a Java-like
language front-end, stack bytecode and a register-IR lifter (the WALA
analogue), a finite-automata library (brics analogue), numeric abstract
domains (PPL analogue), taint analysis (JOANA analogue), a
trail-restricted abstract interpreter, the symbolic bound analysis, and
the quotient-partitioning driver that proves timing-channel freedom or
synthesizes attack specifications.

Quickstart::

    from repro import analyze_source

    verdict = analyze_source('''
        proc check(secret high: int, public low: uint): int {
            var i: int = 0;
            while (i < low) { i = i + 1; }
            return i;
        }
    ''', "check")
    assert verdict.status == "safe"
"""

from repro.core.blazer import Blazer, BlazerConfig, BlazerVerdict, analyze_source
from repro.core.observer import (
    ConcreteThresholdObserver,
    ObserverModel,
    PolynomialDegreeObserver,
)
from repro.core.attack import AttackSpecification
from repro.bounds import CostBound, Poly, compute_bound, default_summaries
from repro.interp import Interpreter, Trace
from repro.lang import frontend, parse_program, check_program, format_program
from repro.bytecode import compile_program, verify_module
from repro.ir import lift_code, lift_module
from repro.taint import analyze_taint
from repro.trails import PartitionTree, Trail

__version__ = "1.0.0"

__all__ = [
    "Blazer",
    "BlazerConfig",
    "BlazerVerdict",
    "analyze_source",
    "AttackSpecification",
    "ObserverModel",
    "PolynomialDegreeObserver",
    "ConcreteThresholdObserver",
    "CostBound",
    "Poly",
    "compute_bound",
    "default_summaries",
    "Interpreter",
    "Trace",
    "frontend",
    "parse_program",
    "check_program",
    "format_program",
    "compile_program",
    "verify_module",
    "lift_code",
    "lift_module",
    "analyze_taint",
    "Trail",
    "PartitionTree",
    "__version__",
]
