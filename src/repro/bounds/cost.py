"""Symbolic running-time expressions.

The bound analysis reports running times like ``[19*g.len + 10,
23*g.len + 10]`` (Fig. 1 of the paper): polynomials over *input symbols*
(integer parameters and array-length parameters), with ``max``/``min``
over alternatives where control flow allows several shapes
(``20*max(g.len, p.len) + 8``).

Representation:

* :class:`Poly` — a multivariate polynomial with rational coefficients
  over named symbols (monomials are sorted tuples of symbol names, so
  ``g.len * p.len`` is a degree-2 monomial);
* :class:`CostBound` — a pair (lower, upper) where the lower bound is a
  *min-set* of polynomials and the upper bound a *max-set* (``None`` =
  unbounded).  Max-sets always contain the zero polynomial, which both
  encodes the clamp ``iterations >= 0`` and keeps multiplication sound
  when a symbol can be negative.

Set sizes are capped; over the cap, a max-set collapses to the
coefficient-wise maximum (sound over-approximation for symbols known to
be non-negative — array lengths — and still sound elsewhere because the
collapse only ever *adds* area on max-sets given the embedded zero).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import ClassVar
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

Monomial = Tuple[str, ...]  # sorted symbol names; () is the constant term

MAX_SET_SIZE = 6


class Poly:
    """A multivariate polynomial with Fraction coefficients."""

    __slots__ = ("terms",)

    def __init__(self, terms: Optional[Mapping[Monomial, Fraction]] = None):
        self.terms: Dict[Monomial, Fraction] = {}
        if terms:
            for mono, coeff in terms.items():
                if coeff != 0:
                    self.terms[mono] = Fraction(coeff)

    # -- constructors -------------------------------------------------------------

    @staticmethod
    def constant(value) -> "Poly":
        return Poly({(): Fraction(value)})

    @staticmethod
    def symbol(name: str) -> "Poly":
        return Poly({(name,): Fraction(1)})

    ZERO: "Poly"
    ONE: "Poly"

    # -- queries ---------------------------------------------------------------------

    @property
    def is_constant(self) -> bool:
        return all(m == () for m in self.terms)

    @property
    def const_value(self) -> Fraction:
        return self.terms.get((), Fraction(0))

    def degree(self) -> int:
        return max((len(m) for m in self.terms), default=0)

    def symbols(self) -> FrozenSet[str]:
        out = set()
        for mono in self.terms:
            out.update(mono)
        return frozenset(out)

    def evaluate(self, env: Mapping[str, object]) -> Fraction:
        total = Fraction(0)
        for mono, coeff in self.terms.items():
            value = coeff
            for sym in mono:
                value *= Fraction(env[sym])  # type: ignore[arg-type]
            total += value
        return total

    # -- arithmetic ---------------------------------------------------------------------

    def __add__(self, other: "Poly") -> "Poly":
        terms = dict(self.terms)
        for mono, coeff in other.terms.items():
            terms[mono] = terms.get(mono, Fraction(0)) + coeff
        return Poly(terms)

    def __sub__(self, other: "Poly") -> "Poly":
        return self + (other * Fraction(-1))

    def __mul__(self, other) -> "Poly":
        if isinstance(other, (int, Fraction)):
            return Poly({m: c * Fraction(other) for m, c in self.terms.items()})
        terms: Dict[Monomial, Fraction] = {}
        for m1, c1 in self.terms.items():
            for m2, c2 in other.terms.items():
                mono = tuple(sorted(m1 + m2))
                terms[mono] = terms.get(mono, Fraction(0)) + c1 * c2
        return Poly(terms)

    __rmul__ = __mul__

    # -- comparison helpers -----------------------------------------------------------------

    def dominates(self, other: "Poly", nonneg: FrozenSet[str]) -> bool:
        """Sufficient check for ``self(x) >= other(x)`` for all valuations
        with the ``nonneg`` symbols >= 0: every monomial of the difference
        has a non-negative coefficient and only non-negative symbols."""
        diff = self - other
        for mono, coeff in diff.terms.items():
            if coeff < 0:
                return False
            if any(sym not in nonneg for sym in mono):
                return False
        return True

    def _key(self) -> Tuple:
        return tuple(sorted(self.terms.items()))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Poly) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __str__(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for mono in sorted(self.terms, key=lambda m: (-len(m), m)):
            coeff = self.terms[mono]
            if not mono:
                parts.append(str(coeff))
            else:
                body = "*".join(mono)
                if coeff == 1:
                    parts.append(body)
                elif coeff == -1:
                    parts.append("-%s" % body)
                else:
                    parts.append("%s*%s" % (coeff, body))
        text = " + ".join(parts)
        return text.replace("+ -", "- ")

    def __repr__(self) -> str:
        return "Poly(%s)" % self


Poly.ZERO = Poly()
Poly.ONE = Poly.constant(1)


def _prune_max(polys: Iterable[Poly], nonneg: FrozenSet[str]) -> Tuple[Poly, ...]:
    """Normalize a max-set: dedupe, drop dominated members, cap size."""
    unique = list(dict.fromkeys(polys))
    kept: List[Poly] = [
        p
        for p in unique
        if not any(q.dominates(p, nonneg) and q != p for q in unique)
    ]
    if not kept:
        kept = unique[:1]
    if len(kept) > MAX_SET_SIZE:
        # Collapse to the coefficient-wise maximum (sound upper bound for
        # non-negative symbols; see the module docstring).
        terms: Dict[Monomial, Fraction] = {}
        for p in kept:
            for mono, coeff in p.terms.items():
                terms[mono] = max(terms.get(mono, Fraction(0)), coeff)
        kept = [Poly(terms)]
    return tuple(kept)


def _prune_min(polys: Iterable[Poly], nonneg: FrozenSet[str]) -> Tuple[Poly, ...]:
    unique = list(dict.fromkeys(polys))
    kept = [
        p
        for p in unique
        if not any(p.dominates(q, nonneg) and p != q for q in unique)
    ]
    if not kept:
        kept = unique[:1]
    if len(kept) > MAX_SET_SIZE:
        terms: Dict[Monomial, Fraction] = {}
        for p in kept:
            for mono, coeff in p.terms.items():
                terms[mono] = min(terms.get(mono, Fraction(0)), coeff)
        kept = [Poly(terms)]
    return tuple(kept)


@dataclass(frozen=True)
class CostBound:
    """A symbolic running-time range [min lower, max(0, max upper)].

    ``upper=None`` means no upper bound was derivable (∞).
    """

    lower: Tuple[Poly, ...]
    upper: Optional[Tuple[Poly, ...]]
    nonneg: FrozenSet[str] = frozenset()

    # -- constructors -------------------------------------------------------------

    @staticmethod
    def exact(poly: Poly, nonneg: FrozenSet[str] = frozenset()) -> "CostBound":
        return CostBound((poly,), (poly, Poly.ZERO), nonneg)

    @staticmethod
    def of_constant(value, nonneg: FrozenSet[str] = frozenset()) -> "CostBound":
        return CostBound.exact(Poly.constant(value), nonneg)

    @staticmethod
    def range(lo: Poly, hi: Optional[Poly], nonneg: FrozenSet[str] = frozenset()) -> "CostBound":
        return CostBound((lo,), None if hi is None else (hi, Poly.ZERO), nonneg)

    @staticmethod
    def unbounded(lo: Poly = Poly.ZERO, nonneg: FrozenSet[str] = frozenset()) -> "CostBound":
        return CostBound((lo,), None, nonneg)

    ZERO: ClassVar["CostBound"]

    # -- algebra --------------------------------------------------------------------

    def _with(self, lower: Iterable[Poly], upper: Optional[Iterable[Poly]]) -> "CostBound":
        return CostBound(
            _prune_min(lower, self.nonneg),
            None if upper is None else _prune_max(upper, self.nonneg),
            self.nonneg,
        )

    def __add__(self, other: "CostBound") -> "CostBound":
        lower = [a + b for a in self.lower for b in other.lower]
        if self.upper is None or other.upper is None:
            upper = None
        else:
            upper = [a + b for a in self.upper for b in other.upper]
        return self._with(lower, upper)

    def scale(self, factor) -> "CostBound":
        """Multiply by a non-negative rational constant."""
        f = Fraction(factor)
        if f < 0:
            raise ValueError("cost bounds scale by non-negative factors only")
        lower = [p * f for p in self.lower]
        upper = None if self.upper is None else [p * f for p in self.upper]
        return self._with(lower, upper)

    def multiply(
        self, iterations: "CostBound", iterations_nonneg: bool = False
    ) -> "CostBound":
        """``iterations × self`` — total cost of a loop body repeated.

        Both factors are semantically clamped at zero (the zero polynomial
        is a member of every max-set), so the products over-approximate
        the true nonnegative product.

        ``iterations_nonneg`` asserts that the iteration lower bounds are
        known non-negative from *context* (the loop's entry state proves
        the ranking expression >= 0) even when not structurally evident.
        """
        lower = [a * b for a in self.lower for b in iterations.lower]
        # When either factor's lower bound is not provably non-negative,
        # the product's true minimum may be 0 (a loop cannot run a
        # negative number of times) — clamp with the zero polynomial.
        # When both are provably non-negative, keep the precise product:
        # this is what gives "must enter the loop" trails their exact
        # 19*g.len-style lower bounds.
        nonneg = self.nonneg | iterations.nonneg
        self_nonneg = all(p.dominates(Poly.ZERO, nonneg) for p in self.lower)
        # The iterations factor must be vouched for by the *caller*
        # (iterations_nonneg): a structurally non-negative polynomial is
        # NOT enough, because an iteration lower bound like (n+1)/2 can
        # evaluate positive at inputs where the loop actually runs zero
        # times (the lemma's validity condition failed there).
        if not (self_nonneg and iterations_nonneg):
            lower = lower + [Poly.ZERO]
        if self.upper is None or iterations.upper is None:
            upper = None
        else:
            upper = [a * b for a in self.upper for b in iterations.upper]
        return self._with(lower, upper)

    def join(self, other: "CostBound") -> "CostBound":
        """Union of ranges: min of lowers, max of uppers."""
        lower = list(self.lower) + list(other.lower)
        if self.upper is None or other.upper is None:
            upper = None
        else:
            upper = list(self.upper) + list(other.upper)
        merged_nonneg = self.nonneg | other.nonneg
        return CostBound(
            _prune_min(lower, merged_nonneg),
            None if upper is None else _prune_max(upper, merged_nonneg),
            merged_nonneg,
        )

    # -- queries -----------------------------------------------------------------------

    def symbols(self) -> FrozenSet[str]:
        out = set()
        for p in self.lower:
            out |= p.symbols()
        for p in self.upper or ():
            out |= p.symbols()
        return frozenset(out)

    def degree(self) -> Optional[int]:
        """Degree of the upper bound; None when unbounded."""
        if self.upper is None:
            return None
        return max((p.degree() for p in self.upper), default=0)

    def lower_degree(self) -> int:
        return max((p.degree() for p in self.lower), default=0)

    def evaluate(self, env: Mapping[str, object]) -> Tuple[Fraction, Optional[Fraction]]:
        """Concrete (lo, hi) for a symbol valuation; hi=None if unbounded."""
        lo = min(p.evaluate(env) for p in self.lower)
        if self.upper is None:
            return lo, None
        hi = max(p.evaluate(env) for p in self.upper)
        return lo, hi

    def is_constant(self) -> bool:
        return (
            self.upper is not None
            and all(p.is_constant for p in self.lower)
            and all(p.is_constant for p in self.upper)
        )

    def __str__(self) -> str:
        if len(self.lower) == 1:
            lo = str(self.lower[0])
        else:
            lo = "min(%s)" % ", ".join(str(p) for p in self.lower)
        if self.upper is None:
            hi = "oo"
        else:
            nonzero = [p for p in self.upper if p != Poly.ZERO] or [Poly.ZERO]
            if len(nonzero) == 1:
                hi = str(nonzero[0])
            else:
                hi = "max(%s)" % ", ".join(str(p) for p in nonzero)
        return "[%s, %s]" % (lo, hi)


CostBound.ZERO = CostBound.exact(Poly.ZERO)
