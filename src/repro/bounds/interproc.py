"""Interprocedural bounds: summaries for *defined* procedures.

Blazer's bound analysis is intraprocedural with summaries at call sites.
For calls to procedures defined in the same program we compute the
callee's own (unrestricted-trail) bound first — callees before callers in
the call graph — and instantiate it at each call site by substituting the
callee's input symbols with caller-side polynomials.  Directly recursive
procedures get no summary; members of mutual-recursion cycles are
analyzed with the not-yet-summarized callees treated as unbounded, so
they receive sound lower bounds but infinite upper bounds — matching the
tool's documented restriction ("Blazer does not yet support recursive
functions").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.absint.transfer import len_var
from repro.bounds.cost import CostBound, Poly
from repro.bounds.lemmas import linexpr_to_poly, symbolic_form
from repro.bounds.summaries import SummaryRegistry, default_summaries
from repro.cfg.graph import ControlFlowGraph
from repro.domains.base import AbstractState, Domain
from repro.domains.linexpr import LinExpr
from repro.ir import instr as ir


@dataclass
class ProcBound:
    """A defined procedure's bound plus its symbol-to-parameter map."""

    bound: CostBound
    # Per parameter position: (symbol name, kind), kind in {"int", "len"}.
    param_symbols: List[Tuple[str, str]]


def proc_param_symbols(cfg: ControlFlowGraph) -> List[Tuple[str, str]]:
    out: List[Tuple[str, str]] = []
    for param in cfg.params:
        if param.declared.is_array:
            out.append((len_var(param.name), "len"))
        else:
            out.append((param.name, "int"))
    return out


def _arg_poly(
    cfg: ControlFlowGraph,
    arg: ir.Operand,
    kind: str,
    inv: AbstractState,
    symbols: Sequence[str],
) -> Optional[Poly]:
    """Caller-side polynomial for one argument (value or length)."""
    if kind == "len":
        if isinstance(arg, ir.ConstArr):
            return Poly.constant(len(arg.values))
        if isinstance(arg, ir.Reg):
            expr = LinExpr.var(len_var(arg.name))
        else:
            return None
    else:
        if isinstance(arg, ir.ConstInt):
            return Poly.constant(arg.value)
        if isinstance(arg, ir.Reg):
            expr = LinExpr.var(arg.name)
        else:
            return None
    sym = symbolic_form(expr, inv, symbols)
    return None if sym is None else linexpr_to_poly(sym)


def instantiate_call_bound(
    cfg: ControlFlowGraph,
    call: ir.CallInstr,
    proc_bound: ProcBound,
    inv: AbstractState,
    symbols: Sequence[str],
    nonneg,
) -> CostBound:
    """Substitute the callee's input symbols with caller polynomials."""
    mapping: Dict[str, Poly] = {}
    for (sym, kind), arg in zip(proc_bound.param_symbols, call.args):
        poly = _arg_poly(cfg, arg, kind, inv, symbols)
        if poly is not None:
            mapping[sym] = poly
    callee = proc_bound.bound
    lower_polys = []
    for p in callee.lower:
        sub = _subst(p, mapping)
        lower_polys.append(sub if sub is not None else Poly.ZERO)
    if callee.upper is None:
        return CostBound(tuple(lower_polys) or (Poly.ZERO,), None, nonneg)
    upper_polys = []
    for p in callee.upper:
        sub = _subst(p, mapping)
        if sub is None:
            return CostBound(tuple(lower_polys) or (Poly.ZERO,), None, nonneg)
        upper_polys.append(sub)
    return CostBound(
        tuple(lower_polys) or (Poly.ZERO,),
        tuple(upper_polys) + (Poly.ZERO,),
        nonneg,
    )


def _subst(poly: Poly, mapping: Dict[str, Poly]) -> Optional[Poly]:
    out = Poly.constant(0)
    for mono, coeff in poly.terms.items():
        term = Poly.constant(coeff)
        for sym in mono:
            replacement = mapping.get(sym)
            if replacement is None:
                return None
            term = term * replacement
        out = out + term
    return out


def call_graph(cfgs: Dict[str, ControlFlowGraph]) -> Dict[str, Set[str]]:
    """callee sets per defined procedure (externs excluded)."""
    graph: Dict[str, Set[str]] = {name: set() for name in cfgs}
    for name, cfg in cfgs.items():
        for _, instr in cfg.iter_instrs():
            if isinstance(instr, ir.CallInstr) and instr.callee in cfgs:
                graph[name].add(instr.callee)
    return graph


def compute_proc_bounds(
    cfgs: Dict[str, ControlFlowGraph],
    domain: Domain,
    summaries: Optional[SummaryRegistry] = None,
) -> Dict[str, ProcBound]:
    """Bounds for all defined procedures, callees before callers.

    Directly recursive procedures are skipped entirely; mutual-recursion
    cycles yield bounds with infinite uppers (sound, never a finite
    upper bound on a recursive computation).
    """
    from repro.bounds.analysis import BoundAnalysis

    summaries = summaries if summaries is not None else default_summaries()
    graph = call_graph(cfgs)
    done: Dict[str, ProcBound] = {}
    visiting: Set[str] = set()

    def visit(name: str) -> None:
        if name in done or name in visiting:
            return
        visiting.add(name)
        for callee in sorted(graph.get(name, ())):
            if callee != name:
                visit(callee)
        visiting.discard(name)
        # Skip self-recursive or cycle-stuck procedures.
        if name in graph.get(name, ()):
            return
        if any(callee in visiting for callee in graph.get(name, ())):
            return
        analysis = BoundAnalysis(
            cfgs[name], domain, summaries, trail_dfa=None, proc_bounds=done
        )
        result = analysis.compute()
        if result.feasible and result.bound is not None:
            done[name] = ProcBound(result.bound, proc_param_symbols(cfgs[name]))

    for name in sorted(cfgs):
        visit(name)
    return done
